//! Framed TCP transport on the epoll reactor core.
//!
//! Mirrors the paper's Thrift deployment (§4.2.2): every connection
//! carries length-prefixed frames (see [`jiffy_proto::frame`]) and many
//! client threads multiplex concurrent in-flight requests over one
//! connection, with server pushes ([`Envelope::Push`]) arriving on the
//! same socket at any time.
//!
//! Since the c10k rewrite the transport is **readiness-driven** (see
//! [`crate::reactor`] and DESIGN.md §12) instead of thread-per-
//! connection:
//!
//! - each [`serve_tcp`] server runs one [`Reactor`] thread multiplexing
//!   the listener plus every session socket (all nonblocking), and a
//!   fixed [`WorkerPool`] (size [`jiffy_common::rpc_workers`]) that
//!   executes decoded requests — thousands of idle sessions cost zero
//!   threads;
//! - incoming bytes are reassembled by [`FrameAssembler`] and queued per
//!   session; a session's frames execute **in order** (an inbox +
//!   `scheduled` flag make the session a tiny actor), preserving the
//!   serial semantics of the old per-connection thread. When a session's
//!   inbox exceeds [`jiffy_common::rpc_inbox_limit`], its read interest
//!   is dropped until the workers catch up (TCP backpressure instead of
//!   unbounded buffering);
//! - outgoing frames go through a per-socket [`EgressQueue`] — the PR 4
//!   corked writer adapted to nonblocking sockets: concurrent senders
//!   still collapse into single large writes, and on `WouldBlock` the
//!   frames park until the reactor reports writability;
//! - client connections share a small process-wide reactor pool
//!   ([`jiffy_common::rpc_client_reactors`] threads) that demuxes
//!   replies straight into the PR 4 sharded [`WaiterTable`] — the
//!   per-connection demux thread is gone, so a process can hold
//!   thousands of dialed connections.
//!
//! The data-plane fast path survives unchanged: encodes go through a
//! reusable scratch buffer ([`jiffy_proto::to_bytes_into`]), steady-state
//! calls park in pooled waiter slots without allocating, and frame
//! payload buffers are recycled per session.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

use jiffy_common::config::call_timeout;
use jiffy_common::{JiffyError, Result};
use jiffy_proto::{from_bytes, to_bytes, to_bytes_into, Envelope, FrameAssembler};
use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::{Arc, Mutex, Weak};

use crate::reactor::{
    EgressQueue, EventHandler, Interest, Reactor, SendStatus, WaiterTable, WorkerPool,
};
use crate::service::{ClientConn, Connection, PushCallback, PushSlot, Service, SessionHandle};

/// How many bytes one readiness dispatch reads per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Recycled payload buffers kept per session.
const SPARE_BUFFERS: usize = 8;

/// Counters for the TCP transport itself (the accept path and its
/// sessions), in the same snapshot style as the fault injector's
/// `FaultStats`. Snapshot via [`TcpServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Accepted connections dropped because the session could not be
    /// registered with the reactor (the rewrite's analogue of the old
    /// session-thread spawn failure — previously a silent `let _ =`).
    pub spawn_failures: u64,
    /// Transient accept-loop errors.
    pub accept_errors: u64,
    /// Sessions torn down (peer EOF, decode error, or write failure).
    pub sessions_closed: u64,
}

#[derive(Default)]
struct TransportCells {
    accepted: AtomicU64,
    spawn_failures: AtomicU64,
    accept_errors: AtomicU64,
    sessions_closed: AtomicU64,
    spawn_failure_logged: AtomicBool,
    /// Test hook: pending synthetic accept errors (see
    /// [`TcpServerHandle::inject_accept_errors`]).
    inject_accept_errors: AtomicU64,
    /// Test hook: pending synthetic session-registration failures.
    inject_session_failures: AtomicU64,
}

impl TransportCells {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            spawn_failures: self.spawn_failures.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
        }
    }
}

/// Decrements `counter` if positive; true when a unit was taken.
fn take_one(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
        .is_ok()
}

/// Handle to a running TCP server; dropping it (or calling
/// [`TcpServerHandle::shutdown`]) closes the listener and tears down the
/// reactor, its sessions, and the worker pool.
pub struct TcpServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    reactor: Arc<Reactor>,
    pool: Arc<WorkerPool<Arc<ServerSession>>>,
    listener: Arc<ListenerHandler>,
    listener_token: u64,
    cells: Arc<TransportCells>,
}

impl TcpServerHandle {
    /// The address clients should dial, in Jiffy `tcp:host:port` form.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the transport counters (connections accepted,
    /// session-registration failures, accept errors, sessions closed).
    pub fn stats(&self) -> TransportStats {
        self.cells.snapshot()
    }

    /// Sessions currently registered with the server's reactor.
    pub fn live_sessions(&self) -> usize {
        // The listener itself occupies one registration until shutdown.
        let n = self.reactor.registered();
        if self.stop.load(Ordering::SeqCst) {
            n
        } else {
            n.saturating_sub(1)
        }
    }

    /// Request frames decoded but not yet picked up by a worker, plus
    /// worker threads serving this listener — test/bench introspection.
    #[doc(hidden)]
    pub fn worker_backlog(&self) -> usize {
        self.pool.backlog()
    }

    /// Makes the accept path report `n` synthetic transient errors (one
    /// per readiness pass, before touching the real backlog) so tests can
    /// prove the listener survives accept errors. Test hook.
    #[doc(hidden)]
    pub fn inject_accept_errors(&self, n: u64) {
        self.cells
            .inject_accept_errors
            .fetch_add(n, Ordering::SeqCst);
    }

    /// Makes the next `n` accepted connections fail session registration
    /// (counted in [`TransportStats::spawn_failures`], peer sees a
    /// reset), mirroring the old session-thread spawn failure. Test hook.
    #[doc(hidden)]
    pub fn fail_next_sessions(&self, n: u64) {
        self.cells
            .inject_session_failures
            .fetch_add(n, Ordering::SeqCst);
    }

    /// Stops the server: the listener closes (new dials are refused),
    /// live sessions are torn down, and the reactor + worker threads are
    /// joined. Clients with pooled connections observe broken sockets
    /// and evict them — exactly what a server crash looks like.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Closing the listener fd refuses new dials immediately and
            // unblocks nothing: the accept path is readiness-driven.
            *self.listener.listener.lock() = None;
            self.reactor
                .deregister(self.listener_token, self.listener.fd);
            // Joining the reactor drops every session handler: session
            // sockets close and peers see EOF/reset.
            self.reactor.shutdown();
            self.pool.shutdown();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a TCP server for `service` on `bind` (e.g. `127.0.0.1:0` for an
/// ephemeral port) and returns its handle.
///
/// # Errors
///
/// Fails if the listener cannot bind or the reactor/worker threads cannot
/// be spawned.
pub fn serve_tcp(bind: &str, service: Arc<dyn Service>) -> Result<TcpServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let reactor = Reactor::start(&format!("srv-{}", local.port()))?;
    let pool = match WorkerPool::start(
        jiffy_common::rpc_workers(),
        &format!("jiffy-rpc-worker-{}", local.port()),
        |sess: Arc<ServerSession>| sess.process(),
    ) {
        Ok(p) => Arc::new(p),
        Err(e) => {
            reactor.shutdown();
            return Err(e);
        }
    };
    let cells = Arc::new(TransportCells::default());
    let stop = Arc::new(AtomicBool::new(false));
    let fd = listener.as_raw_fd();
    let handler = Arc::new(ListenerHandler {
        fd,
        local: local.to_string(),
        listener: Mutex::new(Some(listener)),
        cells: cells.clone(),
        service,
        reactor: reactor.clone(),
        pool: pool.clone(),
        inbox_limit: jiffy_common::rpc_inbox_limit().max(1),
        stop: stop.clone(),
    });
    let listener_token = match reactor.register(handler.clone(), true, false) {
        Ok(t) => t,
        Err(e) => {
            reactor.shutdown();
            pool.shutdown();
            return Err(e);
        }
    };
    Ok(TcpServerHandle {
        addr: format!("tcp:{local}"),
        stop,
        reactor,
        pool,
        listener: handler,
        listener_token,
        cells,
    })
}

/// The listener's event handler: accepts ready connections and registers
/// each as a [`ServerSession`] with the same reactor.
struct ListenerHandler {
    fd: RawFd,
    local: String,
    /// Taken (closed) at shutdown so new dials are refused immediately.
    listener: Mutex<Option<TcpListener>>,
    cells: Arc<TransportCells>,
    service: Arc<dyn Service>,
    reactor: Arc<Reactor>,
    pool: Arc<WorkerPool<Arc<ServerSession>>>,
    inbox_limit: usize,
    stop: Arc<AtomicBool>,
}

impl ListenerHandler {
    fn register_session(&self, stream: TcpStream) -> Result<()> {
        if take_one(&self.cells.inject_session_failures) {
            return Err(JiffyError::Rpc("injected session failure".into()));
        }
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true)?;
        let egress_stream = stream.try_clone()?;
        let fd = stream.as_raw_fd();
        let token = self.reactor.token();
        let sess = Arc::new_cyclic(|weak: &Weak<ServerSession>| {
            let w = weak.clone();
            let session = SessionHandle::new(Arc::new(move |n| {
                // Pushes are off the request hot path; a fresh encode is
                // fine. Best-effort: a dead session drops them.
                if let Some(s) = w.upgrade() {
                    if s.closed.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Ok(bytes) = to_bytes(&Envelope::Push(n)) {
                        if matches!(s.egress.send(&bytes), Ok(SendStatus::Parked)) {
                            s.refresh_interest();
                        }
                    }
                }
            }));
            ServerSession {
                stream,
                fd,
                token,
                reactor: self.reactor.clone(),
                pool: self.pool.clone(),
                cells: self.cells.clone(),
                service: self.service.clone(),
                session,
                egress: EgressQueue::new(egress_stream),
                interest: Interest::new(true, false),
                assembler: Mutex::new(FrameAssembler::new()),
                inbox: Mutex::new(VecDeque::new()),
                spares: Mutex::new(Vec::new()),
                inbox_limit: self.inbox_limit,
                scheduled: AtomicBool::new(false),
                paused: AtomicBool::new(false),
                eof: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                weak_self: weak.clone(),
            }
        });
        self.reactor.register_at(token, sess, true, false)
    }
}

impl EventHandler for ListenerHandler {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn on_ready(&self, readable: bool, _writable: bool) -> bool {
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        if !readable {
            return true;
        }
        let guard = self.listener.lock();
        let Some(listener) = guard.as_ref() else {
            return false;
        };
        loop {
            if take_one(&self.cells.inject_accept_errors) {
                // Synthetic transient error: count it and yield without
                // touching the backlog — level-triggered epoll re-reports
                // the pending connection on the next pass, proving the
                // listener survives accept errors without losing conns.
                self.cells.accept_errors.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    self.cells.accepted.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = self.register_session(stream) {
                        // The stream drops here: the peer sees a reset,
                        // not a silent hang.
                        self.cells.spawn_failures.fetch_add(1, Ordering::Relaxed);
                        if !self
                            .cells
                            .spawn_failure_logged
                            .swap(true, Ordering::Relaxed)
                        {
                            eprintln!(
                                "jiffy-rpc: dropping accepted connection on {}: \
                                 session registration failed: {e} (further failures \
                                 counted, not logged)",
                                self.local
                            );
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.cells.accept_errors.fetch_add(1, Ordering::Relaxed);
                    // Transient kernel errors (e.g. EMFILE) can report the
                    // listener readable forever; yield briefly so a
                    // level-triggered storm cannot monopolize the reactor.
                    // xtask-allow(no-blocking-in-reactor): bounded 1 ms backoff is the throttle itself
                    std::thread::sleep(Duration::from_millis(1));
                    return true;
                }
            }
        }
    }
}

/// One accepted connection: a tiny actor. The reactor thread reassembles
/// frames into `inbox`; at most one worker at a time (the `scheduled`
/// flag) drains the inbox in FIFO order, executing the service handler
/// and replying through the egress queue — so requests on one session
/// execute serially, exactly like the old per-connection thread.
struct ServerSession {
    stream: TcpStream,
    fd: RawFd,
    token: u64,
    reactor: Arc<Reactor>,
    pool: Arc<WorkerPool<Arc<ServerSession>>>,
    cells: Arc<TransportCells>,
    service: Arc<dyn Service>,
    session: SessionHandle,
    egress: EgressQueue<TcpStream>,
    interest: Interest,
    assembler: Mutex<FrameAssembler>,
    /// Decoded-but-unexecuted request frames (payload bytes).
    inbox: Mutex<VecDeque<Vec<u8>>>,
    /// Recycled payload buffers.
    spares: Mutex<Vec<Vec<u8>>>,
    inbox_limit: usize,
    /// A worker run is queued or active for this session.
    scheduled: AtomicBool,
    /// Read interest dropped because the inbox hit its limit.
    paused: AtomicBool,
    /// Peer EOF / fatal transport error observed; finalize after the
    /// inbox drains.
    eof: AtomicBool,
    /// Finalized (on_disconnect ran, fd deregistered). Terminal.
    closed: AtomicBool,
    weak_self: Weak<ServerSession>,
}

impl ServerSession {
    /// Recomputes epoll interest from live state: read while not paused
    /// or dead, write while the egress queue owes a drain.
    fn refresh_interest(&self) {
        let _ = self
            .interest
            .update(&self.reactor, self.token, self.fd, |_, _| {
                (
                    !self.paused.load(Ordering::SeqCst) && !self.eof.load(Ordering::SeqCst),
                    self.egress.needs_write(),
                )
            });
    }

    /// Ensures a worker run is queued (at most one at a time).
    fn schedule(&self) {
        if !self.scheduled.swap(true, Ordering::SeqCst) {
            if let Some(me) = self.weak_self.upgrade() {
                if !self.pool.submit(me) {
                    self.scheduled.store(false, Ordering::SeqCst);
                }
            }
        }
    }

    /// Reactor thread: feeds raw bytes through the frame assembler into
    /// the inbox.
    fn ingest(&self, bytes: &[u8]) -> Result<()> {
        let mut asm = self.assembler.lock();
        asm.push(bytes);
        loop {
            let mut payload = self.spares.lock().pop().unwrap_or_default();
            match asm.next_frame_into(&mut payload)? {
                Some(_) => self.inbox.lock().push_back(payload),
                None => {
                    self.recycle(payload);
                    return Ok(());
                }
            }
        }
    }

    fn recycle(&self, mut payload: Vec<u8>) {
        payload.clear();
        let mut spares = self.spares.lock();
        if spares.len() < SPARE_BUFFERS {
            spares.push(payload);
        }
    }

    /// Worker thread: drains the inbox, executing requests in order.
    fn process(&self) {
        let mut out = Vec::new();
        loop {
            let next = self.inbox.lock().pop_front();
            match next {
                Some(payload) => {
                    if self.paused.load(Ordering::SeqCst) {
                        let len = self.inbox.lock().len();
                        if len * 2 <= self.inbox_limit && self.paused.swap(false, Ordering::SeqCst)
                        {
                            self.refresh_interest();
                        }
                    }
                    if !self.execute(&payload, &mut out) {
                        self.recycle(payload);
                        self.finalize();
                        return;
                    }
                    self.recycle(payload);
                }
                None => {
                    if self.eof.load(Ordering::SeqCst) {
                        self.finalize();
                        return;
                    }
                    self.scheduled.store(false, Ordering::SeqCst);
                    // Re-check: the reactor may have queued work between
                    // our empty pop and the flag clear (it saw
                    // `scheduled` still set and skipped submitting).
                    let more = self.eof.load(Ordering::SeqCst) || !self.inbox.lock().is_empty();
                    if more && !self.scheduled.swap(true, Ordering::SeqCst) {
                        continue;
                    }
                    return;
                }
            }
        }
    }

    /// Runs one request; false breaks the session (mirrors the old
    /// session loop's `break` on decode/encode/write errors).
    fn execute(&self, payload: &[u8], out: &mut Vec<u8>) -> bool {
        let env: Envelope = match from_bytes(payload) {
            Ok(e) => e,
            Err(_) => {
                self.eof.store(true, Ordering::SeqCst);
                return false;
            }
        };
        let resp = self.service.handle(env, &self.session);
        if to_bytes_into(&resp, out).is_err() {
            self.eof.store(true, Ordering::SeqCst);
            return false;
        }
        match self.egress.send(out) {
            Ok(SendStatus::Flushed) => true,
            Ok(SendStatus::Parked) => {
                self.refresh_interest();
                true
            }
            Err(_) => {
                self.eof.store(true, Ordering::SeqCst);
                false
            }
        }
    }

    /// Tears the session down exactly once: deregisters the fd, runs
    /// `on_disconnect`, breaks the egress queue.
    fn finalize(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.reactor.deregister(self.token, self.fd);
            self.service.on_disconnect(&self.session);
            self.egress.fail("session closed");
            self.inbox.lock().clear();
            self.cells.sessions_closed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl EventHandler for ServerSession {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn on_ready(&self, readable: bool, writable: bool) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            return false;
        }
        if writable {
            match self.egress.on_writable() {
                Ok(SendStatus::Flushed) => self.refresh_interest(),
                Ok(SendStatus::Parked) => {}
                Err(_) => {
                    self.eof.store(true, Ordering::SeqCst);
                }
            }
        }
        if readable && !self.eof.load(Ordering::SeqCst) && !self.paused.load(Ordering::SeqCst) {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match (&self.stream).read(&mut chunk) {
                    Ok(0) => {
                        self.eof.store(true, Ordering::SeqCst);
                        break;
                    }
                    Ok(n) => {
                        if self.ingest(&chunk[..n]).is_err() {
                            // Oversized frame prefix: protocol violation.
                            self.eof.store(true, Ordering::SeqCst);
                            break;
                        }
                        // A short read means the socket buffer is drained
                        // — skip the would-be-EAGAIN syscall. Any bytes
                        // that race in will refire the level-triggered
                        // epoll.
                        if n < READ_CHUNK {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.eof.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
            if self.inbox.lock().len() >= self.inbox_limit
                && !self.paused.swap(true, Ordering::SeqCst)
            {
                self.refresh_interest();
            }
        }
        if self.eof.load(Ordering::SeqCst) || !self.inbox.lock().is_empty() {
            self.schedule();
        }
        true
    }
}

thread_local! {
    /// Per-thread encode scratch: steady-state calls serialize into this
    /// buffer instead of allocating a fresh `Vec` per request.
    static ENCODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide pool of client-side reactors. Dialed connections are
/// assigned round-robin; the threads live for the process lifetime (like
/// a global runtime's IO driver), so fd accounting in tests must
/// baseline *after* the first dial.
struct ClientReactors {
    reactors: Vec<Arc<Reactor>>,
    next: usize,
}

static CLIENT_REACTORS: Mutex<Option<ClientReactors>> = Mutex::new(None);

fn client_reactor() -> Result<Arc<Reactor>> {
    let mut guard = CLIENT_REACTORS.lock();
    if guard.is_none() {
        let n = jiffy_common::rpc_client_reactors().max(1);
        let mut reactors = Vec::with_capacity(n);
        for i in 0..n {
            reactors.push(Reactor::start(&format!("client-{i}"))?);
        }
        *guard = Some(ClientReactors { reactors, next: 0 });
    }
    let Some(pool) = guard.as_mut() else {
        return Err(JiffyError::Rpc("client reactor pool unavailable".into()));
    };
    let r = pool.reactors[pool.next % pool.reactors.len()].clone();
    pool.next = pool.next.wrapping_add(1);
    Ok(r)
}

/// Dials a Jiffy TCP address (`tcp:host:port`).
///
/// # Errors
///
/// Fails on malformed addresses or connection errors.
pub fn connect_tcp(addr: &str) -> Result<ClientConn> {
    let hostport = addr
        .strip_prefix("tcp:")
        .ok_or_else(|| JiffyError::Rpc(format!("bad tcp address: {addr}")))?;
    let stream = TcpStream::connect(hostport)?;
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    let egress_stream = stream.try_clone()?;
    let reactor = client_reactor()?;
    let fd = stream.as_raw_fd();
    let token = reactor.token();
    let shared = Arc::new(ClientShared {
        stream,
        fd,
        token,
        reactor: reactor.clone(),
        egress: EgressQueue::new(egress_stream),
        interest: Interest::new(true, false),
        waiters: WaiterTable::new(),
        push: PushSlot::new(),
        assembler: Mutex::new(ClientAssembler::default()),
        closed: AtomicBool::new(false),
    });
    reactor.register_at(token, shared.clone(), true, false)?;
    Ok(ClientConn(Arc::new(TcpConn {
        shared,
        next_id: AtomicU64::new(1),
    })))
}

#[derive(Default)]
struct ClientAssembler {
    assembler: FrameAssembler,
    /// Payload scratch reused across frames and dispatches.
    payload: Vec<u8>,
}

/// Client-side connection state shared between the caller-facing
/// [`TcpConn`] and the reactor (which is this type's [`EventHandler`]
/// impl: it demuxes replies into the waiter table and delivers pushes).
struct ClientShared {
    stream: TcpStream,
    fd: RawFd,
    token: u64,
    reactor: Arc<Reactor>,
    egress: EgressQueue<TcpStream>,
    interest: Interest,
    waiters: WaiterTable,
    push: PushSlot,
    assembler: Mutex<ClientAssembler>,
    closed: AtomicBool,
}

impl ClientShared {
    /// Queues one encoded request frame, arming writability if it parked.
    fn send_frame(&self, bytes: &[u8]) -> Result<()> {
        if matches!(self.egress.send(bytes)?, SendStatus::Parked) {
            self.refresh_interest()?;
        }
        Ok(())
    }

    fn refresh_interest(&self) -> Result<()> {
        self.interest
            .update(&self.reactor, self.token, self.fd, |_, _| {
                (true, self.egress.needs_write())
            })
    }

    /// Marks the connection dead and wakes everyone; returns `false` so
    /// `on_ready` callers deregister in the same breath.
    fn dead(&self) -> bool {
        self.closed.store(true, Ordering::SeqCst);
        self.egress.fail("connection dropped");
        self.waiters
            .fail_all("connection dropped while awaiting response");
        false
    }

    fn close_conn(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            // The reactor observes the shutdown as EOF and deregisters.
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            self.egress.fail("connection closed");
            // Wake all pending waiters promptly; the reactor fails any
            // stragglers when it processes the EOF.
            self.waiters.fail_all("connection closed");
        }
    }

    /// Dispatches one decoded reply envelope.
    fn dispatch(&self, payload: &[u8]) -> Result<()> {
        match from_bytes::<Envelope>(payload)? {
            Envelope::Push(n) => self.push.deliver(n),
            env @ (Envelope::ControlResp { .. } | Envelope::DataResp { .. }) => {
                let id = match &env {
                    Envelope::ControlResp { id, .. } | Envelope::DataResp { id, .. } => *id,
                    _ => 0,
                };
                // An unclaimed id means the caller already timed out;
                // the late reply is discarded.
                if let Some(slot) = self.waiters.claim(id) {
                    slot.deliver(Ok(env));
                }
            }
            _ => {}
        }
        Ok(())
    }
}

impl EventHandler for ClientShared {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn on_ready(&self, readable: bool, writable: bool) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            // close_conn already failed the waiters; just deregister.
            return false;
        }
        if writable {
            match self.egress.on_writable() {
                Ok(SendStatus::Flushed) => {
                    let _ = self.refresh_interest();
                }
                Ok(SendStatus::Parked) => {}
                Err(_) => return self.dead(),
            }
        }
        if readable {
            let mut chunk = [0u8; READ_CHUNK];
            let mut saw_eof = false;
            loop {
                match (&self.stream).read(&mut chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.assembler.lock().assembler.push(&chunk[..n]);
                        // Short read ⇒ socket drained; skip the EAGAIN
                        // syscall (level-triggered epoll refires if more
                        // bytes race in).
                        if n < READ_CHUNK {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        saw_eof = true;
                        break;
                    }
                }
            }
            // Deliver outside the assembler lock: waiter delivery and push
            // callbacks must not nest under it.
            let mut payload = std::mem::take(&mut self.assembler.lock().payload);
            loop {
                let got = self
                    .assembler
                    .lock()
                    .assembler
                    .next_frame_into(&mut payload);
                match got {
                    Ok(Some(_)) => {
                        if self.dispatch(&payload).is_err() {
                            return self.dead();
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return self.dead(),
                }
            }
            self.assembler.lock().payload = payload;
            if saw_eof {
                return self.dead();
            }
        }
        true
    }
}

/// Caller-facing TCP connection: stamps correlation ids, parks in the
/// waiter table, and enforces the call timeout.
struct TcpConn {
    shared: Arc<ClientShared>,
    next_id: AtomicU64,
}

impl Connection for TcpConn {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        let shared = &self.shared;
        if shared.closed.load(Ordering::SeqCst) {
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        // Correlation id: callers that stamped a non-zero id keep it (so a
        // retry can reuse the id and hit the server's replay cache);
        // unstamped requests get a connection-unique id.
        let (id, req) = match req {
            Envelope::ControlReq { id: 0, req, tenant } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::ControlReq { id, req, tenant })
            }
            Envelope::DataReq { id: 0, req, tenant } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::DataReq { id, req, tenant })
            }
            Envelope::ControlReq { id, req, tenant } => {
                (id, Envelope::ControlReq { id, req, tenant })
            }
            Envelope::DataReq { id, req, tenant } => (id, Envelope::DataReq { id, req, tenant }),
            other => {
                return Err(JiffyError::Rpc(format!(
                    "cannot call with non-request envelope {other:?}"
                )))
            }
        };
        let slot = shared.waiters.register(id);
        if shared.closed.load(Ordering::SeqCst) {
            // The connection died between the check above and
            // registration; fail fast instead of waiting out the deadline.
            shared.waiters.unregister(id, &slot);
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        let sent = ENCODE_BUF.with(|b| -> Result<()> {
            let mut buf = b.borrow_mut();
            to_bytes_into(&req, &mut buf)?;
            shared.send_frame(&buf)
        });
        if let Err(e) = sent {
            if shared.waiters.unregister(id, &slot) {
                shared.waiters.recycle(id, slot);
            }
            return Err(e);
        }
        let timeout = call_timeout();
        match slot.wait_for_reply(timeout) {
            Some(resp) => {
                shared.waiters.recycle(id, slot);
                resp
            }
            None => {
                if shared.waiters.unregister(id, &slot) {
                    // Late replies are discarded by the reactor.
                    shared.waiters.recycle(id, slot);
                    Err(JiffyError::Timeout {
                        after_ms: timeout.as_millis() as u64,
                    })
                } else {
                    // The reactor claimed the slot right as the deadline
                    // expired; delivery is imminent.
                    let resp = slot.wait_reply();
                    shared.waiters.recycle(id, slot);
                    resp
                }
            }
        }
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.shared.push.set(cb);
    }

    fn close(&self) {
        self.shared.close_conn();
    }
}

impl Drop for TcpConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    use jiffy_common::BlockId;
    use jiffy_proto::{DataRequest, DataResponse, Notification, OpKind};
    use jiffy_sync::atomic::AtomicUsize;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
            match req {
                Envelope::DataReq {
                    id,
                    req: DataRequest::Ping,
                    ..
                } => {
                    session.push(Notification {
                        block: BlockId(0),
                        op: OpKind::Write,
                        size: 0,
                        seq: id,
                    });
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
                Envelope::DataReq { id, req, .. } => Envelope::DataResp {
                    id,
                    resp: Err(JiffyError::Internal(format!("unexpected {req:?}"))),
                },
                _ => Envelope::DataResp {
                    id: 0,
                    resp: Err(JiffyError::Internal("bad envelope".into())),
                },
            }
        }
    }

    /// A service that never answers, for exercising call deadlines.
    struct BlackHole;

    impl Service for BlackHole {
        fn handle(&self, _req: Envelope, _session: &SessionHandle) -> Envelope {
            std::thread::sleep(Duration::from_secs(3600));
            Envelope::DataResp {
                id: 0,
                resp: Err(JiffyError::Internal("unreachable".into())),
            }
        }
    }

    #[test]
    fn tcp_round_trip_and_push() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        conn.set_push_callback(Arc::new(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..10 {
            let resp = conn
                .call(Envelope::DataReq {
                    id: 0,
                    req: DataRequest::Ping,
                    tenant: jiffy_common::TenantId::ANONYMOUS,
                })
                .unwrap();
            assert!(matches!(
                resp,
                Envelope::DataResp {
                    resp: Ok(DataResponse::Pong),
                    ..
                }
            ));
        }
        // Pushes arrive asynchronously; poll briefly.
        for _ in 0..100 {
            if seen.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 10);
        assert_eq!(server.stats().accepted, 1);
        assert_eq!(server.stats().spawn_failures, 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_connection() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = conn.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let resp = c
                        .call(Envelope::DataReq {
                            id: 0,
                            req: DataRequest::Ping,
                            tenant: jiffy_common::TenantId::ANONYMOUS,
                        })
                        .unwrap();
                    assert!(matches!(
                        resp,
                        Envelope::DataResp {
                            resp: Ok(DataResponse::Pong),
                            ..
                        }
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unanswered_call_times_out() {
        jiffy_common::set_call_timeout(Duration::from_millis(200));
        let server = serve_tcp("127.0.0.1:0", Arc::new(BlackHole)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let start = Instant::now();
        let err = conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .unwrap_err();
        assert!(matches!(err, JiffyError::Timeout { .. }), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(5));
        jiffy_common::set_call_timeout(jiffy_common::DEFAULT_CALL_TIMEOUT);
        drop(server);
    }

    #[test]
    fn bad_address_is_rejected() {
        assert!(connect_tcp("inproc:1").is_err());
        assert!(connect_tcp("tcp:").is_err());
    }

    #[test]
    fn call_after_close_fails() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        conn.close();
        assert!(conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .is_err());
        drop(server);
    }

    #[test]
    fn server_shutdown_refuses_new_connections() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let addr = server.addr().to_string();
        server.shutdown();
        // The listener is gone; dialing should now fail (or the accepted
        // socket is immediately closed, failing the first call).
        match connect_tcp(&addr) {
            Err(_) => {}
            Ok(conn) => {
                assert!(conn
                    .call(Envelope::DataReq {
                        id: 0,
                        req: DataRequest::Ping,
                        tenant: jiffy_common::TenantId::ANONYMOUS,
                    })
                    .is_err());
            }
        }
    }

    #[test]
    fn session_close_is_counted_and_disconnect_runs() {
        struct CountDisc(AtomicUsize);
        impl Service for CountDisc {
            fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
                match req {
                    Envelope::DataReq { id, .. } => Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    },
                    _ => Envelope::DataResp {
                        id: 0,
                        resp: Err(JiffyError::Internal("bad".into())),
                    },
                }
            }
            fn on_disconnect(&self, _s: &SessionHandle) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let svc = Arc::new(CountDisc(AtomicUsize::new(0)));
        let server = serve_tcp("127.0.0.1:0", svc.clone()).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        conn.call(Envelope::DataReq {
            id: 0,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        })
        .unwrap();
        assert_eq!(server.live_sessions(), 1);
        conn.close();
        let deadline = Instant::now() + Duration::from_secs(5);
        while (svc.0.load(Ordering::SeqCst) != 1 || server.stats().sessions_closed != 1)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.0.load(Ordering::SeqCst), 1, "on_disconnect ran once");
        assert_eq!(server.stats().sessions_closed, 1);
        assert_eq!(server.live_sessions(), 0);
        drop(server);
    }
}
