//! Framed TCP transport.
//!
//! Mirrors the paper's Thrift deployment: every connection carries
//! length-prefixed frames (see [`jiffy_proto::frame`]); a per-connection
//! demultiplexer on the client side lets many threads keep requests in
//! flight concurrently, and the server can push notifications on the same
//! connection at any time (envelope variant [`Envelope::Push`]).
//!
//! The data-plane fast path (paper §4.2.2) lives here too:
//!
//! - every encode goes through a reusable scratch buffer
//!   ([`jiffy_proto::to_bytes_into`]) and every read loop through
//!   [`frame::read_frame_into`], so steady-state calls allocate nothing;
//! - outgoing frames are *corked in userspace* ([`CorkedWriter`]): frames
//!   queued while another thread is writing are packed back to back and
//!   shipped by that thread in one `write_all` — one syscall per run of
//!   frames instead of two per frame;
//! - pending calls park in a sharded waiter table ([`WaiterTable`]) of
//!   pooled condvar slots instead of a global `Mutex<HashMap>` of
//!   rendezvous channels.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jiffy_common::config::call_timeout;
use jiffy_common::{JiffyError, Result};
use jiffy_proto::{frame, from_bytes, to_bytes, to_bytes_into, Envelope};
use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::{Arc, Condvar, Mutex};

use crate::service::{ClientConn, Connection, PushCallback, PushSlot, Service, SessionHandle};

/// Counters for the TCP transport itself (the accept loop and its
/// session threads), in the same snapshot style as the fault injector's
/// `FaultStats`. Snapshot via [`TcpServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Accepted connections dropped because the session thread could not
    /// be spawned (previously a silent `let _ =`).
    pub spawn_failures: u64,
    /// Transient accept-loop errors.
    pub accept_errors: u64,
}

#[derive(Default)]
struct TransportCells {
    accepted: AtomicU64,
    spawn_failures: AtomicU64,
    accept_errors: AtomicU64,
    spawn_failure_logged: AtomicBool,
}

impl TransportCells {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            spawn_failures: self.spawn_failures.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
        }
    }
}

/// Handle to a running TCP server; dropping it (or calling
/// [`TcpServerHandle::shutdown`]) stops the accept loop.
pub struct TcpServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    cells: Arc<TransportCells>,
}

impl TcpServerHandle {
    /// The address clients should dial, in Jiffy `tcp:host:port` form.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the transport counters (connections accepted,
    /// session-spawn failures, accept errors).
    pub fn stats(&self) -> TransportStats {
        self.cells.snapshot()
    }

    /// Stops accepting new connections. Existing connections live until
    /// their peers disconnect.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop with a throwaway connection.
            if let Some(hostport) = self.addr.strip_prefix("tcp:") {
                let _ = TcpStream::connect(hostport);
            }
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a TCP server for `service` on `bind` (e.g. `127.0.0.1:0` for an
/// ephemeral port) and returns its handle.
///
/// # Errors
///
/// Fails if the listener cannot bind.
pub fn serve_tcp(bind: &str, service: Arc<dyn Service>) -> Result<TcpServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let cells = Arc::new(TransportCells::default());
    let cells2 = cells.clone();
    let accept_thread = std::thread::Builder::new()
        .name(format!("jiffy-tcp-accept-{local}"))
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        cells2.accepted.fetch_add(1, Ordering::Relaxed);
                        let svc = service.clone();
                        let spawned = std::thread::Builder::new()
                            .name("jiffy-tcp-session".into())
                            .spawn(move || session_loop(s, svc));
                        if let Err(e) = spawned {
                            // The stream moved into the dead closure and
                            // closes here: the peer sees a reset, not a
                            // silent hang.
                            cells2.spawn_failures.fetch_add(1, Ordering::Relaxed);
                            if !cells2.spawn_failure_logged.swap(true, Ordering::Relaxed) {
                                eprintln!(
                                    "jiffy-rpc: dropping accepted connection on {local}: \
                                     session thread spawn failed: {e} (further failures counted, \
                                     not logged)"
                                );
                            }
                        }
                    }
                    Err(_) => {
                        cells2.accept_errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
        })
        .map_err(|e| JiffyError::Rpc(format!("spawn accept thread: {e}")))?;
    Ok(TcpServerHandle {
        addr: format!("tcp:{local}"),
        stop,
        accept_thread: Some(accept_thread),
        cells,
    })
}

/// State shared by every sender on one connection: frames encoded but
/// not yet written, whether a flusher is active, and whether the stream
/// is beyond use.
struct CorkedState {
    pending: Vec<u8>,
    flushing: bool,
    broken: bool,
}

/// Userspace write corking. Senders append their (length-prefixed)
/// frame to a shared buffer under a short lock; whichever thread finds
/// no flush in progress becomes the flusher and ships everything queued
/// so far in a single `write_all` — repeating until the buffer stays
/// empty. Threads that queue while a flush is in flight return
/// immediately: their frame rides the flusher's next pass, so a burst of
/// concurrent small calls collapses into one syscall.
struct CorkedWriter {
    state: Mutex<CorkedState>,
    stream: TcpStream,
}

impl CorkedWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            state: Mutex::new(CorkedState {
                pending: Vec::new(),
                flushing: false,
                broken: false,
            }),
            stream,
        }
    }

    /// Queues `payload` as one frame and ensures a flush is in flight.
    ///
    /// An `Ok` return means the frame is queued (and usually already
    /// written); if a *later* flush by another thread fails, the
    /// connection breaks and pending callers are failed through the
    /// demux/read path, exactly as with a per-frame write.
    fn send(&self, payload: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        if st.broken {
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        frame::encode_frame(payload, &mut st.pending)?;
        if st.flushing {
            return Ok(());
        }
        st.flushing = true;
        let mut buf = Vec::new();
        loop {
            std::mem::swap(&mut buf, &mut st.pending);
            drop(st);
            let io = (&self.stream).write_all(&buf);
            buf.clear();
            st = self.state.lock();
            if let Err(e) = io {
                st.broken = true;
                st.flushing = false;
                return Err(e.into());
            }
            if st.pending.is_empty() {
                // Hand the grown allocation back for the next run.
                std::mem::swap(&mut buf, &mut st.pending);
                st.flushing = false;
                return Ok(());
            }
        }
    }
}

/// Serves one accepted connection until EOF or a transport error.
fn session_loop(stream: TcpStream, service: Arc<dyn Service>) {
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(CorkedWriter::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    }));
    let push_writer = writer.clone();
    let session = SessionHandle::new(Arc::new(move |n| {
        // Pushes are off the request hot path; a fresh encode is fine.
        if let Ok(bytes) = to_bytes(&Envelope::Push(n)) {
            let _ = push_writer.send(&bytes);
        }
    }));
    let mut reader = stream;
    let mut payload = Vec::new();
    let mut out = Vec::new();
    while let Ok(Some(_)) = frame::read_frame_into(&mut reader, &mut payload) {
        let env: Envelope = match from_bytes(&payload) {
            Ok(e) => e,
            Err(_) => break,
        };
        let resp = service.handle(env, &session);
        if to_bytes_into(&resp, &mut out).is_err() {
            break;
        }
        if writer.send(&out).is_err() {
            break;
        }
    }
    service.on_disconnect(&session);
}

/// Dials a Jiffy TCP address (`tcp:host:port`).
///
/// # Errors
///
/// Fails on malformed addresses or connection errors.
pub fn connect_tcp(addr: &str) -> Result<ClientConn> {
    let hostport = addr
        .strip_prefix("tcp:")
        .ok_or_else(|| JiffyError::Rpc(format!("bad tcp address: {addr}")))?;
    let stream = TcpStream::connect(hostport)?;
    let _ = stream.set_nodelay(true);
    let conn = TcpConn::start(stream)?;
    Ok(ClientConn(Arc::new(conn)))
}

/// One parked call: the calling thread blocks on `cv` until the demux
/// thread deposits the reply (or the deadline passes). Slots are pooled
/// per shard, so a steady-state call registers a waiter without
/// allocating.
#[derive(Default)]
struct WaiterSlot {
    reply: Mutex<Option<Result<Envelope>>>,
    cv: Condvar,
}

impl WaiterSlot {
    fn deliver(&self, r: Result<Envelope>) {
        *self.reply.lock() = Some(r);
        self.cv.notify_one();
    }

    /// Waits up to `timeout` for a reply; `None` on deadline.
    fn wait_for_reply(&self, timeout: Duration) -> Option<Result<Envelope>> {
        let deadline = Instant::now() + timeout;
        let mut g = self.reply.lock();
        loop {
            if let Some(r) = g.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_for(&mut g, deadline - now) {
                return g.take();
            }
        }
    }

    /// Waits without a deadline. Used only once the demux thread has
    /// claimed this slot, when delivery is imminent.
    fn wait_reply(&self) -> Result<Envelope> {
        let mut g = self.reply.lock();
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            self.cv.wait(&mut g);
        }
    }
}

const WAITER_SHARDS: u64 = 8;
const SLOT_POOL_PER_SHARD: usize = 32;

struct WaiterShard {
    live: HashMap<u64, Arc<WaiterSlot>>,
    free: Vec<Arc<WaiterSlot>>,
}

/// Pending calls keyed by request id, sharded to keep the register /
/// claim handoff off a single hot mutex, with a per-shard slab of free
/// slots so completed calls donate their parking spot to the next one.
struct WaiterTable {
    shards: Vec<Mutex<WaiterShard>>,
}

impl WaiterTable {
    fn new() -> Self {
        Self {
            shards: (0..WAITER_SHARDS)
                .map(|_| {
                    Mutex::new(WaiterShard {
                        live: HashMap::new(),
                        free: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<WaiterShard> {
        &self.shards[(id % WAITER_SHARDS) as usize]
    }

    /// Parks a new waiter for `id`, reusing a pooled slot when possible.
    fn register(&self, id: u64) -> Arc<WaiterSlot> {
        let mut sh = self.shard(id).lock();
        let slot = sh
            .free
            .pop()
            .unwrap_or_else(|| Arc::new(WaiterSlot::default()));
        sh.live.insert(id, slot.clone());
        slot
    }

    /// Demux side: claims (removes) the waiter for a reply id. `None`
    /// means the caller already timed out and the reply is discarded.
    fn claim(&self, id: u64) -> Option<Arc<WaiterSlot>> {
        self.shard(id).lock().live.remove(&id)
    }

    /// Caller side: unregisters `slot` after a timeout or send failure.
    /// Returns `false` if the demux thread claimed it concurrently (a
    /// reply is in the middle of being delivered).
    fn unregister(&self, id: u64, slot: &Arc<WaiterSlot>) -> bool {
        let mut sh = self.shard(id).lock();
        match sh.live.get(&id) {
            Some(s) if Arc::ptr_eq(s, slot) => {
                sh.live.remove(&id);
                true
            }
            _ => false,
        }
    }

    /// Returns a completed (and no longer registered) slot to its pool.
    fn recycle(&self, id: u64, slot: Arc<WaiterSlot>) {
        *slot.reply.lock() = None;
        let mut sh = self.shard(id).lock();
        if sh.free.len() < SLOT_POOL_PER_SHARD {
            sh.free.push(slot);
        }
    }

    /// Connection death: wakes every pending call with an error.
    fn fail_all(&self, msg: &str) {
        for shard in &self.shards {
            let drained: Vec<_> = shard.lock().live.drain().collect();
            for (_, slot) in drained {
                slot.deliver(Err(JiffyError::Rpc(msg.into())));
            }
        }
    }
}

thread_local! {
    /// Per-thread encode scratch: steady-state calls serialize into this
    /// buffer instead of allocating a fresh `Vec` per request.
    static ENCODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

struct TcpConn {
    writer: CorkedWriter,
    waiters: Arc<WaiterTable>,
    push: PushSlot,
    next_id: AtomicU64,
    closed: Arc<AtomicBool>,
    stream_for_close: TcpStream,
}

impl TcpConn {
    fn start(stream: TcpStream) -> Result<Self> {
        let writer = stream.try_clone()?;
        let stream_for_close = stream.try_clone()?;
        let waiters = Arc::new(WaiterTable::new());
        let push = PushSlot::new();
        let closed = Arc::new(AtomicBool::new(false));
        let w2 = waiters.clone();
        let p2 = push.clone();
        let c2 = closed.clone();
        let mut reader = stream;
        std::thread::Builder::new()
            .name("jiffy-tcp-demux".into())
            .spawn(move || {
                let mut payload = Vec::new();
                while let Ok(Some(_)) = frame::read_frame_into(&mut reader, &mut payload) {
                    match from_bytes::<Envelope>(&payload) {
                        Ok(Envelope::Push(n)) => p2.deliver(n),
                        Ok(env) => {
                            let id = match &env {
                                Envelope::ControlResp { id, .. }
                                | Envelope::DataResp { id, .. } => *id,
                                _ => continue,
                            };
                            if let Some(slot) = w2.claim(id) {
                                slot.deliver(Ok(env));
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Connection is dead: fail every pending call and refuse
                // future ones.
                c2.store(true, Ordering::SeqCst);
                w2.fail_all("connection dropped while awaiting response");
            })
            .map_err(|e| JiffyError::Rpc(format!("spawn demux thread: {e}")))?;
        Ok(Self {
            writer: CorkedWriter::new(writer),
            waiters,
            push,
            next_id: AtomicU64::new(1),
            closed,
            stream_for_close,
        })
    }
}

impl Connection for TcpConn {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        // Correlation id: callers that stamped a non-zero id keep it (so a
        // retry can reuse the id and hit the server's replay cache);
        // unstamped requests get a connection-unique id.
        let (id, req) = match req {
            Envelope::ControlReq { id: 0, req } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::ControlReq { id, req })
            }
            Envelope::DataReq { id: 0, req } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::DataReq { id, req })
            }
            Envelope::ControlReq { id, req } => (id, Envelope::ControlReq { id, req }),
            Envelope::DataReq { id, req } => (id, Envelope::DataReq { id, req }),
            other => {
                return Err(JiffyError::Rpc(format!(
                    "cannot call with non-request envelope {other:?}"
                )))
            }
        };
        let slot = self.waiters.register(id);
        if self.closed.load(Ordering::SeqCst) {
            // The demux thread died between the check above and
            // registration; fail fast instead of waiting out the deadline.
            self.waiters.unregister(id, &slot);
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        let sent = ENCODE_BUF.with(|b| -> Result<()> {
            let mut buf = b.borrow_mut();
            to_bytes_into(&req, &mut buf)?;
            self.writer.send(&buf)
        });
        if let Err(e) = sent {
            if self.waiters.unregister(id, &slot) {
                self.waiters.recycle(id, slot);
            }
            return Err(e);
        }
        let timeout = call_timeout();
        match slot.wait_for_reply(timeout) {
            Some(resp) => {
                self.waiters.recycle(id, slot);
                resp
            }
            None => {
                if self.waiters.unregister(id, &slot) {
                    // Late replies are discarded by the demux thread.
                    self.waiters.recycle(id, slot);
                    Err(JiffyError::Timeout {
                        after_ms: timeout.as_millis() as u64,
                    })
                } else {
                    // The demux thread claimed the slot right as the
                    // deadline expired; delivery is imminent.
                    let resp = slot.wait_reply();
                    self.waiters.recycle(id, slot);
                    resp
                }
            }
        }
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.push.set(cb);
    }

    fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let _ = self.stream_for_close.shutdown(std::net::Shutdown::Both);
            // Wake all pending waiters promptly; the demux thread fails
            // any stragglers when its read loop exits.
            self.waiters.fail_all("connection closed");
        }
    }
}

impl Drop for TcpConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::BlockId;
    use jiffy_proto::{DataRequest, DataResponse, Notification, OpKind};
    use jiffy_sync::atomic::AtomicUsize;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
            match req {
                Envelope::DataReq {
                    id,
                    req: DataRequest::Ping,
                } => {
                    session.push(Notification {
                        block: BlockId(0),
                        op: OpKind::Write,
                        size: 0,
                        seq: id,
                    });
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
                Envelope::DataReq { id, req } => Envelope::DataResp {
                    id,
                    resp: Err(JiffyError::Internal(format!("unexpected {req:?}"))),
                },
                _ => Envelope::DataResp {
                    id: 0,
                    resp: Err(JiffyError::Internal("bad envelope".into())),
                },
            }
        }
    }

    /// A service that never answers, for exercising call deadlines.
    struct BlackHole;

    impl Service for BlackHole {
        fn handle(&self, _req: Envelope, _session: &SessionHandle) -> Envelope {
            std::thread::sleep(Duration::from_secs(3600));
            Envelope::DataResp {
                id: 0,
                resp: Err(JiffyError::Internal("unreachable".into())),
            }
        }
    }

    #[test]
    fn tcp_round_trip_and_push() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        conn.set_push_callback(Arc::new(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..10 {
            let resp = conn
                .call(Envelope::DataReq {
                    id: 0,
                    req: DataRequest::Ping,
                })
                .unwrap();
            assert!(matches!(
                resp,
                Envelope::DataResp {
                    resp: Ok(DataResponse::Pong),
                    ..
                }
            ));
        }
        // Pushes arrive asynchronously; poll briefly.
        for _ in 0..100 {
            if seen.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 10);
        assert_eq!(server.stats().accepted, 1);
        assert_eq!(server.stats().spawn_failures, 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_connection() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = conn.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let resp = c
                        .call(Envelope::DataReq {
                            id: 0,
                            req: DataRequest::Ping,
                        })
                        .unwrap();
                    assert!(matches!(
                        resp,
                        Envelope::DataResp {
                            resp: Ok(DataResponse::Pong),
                            ..
                        }
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unanswered_call_times_out() {
        jiffy_common::set_call_timeout(Duration::from_millis(200));
        let server = serve_tcp("127.0.0.1:0", Arc::new(BlackHole)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let start = Instant::now();
        let err = conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping,
            })
            .unwrap_err();
        assert!(matches!(err, JiffyError::Timeout { .. }), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(5));
        jiffy_common::set_call_timeout(jiffy_common::DEFAULT_CALL_TIMEOUT);
        drop(server);
    }

    #[test]
    fn bad_address_is_rejected() {
        assert!(connect_tcp("inproc:1").is_err());
        assert!(connect_tcp("tcp:").is_err());
    }

    #[test]
    fn call_after_close_fails() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        conn.close();
        assert!(conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping
            })
            .is_err());
    }

    #[test]
    fn server_shutdown_refuses_new_connections() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let addr = server.addr().to_string();
        server.shutdown();
        // The listener is gone; dialing should now fail (or the accepted
        // socket is immediately closed, failing the first call).
        match connect_tcp(&addr) {
            Err(_) => {}
            Ok(conn) => {
                assert!(conn
                    .call(Envelope::DataReq {
                        id: 0,
                        req: DataRequest::Ping
                    })
                    .is_err());
            }
        }
    }
}
