//! Framed TCP transport.
//!
//! Mirrors the paper's Thrift deployment: every connection carries
//! length-prefixed frames (see [`jiffy_proto::frame`]); a per-connection
//! demultiplexer on the client side lets many threads keep requests in
//! flight concurrently, and the server can push notifications on the same
//! connection at any time (envelope variant [`Envelope::Push`]).

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::Arc;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use jiffy_common::{JiffyError, Result};
use jiffy_proto::{frame, from_bytes, to_bytes, Envelope};
use jiffy_sync::Mutex;

use crate::service::{ClientConn, Connection, PushCallback, PushSlot, Service, SessionHandle};

/// Deadline for one TCP request/response round trip. A reply that does
/// not arrive in time fails the call with [`JiffyError::Timeout`] instead
/// of blocking forever (a dropped reply used to hang the caller); the
/// waiter is removed so a late reply is discarded by the demux thread.
pub const CALL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Handle to a running TCP server; dropping it (or calling
/// [`TcpServerHandle::shutdown`]) stops the accept loop.
pub struct TcpServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// The address clients should dial, in Jiffy `tcp:host:port` form.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops accepting new connections. Existing connections live until
    /// their peers disconnect.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop with a throwaway connection.
            if let Some(hostport) = self.addr.strip_prefix("tcp:") {
                let _ = TcpStream::connect(hostport);
            }
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a TCP server for `service` on `bind` (e.g. `127.0.0.1:0` for an
/// ephemeral port) and returns its handle.
///
/// # Errors
///
/// Fails if the listener cannot bind.
pub fn serve_tcp(bind: &str, service: Arc<dyn Service>) -> Result<TcpServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name(format!("jiffy-tcp-accept-{local}"))
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        let svc = service.clone();
                        let _ = std::thread::Builder::new()
                            .name("jiffy-tcp-session".into())
                            .spawn(move || session_loop(s, svc));
                    }
                    Err(_) => continue,
                }
            }
        })
        .map_err(|e| JiffyError::Rpc(format!("spawn accept thread: {e}")))?;
    Ok(TcpServerHandle {
        addr: format!("tcp:{local}"),
        stop,
        accept_thread: Some(accept_thread),
    })
}

/// Serves one accepted connection until EOF or a transport error.
fn session_loop(stream: TcpStream, service: Arc<dyn Service>) {
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    }));
    let push_writer = writer.clone();
    let session = SessionHandle::new(Arc::new(move |n| {
        if let Ok(bytes) = to_bytes(&Envelope::Push(n)) {
            let mut w = push_writer.lock();
            let _ = frame::write_frame(&mut *w, &bytes);
        }
    }));
    let mut reader = stream;
    while let Ok(Some(payload)) = frame::read_frame(&mut reader) {
        let env: Envelope = match from_bytes(&payload) {
            Ok(e) => e,
            Err(_) => break,
        };
        let resp = service.handle(env, &session);
        let bytes = match to_bytes(&resp) {
            Ok(b) => b,
            Err(_) => break,
        };
        let mut w = writer.lock();
        if frame::write_frame(&mut *w, &bytes).is_err() {
            break;
        }
    }
    service.on_disconnect(&session);
}

/// Dials a Jiffy TCP address (`tcp:host:port`).
///
/// # Errors
///
/// Fails on malformed addresses or connection errors.
pub fn connect_tcp(addr: &str) -> Result<ClientConn> {
    let hostport = addr
        .strip_prefix("tcp:")
        .ok_or_else(|| JiffyError::Rpc(format!("bad tcp address: {addr}")))?;
    let stream = TcpStream::connect(hostport)?;
    let _ = stream.set_nodelay(true);
    let conn = TcpConn::start(stream)?;
    Ok(ClientConn(Arc::new(conn)))
}

type Waiters = Arc<Mutex<HashMap<u64, Sender<Result<Envelope>>>>>;

struct TcpConn {
    writer: Mutex<TcpStream>,
    waiters: Waiters,
    push: PushSlot,
    next_id: AtomicU64,
    closed: Arc<AtomicBool>,
    stream_for_close: TcpStream,
}

impl TcpConn {
    fn start(stream: TcpStream) -> Result<Self> {
        let writer = stream.try_clone()?;
        let stream_for_close = stream.try_clone()?;
        let waiters: Waiters = Arc::new(Mutex::new(HashMap::new()));
        let push = PushSlot::new();
        let closed = Arc::new(AtomicBool::new(false));
        let w2 = waiters.clone();
        let p2 = push.clone();
        let c2 = closed.clone();
        let mut reader = stream;
        std::thread::Builder::new()
            .name("jiffy-tcp-demux".into())
            .spawn(move || {
                while let Ok(Some(payload)) = frame::read_frame(&mut reader) {
                    match from_bytes::<Envelope>(&payload) {
                        Ok(Envelope::Push(n)) => p2.deliver(n),
                        Ok(env) => {
                            let id = match &env {
                                Envelope::ControlResp { id, .. }
                                | Envelope::DataResp { id, .. } => *id,
                                _ => continue,
                            };
                            if let Some(tx) = w2.lock().remove(&id) {
                                let _ = tx.send(Ok(env));
                            }
                        }
                        Err(_) => break,
                    }
                }
                // Connection is dead: fail every pending call by dropping
                // its sender, and refuse future calls.
                c2.store(true, Ordering::SeqCst);
                w2.lock().clear();
            })
            .map_err(|e| JiffyError::Rpc(format!("spawn demux thread: {e}")))?;
        Ok(Self {
            writer: Mutex::new(writer),
            waiters,
            push,
            next_id: AtomicU64::new(1),
            closed,
            stream_for_close,
        })
    }
}

impl Connection for TcpConn {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        // Correlation id: callers that stamped a non-zero id keep it (so a
        // retry can reuse the id and hit the server's replay cache);
        // unstamped requests get a connection-unique id.
        let (id, req) = match req {
            Envelope::ControlReq { id: 0, req } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::ControlReq { id, req })
            }
            Envelope::DataReq { id: 0, req } => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                (id, Envelope::DataReq { id, req })
            }
            Envelope::ControlReq { id, req } => (id, Envelope::ControlReq { id, req }),
            Envelope::DataReq { id, req } => (id, Envelope::DataReq { id, req }),
            other => {
                return Err(JiffyError::Rpc(format!(
                    "cannot call with non-request envelope {other:?}"
                )))
            }
        };
        let (tx, rx) = bounded(1);
        self.waiters.lock().insert(id, tx);
        let bytes = to_bytes(&req)?;
        {
            let mut w = self.writer.lock();
            if let Err(e) = frame::write_frame(&mut *w, &bytes) {
                self.waiters.lock().remove(&id);
                return Err(e);
            }
        }
        match rx.recv_timeout(CALL_TIMEOUT) {
            Ok(resp) => resp,
            Err(RecvTimeoutError::Timeout) => {
                // Unregister so the demux thread discards the late reply.
                self.waiters.lock().remove(&id);
                Err(JiffyError::Timeout {
                    after_ms: CALL_TIMEOUT.as_millis() as u64,
                })
            }
            Err(RecvTimeoutError::Disconnected) => Err(JiffyError::Rpc(
                "connection dropped while awaiting response".into(),
            )),
        }
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.push.set(cb);
    }

    fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let _ = self.stream_for_close.shutdown(std::net::Shutdown::Both);
            // Wake all pending waiters with an error by dropping senders.
            self.waiters.lock().clear();
        }
    }
}

impl Drop for TcpConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::BlockId;
    use jiffy_proto::{DataRequest, DataResponse, Notification, OpKind};
    use jiffy_sync::atomic::AtomicUsize;

    struct Echo;

    impl Service for Echo {
        fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
            match req {
                Envelope::DataReq {
                    id,
                    req: DataRequest::Ping,
                } => {
                    session.push(Notification {
                        block: BlockId(0),
                        op: OpKind::Write,
                        size: 0,
                        seq: id,
                    });
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
                Envelope::DataReq { id, req } => Envelope::DataResp {
                    id,
                    resp: Err(JiffyError::Internal(format!("unexpected {req:?}"))),
                },
                _ => Envelope::DataResp {
                    id: 0,
                    resp: Err(JiffyError::Internal("bad envelope".into())),
                },
            }
        }
    }

    #[test]
    fn tcp_round_trip_and_push() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        conn.set_push_callback(Arc::new(move |_| {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..10 {
            let resp = conn
                .call(Envelope::DataReq {
                    id: 0,
                    req: DataRequest::Ping,
                })
                .unwrap();
            assert!(matches!(
                resp,
                Envelope::DataResp {
                    resp: Ok(DataResponse::Pong),
                    ..
                }
            ));
        }
        // Pushes arrive asynchronously; poll briefly.
        for _ in 0..100 {
            if seen.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(seen.load(Ordering::SeqCst), 10);
        server.shutdown();
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_connection() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = conn.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let resp = c
                        .call(Envelope::DataReq {
                            id: 0,
                            req: DataRequest::Ping,
                        })
                        .unwrap();
                    assert!(matches!(
                        resp,
                        Envelope::DataResp {
                            resp: Ok(DataResponse::Pong),
                            ..
                        }
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn bad_address_is_rejected() {
        assert!(connect_tcp("inproc:1").is_err());
        assert!(connect_tcp("tcp:").is_err());
    }

    #[test]
    fn call_after_close_fails() {
        let server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let conn = connect_tcp(server.addr()).unwrap();
        conn.close();
        assert!(conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping
            })
            .is_err());
    }

    #[test]
    fn server_shutdown_refuses_new_connections() {
        let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).unwrap();
        let addr = server.addr().to_string();
        server.shutdown();
        // The listener is gone; dialing should now fail (or the accepted
        // socket is immediately closed, failing the first call).
        match connect_tcp(&addr) {
            Err(_) => {}
            Ok(conn) => {
                assert!(conn
                    .call(Envelope::DataReq {
                        id: 0,
                        req: DataRequest::Ping
                    })
                    .is_err());
            }
        }
    }
}
