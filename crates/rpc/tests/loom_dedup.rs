//! Loom models for the [`Deduplicated`] replay cache — the retry /
//! eviction / session races PR 1's chaos harness found empirically.
//!
//! Exhaustive model checking (bounded preemption, see `vendor/loom`):
//!
//! ```text
//! cargo test -p jiffy-rpc --features loom --test loom_dedup
//! ```
//!
//! Without the feature, `jiffy_sync::model` runs each body once with real
//! threads, so these double as plain smoke tests in ordinary `cargo test`
//! runs (except the exploration-counting test, which needs the model
//! checker to enumerate schedules).

use jiffy_proto::{DataRequest, DataResponse, DsResult, Envelope};
use jiffy_rpc::{Deduplicated, Service, SessionHandle};
use jiffy_sync::atomic::{AtomicUsize, Ordering};
use jiffy_sync::{model, thread, Arc};

/// Stamps every *executed* request with a fresh counter value, so a
/// replayed response is distinguishable from a re-execution.
#[derive(Default)]
struct Stamping {
    executed: AtomicUsize,
}

impl Stamping {
    fn executed(&self) -> usize {
        self.executed.load(Ordering::SeqCst)
    }
}

impl Service for Stamping {
    fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
        let n = self.executed.fetch_add(1, Ordering::SeqCst) as u64;
        match req {
            Envelope::DataReq { id, .. } => Envelope::DataResp {
                id,
                resp: Ok(DataResponse::OpResult(DsResult::Size(n))),
            },
            _ => unreachable!("models only send data requests"),
        }
    }
}

fn session() -> SessionHandle {
    SessionHandle::new(Arc::new(|_| {}))
}

fn req(id: u64) -> Envelope {
    Envelope::DataReq {
        id,
        req: DataRequest::Ping,
        tenant: jiffy_common::TenantId::ANONYMOUS,
    }
}

#[test]
fn concurrent_retries_on_one_session_never_reexecute() {
    model(|| {
        let d = Arc::new(Deduplicated::new(Stamping::default()));
        let s = session();
        let first = d.handle(req(1), &s);
        // The client timed out twice and fires two concurrent retries of
        // the same id on the SAME session (the PR 1 fix keeps the session
        // alive across timeouts precisely so this holds).
        let (d1, s1, f1) = (Arc::clone(&d), s.clone(), first.clone());
        let t1 = thread::spawn(move || assert_eq!(d1.handle(req(1), &s1), f1));
        let (d2, s2, f2) = (Arc::clone(&d), s.clone(), first.clone());
        let t2 = thread::spawn(move || assert_eq!(d2.handle(req(1), &s2), f2));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(d.inner().executed(), 1, "completed op re-executed");
    });
}

/// Re-introduces the exact bug PR 1's harness caught: a timed-out
/// connection was torn down and re-dialed, and the retry arrived on a
/// FRESH session whose empty replay cache let the op execute again
/// (double-executed dequeues). The model must report the violation.
#[test]
fn model_catches_the_pr1_fresh_session_retry_bug() {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        model(|| {
            let d = Arc::new(Deduplicated::new(Stamping::default()));
            let s = session();
            let _first = d.handle(req(1), &s);
            // BUG under test: retry after redial = new session id.
            let fresh = session();
            let d1 = Arc::clone(&d);
            let t = thread::spawn(move || d1.handle(req(1), &fresh));
            t.join().unwrap();
            // The at-most-once invariant the replay cache must provide:
            assert_eq!(d.inner().executed(), 1, "retry re-executed the op");
        });
    }));
    assert!(
        caught.is_err(),
        "the model must catch the fresh-session double execution"
    );
}

/// A retry racing FIFO eviction (capacity 1, so one new id evicts the
/// cached response). Both outcomes are legal — replay if the retry wins,
/// re-execution if eviction wins — and the checker must explore both;
/// what may never happen is a torn response or a lost cache entry for
/// the evicting request itself.
#[cfg(feature = "loom")]
#[test]
fn retry_vs_eviction_explores_both_outcomes() {
    let outcomes = Arc::new(AtomicUsize::new(0)); // bit 0: replay, bit 1: re-exec
    let oc = Arc::clone(&outcomes);
    model(move || {
        let d = Arc::new(Deduplicated::with_capacity(Stamping::default(), 1));
        let s = session();
        let first = d.handle(req(1), &s);
        let (da, sa) = (Arc::clone(&d), s.clone());
        let retry = thread::spawn(move || da.handle(req(1), &sa));
        let (db, sb) = (Arc::clone(&d), s.clone());
        let evictor = thread::spawn(move || db.handle(req(2), &sb));
        let retried = retry.join().unwrap();
        evictor.join().unwrap();
        if retried == first {
            oc.fetch_or(1, Ordering::SeqCst);
            assert_eq!(d.inner().executed(), 2); // id 1 once + id 2
        } else {
            oc.fetch_or(2, Ordering::SeqCst);
            assert_eq!(d.inner().executed(), 3); // id 1 twice + id 2
        }
    });
    assert_eq!(
        outcomes.load(Ordering::SeqCst),
        3,
        "model must explore both the replay and the eviction-first schedule"
    );
}
