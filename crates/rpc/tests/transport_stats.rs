//! Regression tests for accept-error and spawn-failure accounting on the
//! reactor transport ([`TransportStats`]).
//!
//! The pre-reactor transport silently swallowed accept errors and failed
//! session spawns — the listener would log nothing, count nothing, and a
//! stats-driven operator had no signal that connections were bouncing.
//! These tests pin the contract the rewrite established: every accept
//! error and every failed session registration increments its counter,
//! and the listener *keeps accepting* afterwards.

use std::time::{Duration, Instant};

use jiffy_proto::{DataRequest, DataResponse, Envelope};
use jiffy_rpc::tcp::{connect_tcp, serve_tcp};
use jiffy_rpc::{Service, SessionHandle};
use jiffy_sync::{Arc, Condvar, Mutex};

fn ping(id: u64) -> Envelope {
    Envelope::DataReq {
        id,
        req: DataRequest::Ping,
        tenant: jiffy_common::TenantId::ANONYMOUS,
    }
}

fn is_pong(resp: &Envelope) -> bool {
    matches!(
        resp,
        Envelope::DataResp {
            resp: Ok(DataResponse::Pong),
            ..
        }
    )
}

/// Polls `cond` until true or the deadline; returns whether it held.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

struct Pong;

impl Service for Pong {
    fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
        match req {
            Envelope::DataReq { id, .. } => Envelope::DataResp {
                id,
                resp: Ok(DataResponse::Pong),
            },
            _ => unreachable!("tests only send data requests"),
        }
    }
}

/// A service whose calls block on a gate until the test opens it — used
/// to wedge every worker thread at a known point.
struct Gated {
    open: Mutex<bool>,
    cv: Condvar,
    entered: Mutex<usize>,
}

impl Gated {
    fn new() -> Self {
        Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: Mutex::new(0),
        }
    }

    fn entered(&self) -> usize {
        *self.entered.lock()
    }

    fn release(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

impl Service for Gated {
    fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
        *self.entered.lock() += 1;
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
        drop(open);
        match req {
            Envelope::DataReq { id, .. } => Envelope::DataResp {
                id,
                resp: Ok(DataResponse::Pong),
            },
            _ => unreachable!("tests only send data requests"),
        }
    }
}

/// Injected accept errors are counted and do not kill the accept loop:
/// connections dialed while errors are pending eventually get through,
/// and the counter reflects exactly the injected failures.
#[test]
fn accept_errors_are_counted_and_the_listener_survives() {
    jiffy_common::set_call_timeout(Duration::from_secs(5));
    let mut server = serve_tcp("127.0.0.1:0", Arc::new(Pong)).expect("serve");
    let addr = server.addr().to_string();
    assert_eq!(server.stats().accept_errors, 0);

    server.inject_accept_errors(3);
    // Each dial's connect succeeds at the kernel level (backlog), so
    // simply keep issuing calls: the first few sessions bounce off the
    // injected errors, but the listener must keep draining the backlog
    // and serve every retry.
    let mut served = 0;
    for attempt in 0..20 {
        if let Ok(conn) = connect_tcp(&addr) {
            if conn.call(ping(attempt + 1)).map(|r| is_pong(&r)) == Ok(true) {
                served += 1;
            }
            conn.close();
        }
        if served >= 3 && server.stats().accept_errors >= 3 {
            break;
        }
    }
    let stats = server.stats();
    assert_eq!(
        stats.accept_errors, 3,
        "every injected accept error must be counted"
    );
    assert!(
        served >= 3,
        "the listener must keep accepting after errors (served {served})"
    );
    server.shutdown();
}

/// Failed session registrations (fd setup / nonblocking / clone errors)
/// are counted as spawn failures; the peer sees a reset, the listener
/// keeps accepting, and later sessions work.
#[test]
fn spawn_failures_are_counted_and_later_sessions_work() {
    jiffy_common::set_call_timeout(Duration::from_secs(5));
    let mut server = serve_tcp("127.0.0.1:0", Arc::new(Pong)).expect("serve");
    let addr = server.addr().to_string();

    server.fail_next_sessions(2);
    let mut ok_calls = 0;
    for attempt in 0..20 {
        if let Ok(conn) = connect_tcp(&addr) {
            // A failed spawn closes the socket: the call errors. That is
            // the contract — callers retry, as the fabric layer does.
            if conn.call(ping(attempt + 1)).map(|r| is_pong(&r)) == Ok(true) {
                ok_calls += 1;
            }
            conn.close();
        }
        if ok_calls >= 2 && server.stats().spawn_failures >= 2 {
            break;
        }
    }
    let stats = server.stats();
    assert_eq!(
        stats.spawn_failures, 2,
        "every injected spawn failure must be counted"
    );
    assert!(
        ok_calls >= 2,
        "sessions after the failures must work (got {ok_calls})"
    );
    assert_eq!(
        stats.accept_errors, 0,
        "spawn failures are not accept errors"
    );
    // Accounting stays square: every accepted-and-spawned session closes.
    assert!(
        eventually(Duration::from_secs(10), || {
            let s = server.stats();
            s.sessions_closed == s.accepted - s.spawn_failures
        }),
        "spawned sessions must all finalize ({:?})",
        server.stats()
    );
    server.shutdown();
}

/// Worker-pool exhaustion: with a single worker wedged inside a call,
/// the listener still accepts new sessions and their requests queue
/// behind the busy worker rather than being dropped; releasing the gate
/// drains everything.
#[test]
fn exhausted_worker_pool_queues_instead_of_dropping() {
    jiffy_common::set_call_timeout(Duration::from_secs(30));
    let workers_before = jiffy_common::rpc_workers();
    jiffy_common::set_rpc_workers(1);
    let svc = Arc::new(Gated::new());
    let mut server = serve_tcp("127.0.0.1:0", svc.clone()).expect("serve");
    // Restore for any test that runs after us in-process.
    jiffy_common::set_rpc_workers(workers_before);
    let addr = server.addr().to_string();

    // Wedge the lone worker.
    let blocker = connect_tcp(&addr).expect("dial blocker");
    let b = {
        let blocker = blocker.clone();
        std::thread::spawn(move || blocker.call(ping(1)))
    };
    assert!(
        eventually(Duration::from_secs(10), || svc.entered() == 1),
        "the worker must be inside the gated call"
    );

    // The pool is exhausted; the listener must still accept sessions and
    // the reactor must still read their requests.
    let waiters: Vec<_> = (0..4)
        .map(|i| {
            let conn = connect_tcp(&addr).expect("dial while exhausted");
            std::thread::spawn(move || {
                let r = conn.call(ping(10 + i));
                conn.close();
                r
            })
        })
        .collect();
    assert!(
        eventually(Duration::from_secs(10), || server.live_sessions() == 5),
        "listener must accept while the pool is exhausted (live {})",
        server.live_sessions()
    );
    // No extra executions sneak past the single worker.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(svc.entered(), 1, "only the lone worker may be executing");

    svc.release();
    for w in waiters {
        let resp = w
            .join()
            .expect("waiter")
            .expect("queued call must complete");
        assert!(is_pong(&resp), "got {resp:?}");
    }
    assert!(is_pong(&b.join().expect("blocker").expect("blocker call")));
    assert_eq!(svc.entered(), 5);

    let stats = server.stats();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.spawn_failures, 0);
    assert_eq!(stats.accept_errors, 0);
    blocker.close();
    server.shutdown();
}
