//! Property-based tests for [`ReplayWindow`] — the bounded replay
//! window under both the per-session dedup cache and the per-block
//! exactly-once window (DESIGN.md par.16).
//!
//! Two properties matter operationally: the window's memory is bounded
//! no matter the insert/lookup sequence (a block cannot be ballooned by
//! a retry storm), and export → import is an exact restore (a promoted
//! or repartitioned replica answers retries identically to the source).

use jiffy_rpc::ReplayWindow;
use proptest::prelude::*;

/// One step of window traffic. Ids are drawn from a small range so
/// repeats (retries) and evict/re-insert cycles both occur often.
#[derive(Clone, Debug)]
enum Step {
    Insert { id: u64, value: u32, bytes: u64 },
    Lookup { id: u64 },
}

fn step_strategy(max_entry_bytes: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..48, any::<u32>(), 0..=max_entry_bytes).prop_map(|(id, value, bytes)| Step::Insert {
            id,
            value,
            bytes
        }),
        (0u64..48).prop_map(|id| Step::Lookup { id }),
    ]
}

proptest! {
    /// Whatever the traffic, the window never holds more than
    /// `max_entries` entries or `max_bytes` total weight (given no
    /// single entry exceeds the byte budget, as on the block path where
    /// per-op results are far below `REPLAY_WINDOW_BYTES`), so resident
    /// memory is bounded by capacity × per-entry cap.
    #[test]
    fn eviction_keeps_the_window_within_both_bounds(
        max_entries in 1usize..24,
        max_bytes in 1u64..4096,
        steps in proptest::collection::vec(step_strategy(256), 0..200),
    ) {
        let entry_cap = 256u64.min(max_bytes);
        let mut w = ReplayWindow::<u32>::new(max_entries, max_bytes);
        let mut watermark = 0;
        for step in steps {
            match step {
                Step::Insert { id, value, bytes } => {
                    w.insert(id, value, bytes.min(entry_cap));
                }
                Step::Lookup { id } => {
                    let _ = w.lookup(id);
                }
            }
            prop_assert!(w.len() <= max_entries, "{} entries", w.len());
            prop_assert!(w.bytes() <= max_bytes, "{} bytes", w.bytes());
            prop_assert!(
                w.watermark() >= watermark,
                "watermark moved backwards"
            );
            watermark = w.watermark();
        }
    }

    /// First insert wins: a retry racing its own record never overwrites
    /// the canonical first-execution result, and a lookup always returns
    /// that result while the entry is resident.
    #[test]
    fn repeated_ids_keep_the_first_value(
        id in any::<u64>(),
        first in any::<u32>(),
        later in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let mut w = ReplayWindow::new(16, 1 << 16);
        w.insert(id, first, 8);
        for v in later {
            w.insert(id, v, 8);
            prop_assert_eq!(w.lookup(id), Some(&first));
        }
        prop_assert_eq!(w.len(), 1);
    }

    /// Export → import into an empty window is an exact restore: the
    /// re-export is byte-identical, so a chain of promotions/migrations
    /// (export, ship, import, export again) never drifts.
    #[test]
    fn export_import_round_trips_byte_exactly(
        steps in proptest::collection::vec(step_strategy(128), 0..120),
    ) {
        let mut src = ReplayWindow::<u32>::new(12, 1024);
        for step in steps {
            match step {
                Step::Insert { id, value, bytes } => src.insert(id, value, bytes),
                Step::Lookup { id } => {
                    let _ = src.lookup(id);
                }
            }
        }
        let image = src.export_bytes().expect("export");
        let mut dst = ReplayWindow::<u32>::new(12, 1024);
        dst.import_bytes(&image).expect("import");
        prop_assert_eq!(dst.len(), src.len());
        prop_assert_eq!(dst.bytes(), src.bytes());
        prop_assert_eq!(dst.watermark(), src.watermark());
        let reexport = dst.export_bytes().expect("re-export");
        prop_assert!(reexport == image, "restore is not byte-exact");
    }
}
