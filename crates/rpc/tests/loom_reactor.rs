//! Loom models for the reactor's two lock-free-looking handoffs
//! (DESIGN.md §12): the [`WaiterTable`] claim / unregister / fail-all
//! races on the demux path, and the [`EgressQueue`] enqueue vs
//! writability-drain race on the egress path.
//!
//! Exhaustive model checking (bounded preemption, see `vendor/loom`):
//!
//! ```text
//! cargo test -p jiffy-rpc --features loom --test loom_reactor
//! ```
//!
//! Without the feature, `jiffy_sync::model` runs each body once with real
//! threads, so these double as plain smoke tests in ordinary `cargo test`
//! runs.

use std::collections::VecDeque;
use std::io;

use jiffy_proto::{encode_frame, DataResponse, Envelope};
use jiffy_rpc::{EgressQueue, EgressSink, SendStatus, WaiterTable};
use jiffy_sync::{model, thread, Arc, Mutex};

fn reply(id: u64) -> Envelope {
    Envelope::DataResp {
        id,
        resp: Ok(DataResponse::Pong),
    }
}

/// Readiness event (reply demux) racing session close (`fail_all`): the
/// parked caller must receive exactly one terminal outcome — the reply
/// if the demux claims first, the close error if teardown drains first —
/// and never hang on a slot both sides forgot.
#[test]
fn reply_delivery_vs_session_close_never_loses_the_waiter() {
    model(|| {
        let table = Arc::new(WaiterTable::new());
        let slot = table.register(1);

        let demux = {
            let t = Arc::clone(&table);
            thread::spawn(move || {
                // The reactor read a frame for id 1 off the socket.
                if let Some(s) = t.claim(1) {
                    s.deliver(Ok(reply(1)));
                    true
                } else {
                    false
                }
            })
        };
        let closer = {
            let t = Arc::clone(&table);
            thread::spawn(move || t.fail_all("connection closed"))
        };

        // The caller parked on the slot: exactly one of the racing sides
        // owns it, so this must always return.
        let outcome = slot.wait_reply();
        let claimed = demux.join().unwrap();
        closer.join().unwrap();

        match outcome {
            Ok(e) => {
                assert!(claimed, "reply delivered but demux never claimed");
                assert_eq!(e, reply(1));
            }
            Err(_) => assert!(!claimed, "claimed reply must win over the close error"),
        }
        assert_eq!(table.live(), 0, "the slot must leave the live map");
    });
}

/// Caller timeout (`unregister`) racing reply demux (`claim`): ownership
/// of the slot transfers to exactly one side, the claimed reply is still
/// delivered (the caller falls back to `wait_reply`, as `TcpConn::call`
/// does), and the slot is recycled into the pool exactly once — a
/// double-free would show up as two pooled copies of one slot.
#[test]
fn timeout_unregister_vs_claim_recycles_the_slot_exactly_once() {
    model(|| {
        let table = Arc::new(WaiterTable::new());
        let slot = table.register(1);

        let demux = {
            let t = Arc::clone(&table);
            thread::spawn(move || match t.claim(1) {
                Some(s) => {
                    s.deliver(Ok(reply(1)));
                    true
                }
                None => false,
            })
        };

        // The caller's deadline passed; it tries to retract the waiter.
        let mine = table.unregister(1, &slot);
        let claimed = demux.join().unwrap();
        assert!(
            mine != claimed,
            "slot ownership must transfer to exactly one side"
        );
        if !mine {
            // Demux won the race: delivery is imminent, the reply must
            // not be lost.
            assert_eq!(slot.wait_reply().unwrap(), reply(1));
        }
        table.recycle(1, slot);

        assert_eq!(table.live(), 0);
        assert_eq!(
            table.free_slots(),
            1,
            "the slot must be pooled exactly once"
        );
    });
}

/// A sink whose write calls follow a script — `Accept(n)` takes up to
/// `n` bytes, `Park` reports `WouldBlock` — then accept everything.
/// Records every byte it accepted, in order.
struct ScriptedSink {
    state: Mutex<SinkState>,
}

struct SinkState {
    script: VecDeque<Step>,
    wrote: Vec<u8>,
}

enum Step {
    Accept(usize),
    Park,
}

impl ScriptedSink {
    fn new(script: Vec<Step>) -> Self {
        Self {
            state: Mutex::new(SinkState {
                script: script.into(),
                wrote: Vec::new(),
            }),
        }
    }

    fn wrote(&self) -> Vec<u8> {
        self.state.lock().wrote.clone()
    }
}

impl EgressSink for ScriptedSink {
    fn sink_write(&self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock();
        match st.script.pop_front() {
            Some(Step::Park) => Err(io::ErrorKind::WouldBlock.into()),
            Some(Step::Accept(n)) => {
                // The drain never writes an empty window, so `n >= 1`
                // keeps this from faking a peer close (`Ok(0)`).
                let n = n.min(buf.len());
                st.wrote.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            None => {
                st.wrote.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }
}

/// Sender enqueue racing the reactor's writability drain across a
/// partial write and a `WouldBlock` park: whatever the interleaving, the
/// sink must end up with both frames, byte-exact and in order — never a
/// torn, reordered or dropped frame.
#[test]
fn egress_enqueue_vs_drain_never_reorders_or_drops_frames() {
    model(|| {
        // First write takes 2 bytes (mid-header tear), then the socket
        // blocks once, then opens up.
        let sink = ScriptedSink::new(vec![Step::Accept(2), Step::Park]);
        let egress = Arc::new(EgressQueue::with_cap(sink, 1 << 20));

        let f1 = b"first-frame".as_slice();
        let f2 = b"second".as_slice();

        let sender = {
            let e = Arc::clone(&egress);
            thread::spawn(move || e.send(b"first-frame").unwrap())
        };
        let reactor = {
            let e = Arc::clone(&egress);
            thread::spawn(move || e.on_writable().unwrap())
        };
        sender.join().unwrap();
        reactor.join().unwrap();

        // The session sends one more frame, then the reactor's next
        // writability event drains whatever is still parked.
        egress.send(f2).unwrap();
        let mut spins = 0;
        while egress.needs_write() {
            assert!(spins < 4, "drain must terminate");
            spins += 1;
            egress.on_writable().unwrap();
        }
        assert_eq!(egress.pending(), 0);

        let mut expect = Vec::new();
        encode_frame(f1, &mut expect).unwrap();
        encode_frame(f2, &mut expect).unwrap();
        assert_eq!(
            egress.sink().wrote(),
            expect,
            "frames must reach the wire byte-exact and in enqueue order"
        );
    });
}

/// The parked flag must hand the drain to the reactor exactly once: a
/// send that lands while the queue is parked returns `Parked` without
/// touching the sink, and the next writability event flushes both the
/// parked and the newly queued frame.
#[test]
fn send_while_parked_rides_the_next_writability_event() {
    model(|| {
        let sink = ScriptedSink::new(vec![Step::Park]);
        let egress = Arc::new(EgressQueue::with_cap(sink, 1 << 20));
        assert_eq!(egress.send(b"parked").unwrap(), SendStatus::Parked);

        let sender = {
            let e = Arc::clone(&egress);
            thread::spawn(move || e.send(b"rider").unwrap())
        };
        let reactor = {
            let e = Arc::clone(&egress);
            thread::spawn(move || e.on_writable().unwrap())
        };
        let rider = sender.join().unwrap();
        reactor.join().unwrap();
        // Whichever side took the lock last drained everything: a rider
        // that observed `parked` is flushed by the (necessarily later)
        // drain, and a rider after the drain flushes itself.
        if rider == SendStatus::Parked {
            assert!(!egress.needs_write(), "parked rider left undrained");
        }
        assert_eq!(egress.pending(), 0, "no frame may be stranded");

        let mut expect = Vec::new();
        encode_frame(b"parked", &mut expect).unwrap();
        encode_frame(b"rider", &mut expect).unwrap();
        assert_eq!(egress.sink().wrote(), expect);
    });
}
