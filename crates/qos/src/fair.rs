//! Weighted max-min fair division (water-filling).
//!
//! Used by the controller to arbitrate contested block allocations under
//! memory pressure: each tenant's configured share acts as a weight, and
//! a tenant whose demand exceeds its weighted fair portion is capped
//! while unused portions of frugal tenants are redistributed to the
//! rest. This is the classic progressive-filling algorithm; the result
//! is the unique weighted max-min fair allocation.

/// Divides `capacity` units among claimants with `(weight, demand)`
/// pairs, returning the per-claimant grant in input order.
///
/// Properties (for positive weights):
/// - no claimant receives more than its demand;
/// - the grants sum to at most `capacity` (exactly, when total demand
///   reaches capacity);
/// - a claimant whose grant is below its demand has a grant at least as
///   large, weight-normalized, as every other claimant's (max-min
///   fairness).
///
/// Zero weights are treated as weight 1 so a misconfigured tenant
/// degrades to an equal share instead of total starvation.
pub fn weighted_max_min(capacity: u64, demands: &[(u32, u64)]) -> Vec<u64> {
    let mut grant = vec![0u64; demands.len()];
    let mut remaining = capacity;
    // Indices still below their demand, with effective weights.
    let mut active: Vec<usize> = (0..demands.len()).filter(|&i| demands[i].1 > 0).collect();
    while !active.is_empty() && remaining > 0 {
        let total_w: u64 = active.iter().map(|&i| u64::from(demands[i].0.max(1))).sum();
        // Water level per unit weight this round. Integer division:
        // leftovers stay in `remaining` and are redistributed next
        // round; a final sub-`total_w` remainder goes to the first
        // still-hungry claimants one unit at a time.
        let per_w = remaining / total_w;
        let mut progressed = false;
        let mut next_active = Vec::with_capacity(active.len());
        for &i in &active {
            let w = u64::from(demands[i].0.max(1));
            let offer = per_w.saturating_mul(w);
            let want = demands[i].1 - grant[i];
            let take = offer.min(want);
            grant[i] += take;
            remaining -= take;
            if take > 0 {
                progressed = true;
            }
            if grant[i] < demands[i].1 {
                next_active.push(i);
            } else {
                // Saturated claimant drops out; its unused offer was
                // never subtracted, so it redistributes automatically.
                progressed = true;
            }
        }
        active = next_active;
        if !progressed {
            // remaining < total_w: hand out the last units round-robin
            // in weight order so the sum is exact.
            for &i in &active {
                if remaining == 0 {
                    break;
                }
                let want = demands[i].1 - grant[i];
                if want > 0 {
                    grant[i] += 1;
                    remaining -= 1;
                }
            }
            break;
        }
    }
    grant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_demands_are_met_in_full() {
        let g = weighted_max_min(100, &[(1, 10), (2, 20), (1, 5)]);
        assert_eq!(g, vec![10, 20, 5]);
    }

    #[test]
    fn equal_weights_split_contended_capacity_evenly() {
        let g = weighted_max_min(100, &[(1, 1000), (1, 1000)]);
        assert_eq!(g, vec![50, 50]);
    }

    #[test]
    fn weights_scale_the_contended_split() {
        let g = weighted_max_min(90, &[(1, 1000), (2, 1000)]);
        assert_eq!(g, vec![30, 60]);
    }

    #[test]
    fn frugal_tenants_unused_share_redistributes() {
        // Tenant 0 wants only 10 of its fair 50; the surplus goes to
        // tenant 1 rather than being wasted.
        let g = weighted_max_min(100, &[(1, 10), (1, 1000)]);
        assert_eq!(g, vec![10, 90]);
    }

    #[test]
    fn grants_never_exceed_capacity_or_demand() {
        let demands = [(3, 7u64), (1, 0), (2, 100), (1, 13), (5, 1)];
        for cap in 0..150u64 {
            let g = weighted_max_min(cap, &demands);
            assert!(g.iter().sum::<u64>() <= cap);
            for (gi, (_, d)) in g.iter().zip(demands.iter()) {
                assert!(gi <= d);
            }
        }
    }

    #[test]
    fn full_capacity_is_used_when_demand_suffices() {
        let g = weighted_max_min(100, &[(1, 60), (1, 60)]);
        assert_eq!(g.iter().sum::<u64>(), 100);
    }

    #[test]
    fn zero_weight_degrades_to_weight_one() {
        let g = weighted_max_min(100, &[(0, 1000), (1, 1000)]);
        assert_eq!(g, vec![50, 50]);
    }

    #[test]
    fn empty_and_zero_capacity_edge_cases() {
        assert!(weighted_max_min(100, &[]).is_empty());
        assert_eq!(weighted_max_min(0, &[(1, 10)]), vec![0]);
        assert_eq!(weighted_max_min(100, &[(1, 0)]), vec![0]);
    }

    #[test]
    fn tiny_capacity_still_sums_exactly() {
        // capacity smaller than total weight exercises the round-robin
        // remainder path.
        let g = weighted_max_min(3, &[(5, 10), (5, 10), (5, 10), (5, 10)]);
        assert_eq!(g.iter().sum::<u64>(), 3);
        assert!(g.iter().all(|&x| x <= 1));
    }
}
