//! Multi-tenant quality-of-service for Jiffy (DESIGN.md §14).
//!
//! The paper motivates Jiffy against static per-tenant partitioning
//! (Fig. 1) — but elastic sharing is only safe when one hot tenant
//! cannot starve the rest. This crate supplies the three mechanisms
//! that make sharing safe, each usable independently:
//!
//! - [`bucket`] — a token bucket over the injected [`Clock`], the
//!   primitive behind per-tenant op/byte rate limiting. Supports
//!   *post-paid* charges (egress bytes are only known after execution)
//!   by letting the level go negative: the deficit delays the tenant's
//!   *next* admission instead of throttling a finished response.
//! - [`fair`] — weighted max-min fair division ("water-filling"), used
//!   by the controller to arbitrate contested block allocations under
//!   memory pressure instead of first-come-first-served freelist grabs.
//! - [`admission`] — the server-side admission controller: one pair of
//!   token buckets per tenant, cumulative load counters, and an op-rate
//!   EWMA, all snapshotted into [`jiffy_proto::TenantLoad`] rows for
//!   heartbeat reporting.
//! - [`directory`] — the controller-side tenant configuration table
//!   (shares, quotas, rate limits) with defaults from
//!   [`jiffy_common::config::QosConfig`].
//!
//! Throttling happens strictly *before* execution (and before the
//! replay cache registers the request), so a [`Throttled`] rejection is
//! server-definitive: retrying with the same request id can never
//! double-apply an operation.
//!
//! [`Clock`]: jiffy_common::Clock
//! [`Throttled`]: jiffy_common::JiffyError::Throttled

pub mod admission;
pub mod bucket;
pub mod directory;
pub mod fair;

pub use admission::AdmissionControl;
pub use bucket::TokenBucket;
pub use directory::TenantDirectory;
pub use fair::weighted_max_min;
