//! Server-side per-tenant admission control (DESIGN.md §14).
//!
//! One [`AdmissionControl`] lives on each memory server. Every
//! tenant-attributable data-plane request passes through
//! [`admit`](AdmissionControl::admit) *before* it executes (and before
//! the replay cache registers it), so a [`Throttled`] rejection is
//! server-definitive — retrying with the same request id can never
//! double-apply an operation. Response bytes are charged *after*
//! execution via [`charge_egress`](AdmissionControl::charge_egress):
//! the byte bucket goes into deficit rather than failing a response
//! that already happened, and the deficit delays the tenant's next
//! admission.
//!
//! The anonymous tenant bypasses admission entirely: internal traffic —
//! chain replication fan-down, repartition payload transfers, controller
//! commands — must never stall mid-flight behind a tenant's bucket.
//!
//! [`Throttled`]: jiffy_common::JiffyError::Throttled

use std::collections::HashMap;
use std::time::Duration;

use jiffy_common::clock::SharedClock;
use jiffy_common::config::QosConfig;
use jiffy_common::{JiffyError, Result, TenantId};
use jiffy_proto::{TenantLimit, TenantLoad};
use jiffy_sync::Mutex;

use crate::bucket::TokenBucket;

/// Time constant of the per-tenant op-rate EWMA.
const EWMA_TAU: Duration = Duration::from_secs(1);

/// Per-tenant admission lane: rate-limit buckets plus cumulative
/// counters for heartbeat reporting.
#[derive(Debug)]
struct Lane {
    ops: TokenBucket,
    bytes: TokenBucket,
    /// The limits the lane was built from, to detect reconfiguration.
    ops_per_sec: u64,
    bytes_per_sec: u64,
    /// Cumulative counters since server start.
    ops_admitted: u64,
    ops_throttled: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Exponentially decayed op counter; rate = `decayed / τ`.
    decayed_ops: f64,
    decayed_at: Duration,
}

impl Lane {
    fn new(ops_per_sec: u64, bytes_per_sec: u64, burst_factor: f64, now: Duration) -> Self {
        Self {
            ops: TokenBucket::new(ops_per_sec, burst_factor, now),
            bytes: TokenBucket::new(bytes_per_sec, burst_factor, now),
            ops_per_sec,
            bytes_per_sec,
            ops_admitted: 0,
            ops_throttled: 0,
            bytes_in: 0,
            bytes_out: 0,
            decayed_ops: 0.0,
            decayed_at: now,
        }
    }

    fn note_ops(&mut self, ops: u64, now: Duration) {
        if now > self.decayed_at {
            let dt = (now - self.decayed_at).as_secs_f64();
            self.decayed_ops *= (-dt / EWMA_TAU.as_secs_f64()).exp();
        }
        self.decayed_at = self.decayed_at.max(now);
        self.decayed_ops += ops as f64;
    }

    fn op_rate_ewma(&self, now: Duration) -> f64 {
        let mut decayed = self.decayed_ops;
        if now > self.decayed_at {
            let dt = (now - self.decayed_at).as_secs_f64();
            decayed *= (-dt / EWMA_TAU.as_secs_f64()).exp();
        }
        decayed / EWMA_TAU.as_secs_f64()
    }
}

/// The per-server admission controller. Cheap to share behind an `Arc`;
/// all state sits under one mutex (lanes are touched once per request,
/// far off the per-op block lock path).
#[derive(Debug)]
pub struct AdmissionControl {
    cfg: QosConfig,
    clock: SharedClock,
    lanes: Mutex<HashMap<TenantId, Lane>>,
    /// Limit overrides pushed from the controller (heartbeat acks),
    /// keyed by tenant. Tenants absent here use the config defaults.
    overrides: Mutex<HashMap<TenantId, TenantLimit>>,
}

impl AdmissionControl {
    /// Creates an admission controller from the cluster QoS config.
    pub fn new(cfg: QosConfig, clock: SharedClock) -> Self {
        Self {
            cfg,
            clock,
            lanes: Mutex::new(HashMap::new()),
            overrides: Mutex::new(HashMap::new()),
        }
    }

    /// Whether admission control is active at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    fn rates_for(&self, tenant: TenantId) -> (u64, u64) {
        let overrides = self.overrides.lock();
        match overrides.get(&tenant) {
            Some(l) => (l.ops_per_sec, l.bytes_per_sec),
            None => (self.cfg.default_ops_per_sec, self.cfg.default_bytes_per_sec),
        }
    }

    /// Admits (or throttles) a request of `ops` operations carrying
    /// `bytes` payload bytes on behalf of `tenant`.
    ///
    /// Disabled QoS and the anonymous tenant always admit without
    /// accounting. On throttle, returns [`JiffyError::Throttled`] with a
    /// backoff hint covering both buckets' deficits; counters record the
    /// rejection so it surfaces in `TenantStats`.
    pub fn admit(&self, tenant: TenantId, ops: u64, bytes: u64) -> Result<()> {
        if !self.cfg.enabled || tenant.is_anonymous() {
            return Ok(());
        }
        let now = self.clock.now();
        let (ops_rate, bytes_rate) = self.rates_for(tenant);
        let mut lanes = self.lanes.lock();
        let lane = lanes
            .entry(tenant)
            .or_insert_with(|| Lane::new(ops_rate, bytes_rate, self.cfg.burst_factor, now));

        // Probe both buckets before charging either, so a rejection
        // leaves no partial debit and the retry is charged exactly once.
        let op_wait = match lane.ops.clone().admit(ops, now) {
            Ok(()) => Duration::ZERO,
            Err(w) => w,
        };
        let byte_wait = match lane.bytes.clone().admit(bytes, now) {
            Ok(()) => Duration::ZERO,
            Err(w) => w,
        };
        let wait = op_wait.max(byte_wait);
        if wait > Duration::ZERO {
            lane.ops_throttled += ops;
            return Err(JiffyError::Throttled {
                retry_after_ms: (wait.as_millis() as u64).max(1),
            });
        }
        let _ = lane.ops.admit(ops, now);
        let _ = lane.bytes.admit(bytes, now);
        lane.ops_admitted += ops;
        lane.bytes_in += bytes;
        lane.note_ops(ops, now);
        Ok(())
    }

    /// Charges `bytes` of response payload to `tenant` *after* the
    /// request executed. Never fails; the byte bucket absorbs the charge
    /// as deficit and the tenant's next admission pays it back.
    pub fn charge_egress(&self, tenant: TenantId, bytes: u64) {
        if !self.cfg.enabled || tenant.is_anonymous() || bytes == 0 {
            return;
        }
        let now = self.clock.now();
        let (ops_rate, bytes_rate) = self.rates_for(tenant);
        let mut lanes = self.lanes.lock();
        let lane = lanes
            .entry(tenant)
            .or_insert_with(|| Lane::new(ops_rate, bytes_rate, self.cfg.burst_factor, now));
        lane.bytes.charge(bytes, now);
        lane.bytes_out += bytes;
    }

    /// Installs the controller's current limit table (heartbeat ack).
    /// Lanes whose rates changed are rebuilt with fresh buckets;
    /// counters survive reconfiguration.
    pub fn install_limits(&self, limits: &[TenantLimit]) {
        if !self.cfg.enabled {
            return;
        }
        let now = self.clock.now();
        {
            let mut overrides = self.overrides.lock();
            overrides.clear();
            for l in limits {
                overrides.insert(l.tenant, l.clone());
            }
        }
        let mut lanes = self.lanes.lock();
        for (tenant, lane) in lanes.iter_mut() {
            let (ops_rate, bytes_rate) = self.rates_for(*tenant);
            if lane.ops_per_sec != ops_rate || lane.bytes_per_sec != bytes_rate {
                lane.ops = TokenBucket::new(ops_rate, self.cfg.burst_factor, now);
                lane.bytes = TokenBucket::new(bytes_rate, self.cfg.burst_factor, now);
                lane.ops_per_sec = ops_rate;
                lane.bytes_per_sec = bytes_rate;
            }
        }
    }

    /// Snapshot of per-tenant load for heartbeat reporting, sorted by
    /// tenant id. Counters are cumulative since server start.
    pub fn loads(&self) -> Vec<TenantLoad> {
        let now = self.clock.now();
        let lanes = self.lanes.lock();
        let mut out: Vec<TenantLoad> = lanes
            .iter()
            .map(|(tenant, lane)| TenantLoad {
                tenant: *tenant,
                ops_admitted: lane.ops_admitted,
                ops_throttled: lane.ops_throttled,
                bytes_in: lane.bytes_in,
                bytes_out: lane.bytes_out,
                op_rate_ewma: lane.op_rate_ewma(now),
            })
            .collect();
        out.sort_by_key(|l| l.tenant);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::ManualClock;
    use std::time::Duration;

    fn ctl(ops: u64, bytes: u64) -> (jiffy_sync::Arc<ManualClock>, AdmissionControl) {
        let (concrete, shared) = ManualClock::shared();
        let cfg = QosConfig::enabled_with_rates(ops, bytes);
        (concrete, AdmissionControl::new(cfg, shared))
    }

    #[test]
    fn disabled_qos_admits_everything() {
        let (_, shared) = ManualClock::shared();
        let ac = AdmissionControl::new(QosConfig::default(), shared);
        assert!(!ac.enabled());
        for _ in 0..10_000 {
            assert!(ac.admit(TenantId(1), 1, 1 << 30).is_ok());
        }
        assert!(ac.loads().is_empty());
    }

    #[test]
    fn anonymous_tenant_bypasses_admission() {
        let (_c, ac) = ctl(1, 1);
        for _ in 0..1000 {
            assert!(ac.admit(TenantId::ANONYMOUS, 1, 1 << 20).is_ok());
        }
        assert!(ac.loads().is_empty());
    }

    #[test]
    fn op_bucket_throttles_and_recovers() {
        let (clock, ac) = ctl(100, 0);
        let t = TenantId(1);
        // Burst = 100 * 2.0 (default burst factor) = 200 ops.
        for _ in 0..200 {
            assert!(ac.admit(t, 1, 0).is_ok());
        }
        let err = ac.admit(t, 1, 0).unwrap_err();
        let retry = match err {
            JiffyError::Throttled { retry_after_ms } => retry_after_ms,
            other => panic!("expected Throttled, got {other:?}"),
        };
        assert!(retry >= 1);
        clock.advance(Duration::from_millis(retry + 10));
        assert!(ac.admit(t, 1, 0).is_ok());
    }

    #[test]
    fn throttle_leaves_no_partial_debit() {
        // Byte bucket rejects (deficit from a prior egress charge); the
        // op bucket must not be debited by the rejected attempt.
        let (clock, ac) = ctl(100, 1000);
        let t = TenantId(1);
        ac.charge_egress(t, 10_000); // burst 2000 − 10000 → deficit
        assert!(matches!(
            ac.admit(t, 1, 1),
            Err(JiffyError::Throttled { .. })
        ));
        // Let the byte deficit repay; the full 200-op burst must still
        // be available, proving the throttled attempt cost no op tokens.
        clock.advance(Duration::from_secs(10));
        for _ in 0..200 {
            assert!(ac.admit(t, 1, 0).is_ok());
        }
        assert!(ac.admit(t, 1, 0).is_err());
    }

    #[test]
    fn egress_deficit_delays_next_admission() {
        let (clock, ac) = ctl(0, 1000);
        let t = TenantId(1);
        assert!(ac.admit(t, 1, 0).is_ok());
        // Charge 4000 bytes of response: 2000 burst − 4000 → −2000.
        ac.charge_egress(t, 4000);
        assert!(matches!(
            ac.admit(t, 1, 1),
            Err(JiffyError::Throttled { .. })
        ));
        clock.advance(Duration::from_secs(3));
        assert!(ac.admit(t, 1, 1).is_ok());
        let loads = ac.loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].bytes_out, 4000);
    }

    #[test]
    fn tenants_are_isolated() {
        let (_c, ac) = ctl(10, 0);
        let hog = TenantId(1);
        let victim = TenantId(2);
        while ac.admit(hog, 1, 0).is_ok() {}
        // The hog's empty bucket must not affect the victim.
        assert!(ac.admit(victim, 1, 0).is_ok());
    }

    #[test]
    fn install_limits_overrides_defaults() {
        let (_c, ac) = ctl(5, 0);
        let t = TenantId(1);
        ac.install_limits(&[TenantLimit {
            tenant: t,
            share: 1,
            quota_bytes: 0,
            ops_per_sec: 1000,
            bytes_per_sec: 0,
        }]);
        // 1000 ops/s × burst 2.0 → 2000-op burst, far beyond the
        // 10-op default burst.
        for _ in 0..2000 {
            assert!(ac.admit(t, 1, 0).is_ok());
        }
        assert!(ac.admit(t, 1, 0).is_err());
    }

    #[test]
    fn counters_and_ewma_accumulate() {
        let (clock, ac) = ctl(1_000_000, 0);
        let t = TenantId(3);
        for _ in 0..100 {
            ac.admit(t, 1, 10).unwrap();
        }
        let loads = ac.loads();
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].tenant, t);
        assert_eq!(loads[0].ops_admitted, 100);
        assert_eq!(loads[0].bytes_in, 1000);
        assert!(loads[0].op_rate_ewma > 0.0);
        // The EWMA decays toward zero once traffic stops.
        clock.advance(Duration::from_secs(30));
        let later = ac.loads();
        assert!(later[0].op_rate_ewma < 1e-6);
    }
}
