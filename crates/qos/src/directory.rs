//! Controller-side tenant configuration table.
//!
//! The directory stores each tenant's explicitly configured QoS
//! parameters (weighted-fair share, memory quota, data-plane rate
//! limits) and answers [`effective`](TenantDirectory::effective) lookups
//! by falling back to the cluster defaults from
//! [`QosConfig`](jiffy_common::config::QosConfig) for tenants never
//! configured. It is plain data — the controller embeds it in its
//! locked state, journals every mutation (`TenantConfigured`), and
//! mirrors [`snapshot`](TenantDirectory::snapshot) into crash-recovery
//! checkpoints.

use std::collections::BTreeMap;

use jiffy_common::config::QosConfig;
use jiffy_common::TenantId;
use jiffy_proto::TenantLimit;

/// Per-tenant QoS configuration with cluster-default fallback.
#[derive(Debug, Clone, Default)]
pub struct TenantDirectory {
    defaults: QosConfig,
    entries: BTreeMap<TenantId, TenantLimit>,
}

impl TenantDirectory {
    /// Creates a directory whose unconfigured tenants inherit `defaults`.
    pub fn new(defaults: QosConfig) -> Self {
        Self {
            defaults,
            entries: BTreeMap::new(),
        }
    }

    /// The cluster defaults this directory falls back to.
    pub fn defaults(&self) -> &QosConfig {
        &self.defaults
    }

    /// The effective limits for `tenant`: its configured entry, or the
    /// cluster defaults.
    pub fn effective(&self, tenant: TenantId) -> TenantLimit {
        self.entries.get(&tenant).cloned().unwrap_or(TenantLimit {
            tenant,
            share: self.defaults.default_share,
            quota_bytes: self.defaults.default_quota_bytes,
            ops_per_sec: self.defaults.default_ops_per_sec,
            bytes_per_sec: self.defaults.default_bytes_per_sec,
        })
    }

    /// Configures (or reconfigures) a tenant. A zero share is clamped to
    /// 1 so no tenant can be starved out of the fair division entirely.
    pub fn set(
        &mut self,
        tenant: TenantId,
        share: u32,
        quota_bytes: u64,
        ops_per_sec: u64,
        bytes_per_sec: u64,
    ) {
        self.entries.insert(
            tenant,
            TenantLimit {
                tenant,
                share: share.max(1),
                quota_bytes,
                ops_per_sec,
                bytes_per_sec,
            },
        );
    }

    /// Every explicitly configured tenant, sorted by tenant id. This is
    /// what heartbeat acks push to the servers and what crash-recovery
    /// mirrors persist.
    pub fn snapshot(&self) -> Vec<TenantLimit> {
        self.entries.values().cloned().collect()
    }

    /// Rebuilds the configured set from a snapshot (crash recovery).
    pub fn install(&mut self, limits: Vec<TenantLimit>) {
        self.entries = limits.into_iter().map(|l| (l.tenant, l)).collect();
    }

    /// Tenants with an explicit configuration, sorted by id.
    pub fn configured(&self) -> impl Iterator<Item = &TenantLimit> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_tenants_inherit_defaults() {
        let cfg = QosConfig::enabled_with_rates(100, 1000).with_quota_bytes(1 << 20);
        let dir = TenantDirectory::new(cfg);
        let eff = dir.effective(TenantId(9));
        assert_eq!(eff.tenant, TenantId(9));
        assert_eq!(eff.share, 1);
        assert_eq!(eff.quota_bytes, 1 << 20);
        assert_eq!(eff.ops_per_sec, 100);
        assert_eq!(eff.bytes_per_sec, 1000);
    }

    #[test]
    fn set_overrides_and_snapshot_round_trips() {
        let mut dir = TenantDirectory::new(QosConfig::default());
        dir.set(TenantId(2), 4, 1 << 30, 500, 0);
        dir.set(TenantId(1), 2, 0, 0, 0);
        let eff = dir.effective(TenantId(2));
        assert_eq!(eff.share, 4);
        assert_eq!(eff.quota_bytes, 1 << 30);
        let snap = dir.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].tenant < snap[1].tenant);

        let mut restored = TenantDirectory::new(QosConfig::default());
        restored.install(snap.clone());
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn zero_share_clamps_to_one() {
        let mut dir = TenantDirectory::new(QosConfig::default());
        dir.set(TenantId(1), 0, 0, 0, 0);
        assert_eq!(dir.effective(TenantId(1)).share, 1);
    }

    #[test]
    fn reconfiguring_replaces_the_entry() {
        let mut dir = TenantDirectory::new(QosConfig::default());
        dir.set(TenantId(1), 2, 100, 10, 10);
        dir.set(TenantId(1), 8, 200, 20, 20);
        let eff = dir.effective(TenantId(1));
        assert_eq!((eff.share, eff.quota_bytes), (8, 200));
        assert_eq!(dir.snapshot().len(), 1);
    }
}
