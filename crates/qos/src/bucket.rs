//! A deficit-capable token bucket driven by an explicit clock reading.
//!
//! The bucket refills continuously at `rate` tokens per second up to a
//! burst ceiling, and admits a request of `n` tokens when the current
//! level covers `min(n, burst)`. Admission always subtracts the *full*
//! `n` — the level may go negative — which gives two properties the
//! admission controller needs:
//!
//! - **Progress for oversized requests.** A single batch larger than the
//!   burst ceiling admits once the bucket is full, rather than never;
//!   the resulting deficit then rate-limits the tenant's average.
//! - **Post-paid charges.** Egress bytes are only known after an op
//!   executes, and throttling after execution would break exactly-once
//!   semantics. [`TokenBucket::charge`] subtracts unconditionally; the
//!   deficit is repaid before the tenant's next admission.

use std::time::Duration;

/// Token bucket state. Time never lives inside the bucket — callers pass
/// the current [`Clock`](jiffy_common::Clock) reading into every
/// operation, which keeps the bucket deterministic under `ManualClock`
/// and free of hidden `Instant::now()` calls.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in tokens per second. `0` means unlimited: every
    /// admission succeeds and charges are ignored.
    rate: f64,
    /// Maximum stored tokens (`rate * burst_factor`, at least `1`).
    burst: f64,
    /// Current level; may be negative (deficit from oversized or
    /// post-paid charges).
    level: f64,
    /// Clock reading at the last refill.
    last: Duration,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_per_sec`, holding at most
    /// `rate_per_sec * burst_factor` tokens, starting full at time
    /// `now`. A zero rate disables limiting entirely.
    pub fn new(rate_per_sec: u64, burst_factor: f64, now: Duration) -> Self {
        let rate = rate_per_sec as f64;
        let burst = (rate * burst_factor.max(1.0)).max(1.0);
        Self {
            rate,
            burst,
            level: burst,
            last: now,
        }
    }

    /// Whether this bucket enforces anything.
    pub fn is_unlimited(&self) -> bool {
        self.rate == 0.0
    }

    fn refill(&mut self, now: Duration) {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.level = (self.level + self.rate * dt).min(self.burst);
        }
        self.last = self.last.max(now);
    }

    /// Attempts to admit a request costing `n` tokens at time `now`.
    ///
    /// Returns `Ok(())` and subtracts the full `n` (possibly into
    /// deficit) when the level covers `min(n, burst)`; otherwise returns
    /// the suggested backoff until enough tokens will have accrued.
    pub fn admit(&mut self, n: u64, now: Duration) -> Result<(), Duration> {
        if self.is_unlimited() {
            return Ok(());
        }
        self.refill(now);
        let need = (n as f64).min(self.burst);
        if self.level >= need {
            self.level -= n as f64;
            Ok(())
        } else {
            let deficit = need - self.level;
            Err(Duration::from_secs_f64(deficit / self.rate))
        }
    }

    /// Unconditionally subtracts `n` tokens (post-paid charge, e.g.
    /// response bytes measured after execution). Never fails; the
    /// resulting deficit delays the next [`admit`](Self::admit).
    pub fn charge(&mut self, n: u64, now: Duration) {
        if self.is_unlimited() {
            return;
        }
        self.refill(now);
        self.level -= n as f64;
    }

    /// Current level after refilling to `now` (observability/tests).
    pub fn level(&mut self, now: Duration) -> f64 {
        self.refill(now);
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn starts_full_and_admits_up_to_burst() {
        // 100 ops/s, burst factor 2 → 200 token ceiling, starts full.
        let mut b = TokenBucket::new(100, 2.0, t(0));
        for _ in 0..200 {
            assert!(b.admit(1, t(0)).is_ok());
        }
        assert!(b.admit(1, t(0)).is_err());
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(100, 1.0, t(0));
        assert!(b.admit(100, t(0)).is_ok());
        assert!(b.admit(1, t(0)).is_err());
        // 50 ms at 100/s → 5 tokens.
        assert!(b.admit(5, t(50)).is_ok());
        assert!(b.admit(1, t(50)).is_err());
    }

    #[test]
    fn retry_after_covers_the_deficit() {
        let mut b = TokenBucket::new(100, 1.0, t(0));
        assert!(b.admit(100, t(0)).is_ok());
        let wait = b.admit(10, t(0)).unwrap_err();
        // 10 tokens at 100/s → 100 ms.
        assert_eq!(wait, Duration::from_millis(100));
        assert!(b.admit(10, t(0) + wait).is_ok());
    }

    #[test]
    fn oversized_requests_admit_at_full_and_go_negative() {
        // Burst ceiling 10, request of 35: admits when full, leaves a
        // 25-token deficit that delays the next admission.
        let mut b = TokenBucket::new(10, 1.0, t(0));
        assert!(b.admit(35, t(0)).is_ok());
        assert!(b.level(t(0)) < 0.0);
        let wait = b.admit(1, t(0)).unwrap_err();
        // Deficit 25 + 1 needed → 26 tokens at 10/s = 2.6 s.
        assert_eq!(wait, Duration::from_secs_f64(2.6));
    }

    #[test]
    fn post_paid_charge_delays_next_admission() {
        let mut b = TokenBucket::new(100, 1.0, t(0));
        b.charge(150, t(0));
        assert!(b.admit(1, t(0)).is_err());
        // Deficit −50; need 1 more → 51 tokens at 100/s = 510 ms.
        assert!(b.admit(1, t(510)).is_ok());
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0, 2.0, t(0));
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            assert!(b.admit(u64::MAX / 2, t(0)).is_ok());
        }
        b.charge(u64::MAX / 2, t(0));
        assert!(b.admit(1, t(0)).is_ok());
    }

    #[test]
    fn level_never_exceeds_burst() {
        let mut b = TokenBucket::new(100, 1.5, t(0));
        // A long idle period must not accumulate beyond the ceiling.
        assert!(b.level(t(3_600_000)) <= 150.0 + f64::EPSILON);
    }

    #[test]
    fn clock_going_backwards_is_tolerated() {
        // Stale reads from concurrent callers must not panic or refill.
        let mut b = TokenBucket::new(100, 1.0, t(100));
        assert!(b.admit(100, t(100)).is_ok());
        assert!(b.admit(1, t(50)).is_err());
        assert!(b.admit(1, t(120)).is_ok());
    }
}
