//! Snowflake-calibrated multi-tenant job trace generator.
//!
//! Generates the statistical shape of the paper's production dataset
//! (see crate docs): heterogeneous tenants issuing multi-stage jobs
//! whose intermediate data sizes are heavy-tailed, so instantaneous
//! demand swings across orders of magnitude while the long-run average
//! sits far below per-tenant peaks.

use std::time::Duration;

use rand::{Rng, RngExt, SeedableRng};

/// Effective processing bandwidth for stage compute times. Analytics
/// stages scan far more persistent input than they materialize as
/// intermediate output, so compute time per intermediate byte is much
/// larger than memory bandwidth would suggest (~200 MB/s of
/// intermediate output per core-second, plus a fixed per-stage setup
/// cost) — calibrated so the median job runs seconds to tens of
/// seconds, like the paper's SQL queries.
const COMPUTE_BPS: f64 = 200.0e6;

/// Fixed per-stage setup time (scheduling + scan startup).
const STAGE_BASE: f64 = 0.5;

/// Generator parameters with defaults matching the §6.1 setup (scaled
/// bytes so simulations fit one machine; shapes, not magnitudes, drive
/// every result).
#[derive(Debug, Clone)]
pub struct SnowflakeConfig {
    /// Number of tenants (paper: 100 randomly chosen tenants).
    pub tenants: u32,
    /// Trace window (paper: 5 hours).
    pub window: Duration,
    /// Mean jobs per tenant per hour (paper: ~50 000 jobs over the
    /// window → ~100 jobs/tenant/hour).
    pub jobs_per_tenant_hour: f64,
    /// Median intermediate bytes of a median tenant's job.
    pub median_job_bytes: f64,
    /// Log-normal sigma of job sizes *within* a tenant (heavy tail).
    pub job_sigma: f64,
    /// Log-normal sigma of median job size *across* tenants.
    pub tenant_sigma: f64,
    /// RNG seed (traces are fully deterministic given the config).
    pub seed: u64,
    /// Fixed per-stage setup time in seconds.
    pub stage_base_secs: f64,
    /// Intermediate-output bytes produced per second of stage compute.
    pub compute_bps: f64,
}

impl Default for SnowflakeConfig {
    fn default() -> Self {
        Self {
            tenants: 100,
            window: Duration::from_secs(5 * 3600),
            jobs_per_tenant_hour: 100.0,
            median_job_bytes: 512.0 * 1024.0 * 1024.0,
            job_sigma: 1.6,
            tenant_sigma: 1.2,
            seed: 0xC0FFEE,
            stage_base_secs: STAGE_BASE,
            compute_bps: COMPUTE_BPS,
        }
    }
}

impl SnowflakeConfig {
    /// A small config for tests and quick runs (4 tenants, 1 hour —
    /// the Fig. 1 setting).
    pub fn small() -> Self {
        Self {
            tenants: 4,
            window: Duration::from_secs(3600),
            jobs_per_tenant_hour: 60.0,
            ..Self::default()
        }
    }
}

/// One stage of a job: compute, then write intermediate output (stage
/// `i > 0` first reads stage `i-1`'s output from far memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Pure compute time of the stage.
    pub compute: Duration,
    /// Intermediate bytes this stage writes.
    pub write_bytes: u64,
}

/// One analytics job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Trace-unique job id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Arrival offset from trace start.
    pub arrival: Duration,
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Peak intermediate bytes the job holds at once (a stage's output
    /// lives until the next stage finishes, so the peak is the largest
    /// sum of two consecutive stage outputs).
    pub fn peak_bytes(&self) -> u64 {
        let w: Vec<u64> = self.stages.iter().map(|s| s.write_bytes).collect();
        if w.is_empty() {
            return 0;
        }
        let mut peak = *w.iter().max().expect("non-empty");
        for pair in w.windows(2) {
            peak = peak.max(pair[0] + pair[1]);
        }
        peak
    }

    /// Total intermediate bytes written over the job's lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.write_bytes).sum()
    }

    /// Nominal (unconstrained, DRAM-speed) duration of the job.
    pub fn nominal_duration(&self) -> Duration {
        let mut total = Duration::ZERO;
        let mut prev_bytes = 0u64;
        for s in &self.stages {
            total += s.compute + nominal_io(prev_bytes) + nominal_io(s.write_bytes);
            prev_bytes = s.write_bytes;
        }
        total
    }
}

/// Nominal time to move `bytes` through the DRAM tier: shuffled as
/// 256 KB objects (the paper's serverless tasks exchange many small
/// objects, which is why per-op latency matters — Fig. 10), at the
/// remote-DRAM tier's ~150 µs/op and ~1.1 GB/s.
pub fn nominal_io(bytes: u64) -> Duration {
    let ops = bytes.div_ceil(64 * 1024).max(1);
    Duration::from_secs_f64(bytes as f64 / 1.1e9) + Duration::from_micros(150) * ops as u32
}

/// A generated trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Jobs sorted by arrival.
    pub jobs: Vec<JobSpec>,
    /// The trace window.
    pub window: Duration,
    /// Number of tenants.
    pub tenants: u32,
}

/// Shared cluster-wide activity profile: tenant workloads are
/// correlated in time (business hours, batch windows), which is what
/// makes the *aggregate* demand bursty even with many tenants — the
/// property Fig. 9 exploits (average aggregate demand far below peak).
/// The window is divided into 5-minute slots, each quiet (x0.3), busy
/// (x3) or spiking (x8).
struct ActivityProfile {
    slots: Vec<f64>,
    slot_secs: f64,
    max: f64,
}

impl ActivityProfile {
    fn generate<R: Rng>(rng: &mut R, window: Duration) -> Self {
        let slot_secs = 300.0;
        let n = (window.as_secs_f64() / slot_secs).ceil() as usize + 1;
        let slots: Vec<f64> = (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                if u < 0.70 {
                    0.3
                } else if u < 0.95 {
                    3.0
                } else {
                    8.0
                }
            })
            .collect();
        Self {
            slots,
            slot_secs,
            max: 8.0,
        }
    }

    fn intensity(&self, t: f64) -> f64 {
        let i = (t / self.slot_secs) as usize;
        self.slots.get(i).copied().unwrap_or(0.3)
    }
}

impl Trace {
    /// Generates a deterministic trace from the config.
    pub fn generate(cfg: &SnowflakeConfig) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        let profile = ActivityProfile::generate(&mut rng, cfg.window);
        let mut jobs = Vec::new();
        let mut id = 0u64;
        for tenant in 0..cfg.tenants {
            // Tenant archetypes (the Snowflake population mixes steady
            // dashboard/ETL tenants with bursty ad-hoc ones — Fig. 1a
            // shows both kinds): the archetype sets how heavy the
            // tenant's job-size tail is and how often bursts occur.
            let archetype: f64 = rng.random();
            let (burst_prob, burst_sigma, burst_scale, steady_sigma) = if archetype < 0.5 {
                // Steady tenant: narrow sizes, rare mild bursts.
                (0.05, 0.8, 2.0, 0.4)
            } else if archetype < 0.85 {
                // Mixed tenant.
                (0.15, cfg.job_sigma * 0.7, 4.0, 0.6)
            } else {
                // Bursty tenant: the Fig. 1a spikes.
                (0.25, cfg.job_sigma, 8.0, 0.8)
            };
            // Tenant-level heterogeneity: arrival rate and job-size
            // median both log-normal across tenants.
            let rate_factor = lognormal(&mut rng, 0.0, 0.8);
            let size_median = cfg.median_job_bytes * lognormal(&mut rng, 0.0, cfg.tenant_sigma);
            let rate_per_sec = cfg.jobs_per_tenant_hour * rate_factor / 3600.0;
            let mut t = 0.0f64;
            loop {
                // Non-homogeneous Poisson arrivals via thinning against
                // the shared activity profile.
                let u: f64 = rng.random::<f64>().max(1e-12);
                t += -u.ln() / (rate_per_sec * profile.max);
                if t >= cfg.window.as_secs_f64() {
                    break;
                }
                if rng.random::<f64>() >= profile.intensity(t) / profile.max {
                    continue;
                }
                // Mixture: a steady floor of routine queries plus
                // heavy-tailed bursts (production tenants run dashboards
                // and ETL alongside occasional giant ad-hoc queries).
                let total_bytes = if rng.random::<f64>() < burst_prob {
                    size_median * burst_scale * lognormal(&mut rng, 0.0, burst_sigma)
                } else {
                    size_median * lognormal(&mut rng, 0.0, steady_sigma)
                };
                let total_bytes = total_bytes.clamp(64.0 * 1024.0, 64.0 * 1024.0 * 1024.0 * 1024.0);
                let stages = make_stages(&mut rng, total_bytes, cfg);
                jobs.push(JobSpec {
                    id,
                    tenant,
                    arrival: Duration::from_secs_f64(t),
                    stages,
                });
                id += 1;
            }
        }
        jobs.sort_by_key(|j| j.arrival);
        Self {
            jobs,
            window: cfg.window,
            tenants: cfg.tenants,
        }
    }

    /// Aggregate nominal (unconstrained) demand timeline sampled every
    /// `step`: how many intermediate bytes are live across all jobs.
    pub fn demand_timeline(&self, step: Duration) -> Vec<(Duration, u64)> {
        self.tenant_timeline(step, None)
    }

    /// Like [`Trace::demand_timeline`] but for one tenant.
    pub fn tenant_demand_timeline(&self, step: Duration, tenant: u32) -> Vec<(Duration, u64)> {
        self.tenant_timeline(step, Some(tenant))
    }

    fn tenant_timeline(&self, step: Duration, tenant: Option<u32>) -> Vec<(Duration, u64)> {
        // Build +bytes/-bytes events from nominal stage timing: a
        // stage's output space is acquired when the stage *starts*
        // writing and freed when the *next* stage finishes reading it
        // (the last stage's output is freed at job end) — matching the
        // far-memory system's actual allocation lifetime.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for job in &self.jobs {
            if tenant.is_some_and(|t| job.tenant != t) {
                continue;
            }
            let mut t = job.arrival.as_secs_f64();
            let mut prev: Option<u64> = None; // bytes of the previous output
            for s in &job.stages {
                let start = t;
                let read_prev = prev.unwrap_or(0);
                t += s.compute.as_secs_f64()
                    + nominal_io(read_prev).as_secs_f64()
                    + nominal_io(s.write_bytes).as_secs_f64();
                // Previous stage output freed once this stage completes.
                if let Some(bytes) = prev.take() {
                    events.push((t, -(bytes as i64)));
                }
                events.push((start, s.write_bytes as i64));
                prev = Some(s.write_bytes);
            }
            if let Some(bytes) = prev {
                // Job deregisters right after its last stage.
                events.push((t, -(bytes as i64)));
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let mut out = Vec::new();
        let mut live: i64 = 0;
        let mut cursor = 0usize;
        let mut t = 0.0;
        let end = self.window.as_secs_f64();
        let step_s = step.as_secs_f64();
        while t <= end {
            while cursor < events.len() && events[cursor].0 <= t {
                live += events[cursor].1;
                cursor += 1;
            }
            out.push((Duration::from_secs_f64(t), live.max(0) as u64));
            t += step_s;
        }
        out
    }

    /// Mean over tenants of (tenant average demand / tenant peak
    /// demand) — the "across all tenants, the average utilization is
    /// 19 %" statistic of Fig. 1(b).
    pub fn mean_tenant_utilization(&self, step: Duration) -> f64 {
        let mut ratios = Vec::new();
        for tenant in 0..self.tenants {
            let tl = self.tenant_demand_timeline(step, tenant);
            let peak = tl.iter().map(|(_, b)| *b).max().unwrap_or(0) as f64;
            if peak == 0.0 {
                continue;
            }
            let avg = tl.iter().map(|(_, b)| *b as f64).sum::<f64>() / tl.len() as f64;
            ratios.push(avg / peak);
        }
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }

    /// Fig. 1(b)'s wasted-capacity statistic: average aggregate demand
    /// divided by the sum of per-tenant peaks (the capacity a
    /// provision-for-peak system would reserve). The paper reports this
    /// as "< 10 %".
    pub fn utilization_vs_peak_provisioning(&self, step: Duration) -> f64 {
        let mut tenant_peaks = 0u64;
        for tenant in 0..self.tenants {
            let peak = self
                .tenant_demand_timeline(step, tenant)
                .iter()
                .map(|(_, b)| *b)
                .max()
                .unwrap_or(0);
            tenant_peaks += peak;
        }
        if tenant_peaks == 0 {
            return 0.0;
        }
        let timeline = self.demand_timeline(step);
        let avg: f64 = timeline.iter().map(|(_, b)| *b as f64).sum::<f64>() / timeline.len() as f64;
        avg / tenant_peaks as f64
    }

    /// Aggregate peak of the nominal demand timeline (the "100 %
    /// capacity" reference of Fig. 9).
    pub fn peak_demand(&self, step: Duration) -> u64 {
        self.demand_timeline(step)
            .iter()
            .map(|(_, b)| *b)
            .max()
            .unwrap_or(0)
    }

    /// Peak-to-average demand ratio for one tenant (Fig. 1a).
    pub fn tenant_peak_to_avg(&self, step: Duration, tenant: u32) -> f64 {
        let tl = self.tenant_demand_timeline(step, tenant);
        let peak = tl.iter().map(|(_, b)| *b).max().unwrap_or(0) as f64;
        let avg = tl.iter().map(|(_, b)| *b as f64).sum::<f64>() / tl.len() as f64;
        if avg == 0.0 {
            0.0
        } else {
            peak / avg
        }
    }
}

/// Splits a job's total intermediate bytes across 2–8 stages with one
/// dominant stage (matching the paper's TPC-DS observation that stage
/// outputs within one query span orders of magnitude).
fn make_stages<R: Rng>(rng: &mut R, total_bytes: f64, cfg: &SnowflakeConfig) -> Vec<StageSpec> {
    let n = rng.random_range(2..=8usize);
    let mut weights: Vec<f64> = (0..n).map(|_| lognormal(rng, 0.0, 1.5)).collect();
    let sum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= sum;
    }
    weights
        .into_iter()
        .map(|w| {
            let bytes = (total_bytes * w) as u64;
            StageSpec {
                compute: Duration::from_secs_f64(
                    bytes as f64 / cfg.compute_bps + cfg.stage_base_secs,
                ),
                write_bytes: bytes.max(1024),
            }
        })
        .collect()
}

fn lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let cfg = SnowflakeConfig::small();
        let a = Trace::generate(&cfg);
        let b = Trace::generate(&cfg);
        assert_eq!(a.jobs, b.jobs);
        assert!(!a.jobs.is_empty());
    }

    #[test]
    fn jobs_fall_inside_the_window_and_are_sorted() {
        let trace = Trace::generate(&SnowflakeConfig::small());
        let mut prev = Duration::ZERO;
        for j in &trace.jobs {
            assert!(j.arrival <= trace.window);
            assert!(j.arrival >= prev);
            prev = j.arrival;
            assert!(j.stages.len() >= 2 && j.stages.len() <= 8);
            assert!(j.total_bytes() > 0);
            assert!(j.peak_bytes() <= j.total_bytes());
        }
    }

    #[test]
    fn job_sizes_are_heavy_tailed() {
        let trace = Trace::generate(&SnowflakeConfig::default());
        let mut sizes: Vec<u64> = trace.jobs.iter().map(JobSpec::total_bytes).collect();
        sizes.sort_unstable();
        let p10 = sizes[sizes.len() / 10];
        let p99 = sizes[sizes.len() * 99 / 100];
        // Orders of magnitude between the small and large jobs.
        assert!(p99 as f64 / p10 as f64 > 100.0, "p10={p10} p99={p99}");
    }

    #[test]
    fn utilization_matches_the_snowflake_figures() {
        // Fig. 1(b): per-tenant mean utilization well below peak
        // provisioning (paper: 19 % across >2000 tenants; our synthetic
        // IO-bound jobs land lower — see EXPERIMENTS.md), aggregate
        // utilization vs summed peaks < ~20 %.
        let trace = Trace::generate(&SnowflakeConfig::default());
        let per_tenant = trace.mean_tenant_utilization(Duration::from_secs(60));
        assert!(
            (0.02..=0.35).contains(&per_tenant),
            "mean per-tenant utilization = {per_tenant:.3}"
        );
        let aggregate = trace.utilization_vs_peak_provisioning(Duration::from_secs(60));
        assert!(
            aggregate < 0.30 && aggregate > 0.01,
            "aggregate utilization vs peak provisioning = {aggregate:.3}"
        );
        // The Fig. 9 precondition: aggregate average demand is a small
        // fraction of the aggregate peak (the paper's multiplexing
        // opportunity).
        let tl = trace.demand_timeline(Duration::from_secs(5));
        let peak = tl.iter().map(|(_, b)| *b).max().unwrap() as f64;
        let avg = tl.iter().map(|(_, b)| *b as f64).sum::<f64>() / tl.len() as f64;
        assert!(
            (0.05..=0.40).contains(&(avg / peak)),
            "aggregate avg/peak = {:.3}",
            avg / peak
        );
    }

    #[test]
    fn tenant_peak_to_avg_spans_an_order_of_magnitude() {
        let trace = Trace::generate(&SnowflakeConfig::default());
        let mut ratios: Vec<f64> = (0..trace.tenants)
            .map(|t| trace.tenant_peak_to_avg(Duration::from_secs(60), t))
            .filter(|r| *r > 0.0)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let max = ratios.last().copied().unwrap_or(0.0);
        assert!(max > 10.0, "max peak/avg = {max:.1}");
    }

    #[test]
    fn demand_timeline_is_nonnegative_and_bounded() {
        let trace = Trace::generate(&SnowflakeConfig::small());
        let tl = trace.demand_timeline(Duration::from_secs(30));
        assert!(!tl.is_empty());
        let total: u64 = trace.jobs.iter().map(JobSpec::total_bytes).sum();
        for (_, b) in &tl {
            assert!(*b <= total);
        }
        // Demand should actually rise above zero at some point.
        assert!(tl.iter().any(|(_, b)| *b > 0));
    }

    #[test]
    fn peak_bytes_accounts_for_consecutive_stages() {
        let job = JobSpec {
            id: 0,
            tenant: 0,
            arrival: Duration::ZERO,
            stages: vec![
                StageSpec {
                    compute: Duration::ZERO,
                    write_bytes: 100,
                },
                StageSpec {
                    compute: Duration::ZERO,
                    write_bytes: 50,
                },
                StageSpec {
                    compute: Duration::ZERO,
                    write_bytes: 10,
                },
            ],
        };
        // Stage 0 output (100) is still live while stage 1 writes (50).
        assert_eq!(job.peak_bytes(), 150);
        assert_eq!(job.total_bytes(), 160);
    }
}
