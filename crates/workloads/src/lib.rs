//! Synthetic workloads for the Jiffy evaluation.
//!
//! The paper's experiments are driven by a production trace from
//! Snowflake (>2000 tenants, 14 days) that is not available here. This
//! crate generates traces *calibrated to the statistics the paper
//! reports about that dataset*:
//!
//! - per-tenant peak-to-average intermediate-data ratios spanning up to
//!   two orders of magnitude within minutes (Fig. 1a);
//! - average utilization around 19 % when every tenant provisions for
//!   its own peak (Fig. 1b);
//! - per-job intermediate data sizes spanning several orders of
//!   magnitude (§2.1 cites 0.8 MB–66 GB across TPC-DS stages);
//! - multi-stage jobs whose intermediate usage rises and falls as
//!   stages execute.
//!
//! The Fig. 1 harness (`fig01_snowflake`) regenerates the paper's
//! motivating plots from these traces and doubles as the calibration
//! check.

pub mod snowflake;
pub mod text;
pub mod zipf;

pub use snowflake::{JobSpec, SnowflakeConfig, StageSpec, Trace};
pub use text::SentenceGen;
pub use zipf::Zipf;
