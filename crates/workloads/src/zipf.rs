//! Zipf-distributed sampling (used for KV key skew, §6.3, and word
//! frequencies in the text generator).

use rand::RngExt;

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha`
    /// (`alpha = 0` is uniform; `~1.0` is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_orders_frequencies() {
        let z = Zipf::new(50, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut counts = [0u32; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates; tail ranks are rare.
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        assert!(counts[0] as f64 / counts[49].max(1) as f64 > 20.0);
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1500.0, "{counts:?}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
