//! Synthetic text streams (Wikipedia-sentence stand-in for the §6.5
//! streaming word-count workload).

use rand::{RngExt, SeedableRng};

use crate::zipf::Zipf;

/// Generates sentences whose word frequencies follow a Zipf law over a
/// synthetic vocabulary, like natural-language corpora do.
pub struct SentenceGen {
    vocab: Vec<String>,
    zipf: Zipf,
    rng: rand::rngs::StdRng,
    min_words: usize,
    max_words: usize,
}

impl SentenceGen {
    /// Creates a generator over `vocab_size` words with Zipf exponent
    /// `alpha` (natural language: ~1.0).
    pub fn new(vocab_size: usize, alpha: f64, seed: u64) -> Self {
        let vocab = (0..vocab_size).map(synth_word).collect();
        Self {
            vocab,
            zipf: Zipf::new(vocab_size, alpha),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            min_words: 4,
            max_words: 14,
        }
    }

    /// Next sentence.
    pub fn sentence(&mut self) -> String {
        let n = self.rng.random_range(self.min_words..=self.max_words);
        let words: Vec<&str> = (0..n)
            .map(|_| self.vocab[self.zipf.sample(&mut self.rng)].as_str())
            .collect();
        words.join(" ")
    }

    /// Next batch of sentences (the paper streams 64-sentence batches).
    pub fn batch(&mut self, sentences: usize) -> Vec<String> {
        (0..sentences).map(|_| self.sentence()).collect()
    }
}

/// Deterministic pronounceable pseudo-word for rank `i`.
fn synth_word(i: usize) -> String {
    const CONS: &[u8] = b"bcdfghjklmnprstvwz";
    const VOWEL: &[u8] = b"aeiou";
    let mut n = i + 1;
    let mut out = String::new();
    while n > 0 {
        out.push(CONS[n % CONS.len()] as char);
        out.push(VOWEL[(n / CONS.len()) % VOWEL.len()] as char);
        n /= CONS.len() * VOWEL.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sentences_are_nonempty_and_bounded() {
        let mut g = SentenceGen::new(1000, 1.0, 7);
        for _ in 0..100 {
            let s = g.sentence();
            let words = s.split_whitespace().count();
            assert!((4..=14).contains(&words), "{s}");
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut g = SentenceGen::new(500, 1.1, 9);
        let mut freq: HashMap<String, u32> = HashMap::new();
        for _ in 0..2000 {
            for w in g.sentence().split_whitespace() {
                *freq.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<u32> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] as f64 / counts[counts.len() / 2] as f64 > 10.0);
    }

    #[test]
    fn words_are_unique_per_rank() {
        let words: Vec<String> = (0..10_000).map(synth_word).collect();
        let set: std::collections::HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), words.len());
    }

    #[test]
    fn batches_have_requested_size() {
        let mut g = SentenceGen::new(100, 1.0, 3);
        assert_eq!(g.batch(64).len(), 64);
    }
}
