//! Calibration helper: prints the aggregate demand statistics that
//! drive Fig. 9 (avg/peak of the aggregate timeline) plus the Fig. 1
//! per-tenant stats.
use jiffy_workloads::{SnowflakeConfig, Trace};
use std::time::Duration;

fn main() {
    let cfg = SnowflakeConfig::default();
    let trace = Trace::generate(&cfg);
    let step = Duration::from_secs(5);
    let tl = trace.demand_timeline(step);
    let peak = tl.iter().map(|(_, b)| *b).max().unwrap() as f64;
    let avg = tl.iter().map(|(_, b)| *b as f64).sum::<f64>() / tl.len() as f64;
    println!(
        "aggregate: avg {:.1} GB, peak {:.1} GB, avg/peak {:.3}",
        avg / 1e9,
        peak / 1e9,
        avg / peak
    );
    println!(
        "per-tenant util {:.3}, agg-vs-sum-peaks {:.3}",
        trace.mean_tenant_utilization(Duration::from_secs(60)),
        trace.utilization_vs_peak_provisioning(Duration::from_secs(60))
    );
    let mut ratios: Vec<f64> = (0..trace.tenants)
        .map(|t| trace.tenant_peak_to_avg(Duration::from_secs(60), t))
        .filter(|r| *r > 0.0)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "tenant peak/avg min/med/max = {:.1}/{:.1}/{:.1}",
        ratios[0],
        ratios[ratios.len() / 2],
        ratios[ratios.len() - 1]
    );
}
