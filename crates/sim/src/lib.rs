//! Evaluation engines for the Jiffy reproduction.
//!
//! Two ways of replaying the Snowflake-calibrated trace:
//!
//! - [`cluster`] — a **discrete-event simulator**: jobs, stages and
//!   storage-tier transfer times advance a virtual clock; the compared
//!   systems differ only in their [`jiffy_baselines::AllocationPolicy`].
//!   Regenerates Fig. 9 (job slowdown and resource utilization under
//!   constrained capacity). Five hours of trace replay in seconds.
//! - [`lifetime`] — a **virtual-time driver for the real system**: an
//!   in-process Jiffy cluster runs under a [`ManualClock`]; the driver
//!   creates prefixes, writes/consumes intermediate data, renews leases
//!   and ticks the expiry worker, sampling used-vs-allocated bytes.
//!   Regenerates Fig. 11(a) and the Fig. 14 sensitivity sweeps against
//!   the *production code paths* (allocator, splits, leases), not a
//!   model.
//!
//! [`ManualClock`]: jiffy_common::clock::ManualClock

pub mod cluster;
pub mod lifetime;

pub use cluster::{ClusterSim, SimOutcome, SystemKind};
pub use lifetime::{LifetimeConfig, LifetimeOutcome, LifetimeSample};
