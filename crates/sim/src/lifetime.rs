//! Virtual-time lifetime experiments on the real system (Fig. 11a,
//! Fig. 14).
//!
//! An in-process Jiffy cluster runs under a [`ManualClock`]. The driver
//! replays a single tenant's slice of the Snowflake-calibrated trace —
//! every job-stage output becomes an address prefix holding one data
//! structure; its bytes are written through the real client, its lease
//! is renewed while a consumer exists, and reclamation happens through
//! the real lease-expiry path. Sampling `used` vs `allocated` bytes per
//! tick reproduces the green/red areas of Fig. 11(a) and Fig. 14.
//!
//! [`ManualClock`]: jiffy_common::clock::ManualClock

use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

use jiffy::cluster::JiffyCluster;
use jiffy::{DsType, JiffyConfig, JobClient};
use jiffy_common::clock::ManualClock;
use jiffy_persistent::MemObjectStore;
use jiffy_workloads::{SnowflakeConfig, Trace, Zipf};
use rand::SeedableRng;

/// Configuration for one lifetime run.
#[derive(Debug, Clone)]
pub struct LifetimeConfig {
    /// Data structure under test.
    pub ds: DsType,
    /// System parameters (block size, lease duration, thresholds —
    /// exactly the Fig. 14 sweep knobs).
    pub jiffy: JiffyConfig,
    /// Cluster capacity in blocks.
    pub blocks: u32,
    /// Virtual-time ticks to run.
    pub ticks: usize,
    /// Virtual time per tick.
    pub tick: Duration,
    /// Peak live bytes the scaled trace should reach.
    pub target_peak_bytes: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        Self {
            ds: DsType::File,
            jiffy: JiffyConfig::for_testing().with_block_size(16 * 1024),
            blocks: 1024,
            ticks: 60,
            tick: Duration::from_secs(60),
            target_peak_bytes: 2 << 20,
            seed: 0x000F_1611,
        }
    }
}

/// One sampled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeSample {
    /// Tick index.
    pub tick: usize,
    /// Intermediate-data bytes resident (used).
    pub used: u64,
    /// Block bytes allocated (held).
    pub allocated: u64,
}

/// Result of a lifetime run.
#[derive(Debug, Clone)]
pub struct LifetimeOutcome {
    /// The per-tick samples.
    pub samples: Vec<LifetimeSample>,
    /// Controller split count at the end.
    pub splits: u64,
    /// Controller merge count at the end.
    pub merges: u64,
    /// Leases expired (prefixes reclaimed).
    pub leases_expired: u64,
}

impl LifetimeOutcome {
    /// Time-averaged utilization: used / allocated over ticks where
    /// anything was allocated.
    pub fn avg_utilization(&self) -> f64 {
        let (mut used, mut alloc) = (0.0, 0.0);
        for s in &self.samples {
            used += s.used as f64;
            alloc += s.allocated as f64;
        }
        if alloc == 0.0 {
            0.0
        } else {
            used / alloc
        }
    }

    /// Peak allocated bytes.
    pub fn peak_allocated(&self) -> u64 {
        self.samples.iter().map(|s| s.allocated).max().unwrap_or(0)
    }

    /// Peak used bytes.
    pub fn peak_used(&self) -> u64 {
        self.samples.iter().map(|s| s.used).max().unwrap_or(0)
    }
}

/// A prefix-lifetime op scheduled at a tick.
#[derive(Debug, Clone)]
enum Op {
    /// Create the prefix and write `bytes` into it.
    Write { prefix: String, bytes: u64 },
    /// The consumer finished: stop renewing (lease expiry reclaims).
    Consume { prefix: String },
}

/// Runs the experiment, returning the sampled timeline.
///
/// # Errors
///
/// Cluster failures.
pub fn run(cfg: &LifetimeConfig) -> jiffy::Result<LifetimeOutcome> {
    let (clock, shared) = ManualClock::shared();
    let cluster = JiffyCluster::build(
        cfg.jiffy.clone(),
        2,
        cfg.blocks / 2,
        shared,
        Arc::new(MemObjectStore::new()),
        false,
        false,
    )?;
    let job = cluster.client()?.register_job("lifetime")?;
    let schedule = build_schedule(cfg);

    let mut writer = DsWriter::new(cfg, &job);
    let mut live: Vec<String> = Vec::new();
    let mut samples = Vec::with_capacity(cfg.ticks);
    for (tick, ops) in schedule.iter().enumerate().take(cfg.ticks) {
        for op in ops {
            match op {
                Op::Write { prefix, bytes } => {
                    if let Err(e) = writer.write(prefix, *bytes) {
                        let stats = cluster.controller().stats();
                        eprintln!("write {prefix} ({bytes} B) at tick {tick} failed: {e}; stats {stats:?}");
                        return Err(e);
                    }
                    live.push(prefix.clone());
                }
                Op::Consume { prefix } => {
                    writer.consume(prefix)?;
                    live.retain(|p| p != prefix);
                }
            }
        }
        // Virtual time passes...
        clock.advance(cfg.tick);
        // ...the running tasks renew their leases (their renewal loops
        // fire many times per tick in real time; once after the advance
        // is equivalent under the manual clock)...
        for p in &live {
            let _ = job.renew_lease(p);
        }
        // ...and the expiry worker reclaims what nobody renewed.
        cluster.controller().run_expiry_once();
        if std::env::var("JIFFY_LIFETIME_DEBUG").is_ok() {
            let st = cluster.controller().stats();
            eprintln!(
                "tick {tick}: live={} used={} alloc_blocks={} free={} splits={} expired={}",
                live.len(),
                cluster.used_bytes(),
                cluster.allocated_blocks(),
                st.free_blocks,
                st.splits,
                st.leases_expired
            );
        }
        samples.push(LifetimeSample {
            tick,
            used: cluster.used_bytes(),
            allocated: cluster.allocated_blocks() as u64 * cfg.jiffy.block_size as u64,
        });
    }
    let stats = cluster.controller().stats();
    Ok(LifetimeOutcome {
        samples,
        splits: stats.splits,
        merges: stats.merges,
        leases_expired: stats.leases_expired,
    })
}

/// Derives a per-tick op schedule from one tenant of a small
/// Snowflake-calibrated trace, scaled to `target_peak_bytes`.
fn build_schedule(cfg: &LifetimeConfig) -> Vec<Vec<Op>> {
    // One tenant running minutes-long queries (the Fig. 11a view):
    // longer per-stage times than the Fig. 9 aggregate calibration so
    // each stage output lives across several sampling ticks.
    let trace = Trace::generate(&SnowflakeConfig {
        tenants: 1,
        window: Duration::from_secs(3600),
        jobs_per_tenant_hour: 30.0,
        stage_base_secs: 90.0,
        compute_bps: 2.0e6,
        seed: cfg.seed,
        ..SnowflakeConfig::default()
    });
    // A stage output lives from its stage end to the next stage's end.
    struct Span {
        start: f64,
        end: f64,
        bytes: u64,
    }
    let mut spans = Vec::new();
    for job in &trace.jobs {
        let mut t = job.arrival.as_secs_f64();
        let mut prev: Option<(f64, u64)> = None;
        for s in &job.stages {
            t += s.compute.as_secs_f64() + 1.0;
            if let Some((start, bytes)) = prev.take() {
                spans.push(Span {
                    start,
                    end: t,
                    bytes,
                });
            }
            prev = Some((t, s.write_bytes));
        }
        if let Some((start, bytes)) = prev {
            spans.push(Span {
                start,
                end: t + 1.0,
                bytes,
            });
        }
    }
    // Scale bytes so the peak concurrent footprint hits the target.
    let window = trace.window.as_secs_f64();
    let mut peak = 0u64;
    {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for s in &spans {
            events.push((s.start, s.bytes as i64));
            events.push((s.end, -(s.bytes as i64)));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let mut live = 0i64;
        for (_, d) in events {
            live += d;
            peak = peak.max(live.max(0) as u64);
        }
    }
    let scale = cfg.target_peak_bytes as f64 / peak.max(1) as f64;

    let mut schedule: Vec<Vec<Op>> = (0..cfg.ticks).map(|_| Vec::new()).collect();
    for (i, s) in spans.iter().enumerate() {
        let start_frac = s.start / window;
        // Drop spans that would start at the very end of the run (their
        // consumption would fall outside the sampled window).
        if start_frac >= 0.9 {
            continue;
        }
        let start_tick = (start_frac * cfg.ticks as f64) as usize;
        let end_tick = (((s.end / window) * cfg.ticks as f64).ceil() as usize)
            .clamp(start_tick + 1, cfg.ticks - 1);
        let bytes = ((s.bytes as f64 * scale) as u64).max(2048);
        let prefix = format!("out-{i}");
        schedule[start_tick].push(Op::Write {
            prefix: prefix.clone(),
            bytes,
        });
        schedule[end_tick].push(Op::Consume { prefix });
    }
    schedule
}

/// Writes bytes into prefixes using the configured data structure.
struct DsWriter<'a> {
    ds: DsType,
    job: &'a JobClient,
    kv_keys: Zipf,
    rng: rand::rngs::StdRng,
    /// Items written per prefix (so consume can clean up queues).
    written: HashMap<String, u64>,
}

impl<'a> DsWriter<'a> {
    fn new(cfg: &LifetimeConfig, job: &'a JobClient) -> Self {
        Self {
            ds: cfg.ds,
            job,
            kv_keys: Zipf::new(100_000, 1.0),
            rng: rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x5EED),
            written: HashMap::new(),
        }
    }

    fn write(&mut self, prefix: &str, bytes: u64) -> jiffy::Result<()> {
        const ITEM: u64 = 1024;
        let items = bytes.div_ceil(ITEM);
        match self.ds {
            DsType::File => {
                let f = self.job.open_file(prefix, &[])?;
                let payload = vec![0x5Au8; ITEM as usize];
                for _ in 0..items {
                    f.append(&payload)?;
                }
            }
            DsType::Queue => {
                let q = self.job.open_queue(prefix, &[])?;
                let payload = vec![0x5Au8; ITEM as usize];
                for _ in 0..items {
                    q.enqueue(&payload)?;
                }
            }
            DsType::KvStore => {
                let kv = self.job.open_kv(prefix, &[], 1)?;
                // Zipf-sampled keys (paper §6.3): repeated hot keys
                // overwrite, skewing block load — the KV worst case.
                for _ in 0..items {
                    let key = self.kv_keys.sample(&mut self.rng);
                    kv.put(
                        format!("k{key}").as_bytes(),
                        vec![0x5Au8; ITEM as usize].as_slice(),
                    )?;
                }
            }
        }
        self.written.insert(prefix.to_string(), items);
        Ok(())
    }

    fn consume(&mut self, prefix: &str) -> jiffy::Result<()> {
        // Consumers read the data before abandoning the lease; queue
        // consumers additionally drain it (their read IS destructive).
        if self.ds == DsType::Queue {
            if let Ok(q) = self.job.open_queue(prefix, &[]) {
                while q.dequeue()?.is_some() {}
            }
        }
        self.written.remove(prefix);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(ds: DsType) -> LifetimeConfig {
        LifetimeConfig {
            ds,
            ticks: 24,
            blocks: 1024,
            // Large enough that typical spans span several blocks;
            // with a smaller peak most spans collapse to the 2 KiB
            // write floor and block rounding (16 KiB blocks) dominates
            // utilization, which is not what this test measures.
            target_peak_bytes: 4 * 1024 * 1024,
            ..LifetimeConfig::default()
        }
    }

    #[test]
    fn file_lifetime_tracks_demand() {
        let out = run(&quick_cfg(DsType::File)).unwrap();
        assert_eq!(out.samples.len(), 24);
        // Memory was allocated and later reclaimed.
        assert!(out.peak_allocated() > 0);
        assert!(out.leases_expired > 0, "expiry reclaimed prefixes");
        // Allocation always covers usage and never exceeds it by more
        // than the block-rounding + lease-lag envelope.
        for s in &out.samples {
            assert!(s.allocated >= s.used, "{s:?}");
        }
        // Utilization is high for files (no repartition slack).
        assert!(out.avg_utilization() > 0.35, "{}", out.avg_utilization());
    }

    #[test]
    fn queue_lifetime_tracks_demand() {
        let out = run(&quick_cfg(DsType::Queue)).unwrap();
        assert!(out.peak_used() > 0);
        assert!(out.leases_expired > 0);
        assert!(out.avg_utilization() > 0.3, "{}", out.avg_utilization());
    }

    #[test]
    fn kv_allocates_more_than_it_uses() {
        // The paper's KV worst case: Zipf keys → skewed blocks →
        // allocated exceeds used noticeably more than file/queue.
        let kv = run(&quick_cfg(DsType::KvStore)).unwrap();
        let file = run(&quick_cfg(DsType::File)).unwrap();
        assert!(
            kv.avg_utilization() <= file.avg_utilization() + 0.05,
            "kv {} vs file {}",
            kv.avg_utilization(),
            file.avg_utilization()
        );
        assert!(kv.splits > 0);
    }

    #[test]
    fn memory_returns_to_zero_after_the_trace_drains() {
        let mut cfg = quick_cfg(DsType::File);
        cfg.ticks = 30;
        let out = run(&cfg).unwrap();
        // The tail of the run (after all consumes + lease expiry)
        // should hold little or nothing.
        let tail = out.samples.last().unwrap();
        assert!(
            tail.allocated <= out.peak_allocated() / 2,
            "tail {tail:?} vs peak {}",
            out.peak_allocated()
        );
    }
}
