//! Discrete-event cluster simulator for the Fig. 9 experiment.
//!
//! The compared systems (ElastiCache / Pocket / Jiffy) run the *same*
//! trace on the *same* modeled hardware (remote DRAM, flash, S3 — the
//! calibrated tier models of `jiffy_persistent::tiers`); only the
//! allocation policy differs. A job executes its stages sequentially:
//! each stage reads its predecessor's intermediate output from wherever
//! the policy placed it, computes, then writes its own output wherever
//! the policy can place it *now*. Constrained capacity therefore shows
//! up as IO time on slower tiers — exactly the paper's mechanism for
//! job slowdown.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use jiffy_baselines::{
    AllocationPolicy, ElasticachePolicy, JiffyPolicy, Placement, PocketPolicy, Tier,
};
use jiffy_persistent::{tiers, CostModel};
use jiffy_workloads::{JobSpec, Trace};

/// Intermediate data moves as ~64 KB objects (shuffle partitions), so
/// per-op latency amplifies on slow tiers — the mechanism behind the
/// paper's 34x ElastiCache slowdown. All tiers pay the same chunking.
const CHUNK: u64 = 64 * 1024;

/// Time to move `bytes` through `model` as CHUNK-sized operations.
fn chunked_cost(model: &CostModel, bytes: u64) -> Duration {
    if bytes == 0 {
        return Duration::ZERO;
    }
    let ops = bytes.div_ceil(CHUNK);
    model.base * ops as u32 + Duration::from_secs_f64(bytes as f64 / model.bandwidth_bps)
}

/// The Pocket flash spill tier as the paper's lambdas see it: NVMe
/// behind the same network, shared across tasks (~1.2 ms/op effective,
/// ~250 MB/s per stream).
fn sim_ssd() -> CostModel {
    CostModel::new(Duration::from_micros(1200), 250.0)
}

/// Which system to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Static provisioning, S3 overflow.
    Elasticache,
    /// Job-granularity reservation, flash overflow.
    Pocket,
    /// Block-granularity multiplexing with leases, flash overflow.
    Jiffy,
}

impl SystemKind {
    /// All three, in the paper's legend order.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::Elasticache,
        SystemKind::Pocket,
        SystemKind::Jiffy,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Elasticache => "Elasticache",
            Self::Pocket => "Pocket",
            Self::Jiffy => "Jiffy",
        }
    }

    fn make_policy(
        &self,
        capacity: u64,
        tenants: u32,
        block_size: u64,
        lease: Duration,
        tenant_weights: Option<&Vec<f64>>,
    ) -> Box<dyn AllocationPolicy> {
        match self {
            Self::Elasticache => {
                let ec = ElasticachePolicy::new(capacity, tenants);
                Box::new(match tenant_weights {
                    Some(w) => ec.with_weights(w.clone()),
                    None => ec,
                })
            }
            Self::Pocket => Box::new(PocketPolicy::new(capacity)),
            Self::Jiffy => Box::new(JiffyPolicy::new(capacity, block_size, lease)),
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// System simulated.
    pub system: SystemKind,
    /// DRAM capacity the run was given.
    pub capacity: u64,
    /// Per-job completion times (job id → duration), arrival order.
    pub completions: Vec<(u64, Duration)>,
    /// Mean of `dram_used` over the sampled timeline.
    pub avg_used: f64,
    /// Mean of `dram_held` over the sampled timeline.
    pub avg_held: f64,
    /// Fraction of intermediate bytes that spilled off DRAM.
    pub spill_fraction: f64,
}

impl SimOutcome {
    /// Average DRAM utilization: bytes storing live data / bytes held.
    pub fn utilization(&self) -> f64 {
        if self.avg_held == 0.0 {
            0.0
        } else {
            self.avg_used / self.avg_held
        }
    }

    /// Mean job completion time.
    pub fn mean_completion(&self) -> Duration {
        let total: f64 = self.completions.iter().map(|(_, d)| d.as_secs_f64()).sum();
        Duration::from_secs_f64(total / self.completions.len().max(1) as f64)
    }

    /// Mean per-job slowdown relative to a reference run (same system,
    /// typically at 100 % capacity), matching jobs by id.
    pub fn mean_slowdown_vs(&self, reference: &SimOutcome) -> f64 {
        let ref_by_id: std::collections::HashMap<u64, Duration> =
            reference.completions.iter().copied().collect();
        let mut sum = 0.0;
        let mut n = 0usize;
        for (id, d) in &self.completions {
            if let Some(r) = ref_by_id.get(id) {
                if !r.is_zero() {
                    sum += d.as_secs_f64() / r.as_secs_f64();
                    n += 1;
                }
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

/// Simulator events.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    JobArrival(usize),
    StageEnd { job_index: usize, stage: usize },
    Sample,
}

/// Ordered heap entry (earliest first; deterministic tiebreak on a
/// sequence number).
#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    at: Duration,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-job runtime state.
struct JobState {
    /// Output of the stage *before* the running one (being read now;
    /// released when the running stage ends).
    reading: Option<Placement>,
    /// Output of the running stage (becomes `reading` at stage end).
    current: Option<Placement>,
    started: Duration,
    done: bool,
}

/// The Fig. 9 simulator.
pub struct ClusterSim<'a> {
    trace: &'a Trace,
    system: SystemKind,
    capacity: u64,
    block_size: u64,
    lease: Duration,
    sample_step: Duration,
    tenant_weights: Option<Vec<f64>>,
}

impl<'a> ClusterSim<'a> {
    /// Creates a simulator for one (system, capacity) point. `capacity`
    /// is DRAM bytes; the paper's defaults (128 MB blocks, 1 s lease)
    /// apply to the Jiffy policy.
    pub fn new(trace: &'a Trace, system: SystemKind, capacity: u64) -> Self {
        Self {
            trace,
            system,
            capacity,
            // The paper uses 128 MB blocks against jobs reaching tens of
            // GB of intermediate data; our scaled trace has ~512 MB
            // median jobs, so the block scales proportionally (8 MB ≈
            // the same block-to-job ratio).
            block_size: 8 << 20,
            lease: Duration::from_secs(1),
            sample_step: Duration::from_secs(30),
            tenant_weights: None,
        }
    }

    /// Provisions the ElastiCache baseline proportionally to per-tenant
    /// peak demand (a realistic capacity plan) instead of equal slices.
    pub fn with_tenant_weights(mut self, weights: Vec<f64>) -> Self {
        self.tenant_weights = Some(weights);
        self
    }

    /// Overrides the Jiffy block size (ablations).
    pub fn with_block_size(mut self, bytes: u64) -> Self {
        self.block_size = bytes;
        self
    }

    /// Overrides the Jiffy lease duration (ablations).
    pub fn with_lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Runs the simulation to completion.
    pub fn run(&self) -> SimOutcome {
        let mut policy = self.system.make_policy(
            self.capacity,
            self.trace.tenants,
            self.block_size,
            self.lease,
            self.tenant_weights.as_ref(),
        );
        let spill_tier = policy.spill_tier();
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Reverse<Scheduled>>, at, event| {
            seq += 1;
            heap.push(Reverse(Scheduled { at, seq, event }));
        };
        for (i, job) in self.trace.jobs.iter().enumerate() {
            push(&mut heap, job.arrival, Event::JobArrival(i));
        }
        push(&mut heap, Duration::ZERO, Event::Sample);

        let mut states: Vec<JobState> = self
            .trace
            .jobs
            .iter()
            .map(|j| JobState {
                reading: None,
                current: None,
                started: j.arrival,
                done: false,
            })
            .collect();
        let mut completions = Vec::with_capacity(self.trace.jobs.len());
        let mut used_sum = 0.0;
        let mut held_sum = 0.0;
        let mut samples = 0u64;
        let mut dram_bytes = 0u64;
        let mut spill_bytes = 0u64;
        let mut jobs_remaining = self.trace.jobs.len();

        while let Some(Reverse(Scheduled { at: now, event, .. })) = heap.pop() {
            match event {
                Event::JobArrival(i) => {
                    let job = &self.trace.jobs[i];
                    // Reservation-based systems get the job's *declared*
                    // demand. Jobs cannot predict intermediate sizes or
                    // per-stage lifetimes at submission (§2.1), so real
                    // deployments declare conservatively: the total
                    // footprint plus a safety margin (Fig. 1b shows the
                    // resulting 5-10x gap between provisioned and used).
                    let declared = job.total_bytes().saturating_mul(2);
                    policy.job_arrives(now, job.id, job.tenant, declared);
                    let end = self.start_stage(
                        &mut *policy,
                        spill_tier,
                        now,
                        job,
                        0,
                        &mut states[i],
                        &mut dram_bytes,
                        &mut spill_bytes,
                    );
                    push(
                        &mut heap,
                        end,
                        Event::StageEnd {
                            job_index: i,
                            stage: 0,
                        },
                    );
                }
                Event::StageEnd { job_index, stage } => {
                    let job = &self.trace.jobs[job_index];
                    // The just-finished stage consumed its predecessor's
                    // output: release it now.
                    if let Some(p) = states[job_index].reading.take() {
                        policy.release(now, job.id, p);
                    }
                    let current = states[job_index].current.take();
                    states[job_index].reading = current;
                    if stage + 1 < job.stages.len() {
                        let end = self.start_stage(
                            &mut *policy,
                            spill_tier,
                            now,
                            job,
                            stage + 1,
                            &mut states[job_index],
                            &mut dram_bytes,
                            &mut spill_bytes,
                        );
                        push(
                            &mut heap,
                            end,
                            Event::StageEnd {
                                job_index,
                                stage: stage + 1,
                            },
                        );
                    } else {
                        // Job done: release the final output, deregister.
                        let state = &mut states[job_index];
                        if let Some(p) = state.reading.take() {
                            policy.release(now, job.id, p);
                        }
                        policy.job_departs(now, job.id);
                        state.done = true;
                        completions.push((job.id, now - state.started));
                        jobs_remaining -= 1;
                    }
                }
                Event::Sample => {
                    used_sum += policy.dram_used(now) as f64;
                    held_sum += policy.dram_held(now) as f64;
                    samples += 1;
                    if jobs_remaining > 0 {
                        push(&mut heap, now + self.sample_step, Event::Sample);
                    }
                }
            }
        }
        let total = (dram_bytes + spill_bytes).max(1);
        SimOutcome {
            system: self.system,
            capacity: self.capacity,
            completions,
            avg_used: used_sum / samples.max(1) as f64,
            avg_held: held_sum / samples.max(1) as f64,
            spill_fraction: spill_bytes as f64 / total as f64,
        }
    }

    /// Starts one stage at `now`: read the predecessor's output (in
    /// `state.reading`), compute, acquire + write this stage's output
    /// into `state.current`. Returns the stage end time; the caller
    /// releases `reading` when the StageEnd event fires.
    #[allow(clippy::too_many_arguments)]
    fn start_stage(
        &self,
        policy: &mut dyn AllocationPolicy,
        spill_tier: Tier,
        now: Duration,
        job: &JobSpec,
        stage_idx: usize,
        state: &mut JobState,
        dram_bytes: &mut u64,
        spill_bytes: &mut u64,
    ) -> Duration {
        let stage = &job.stages[stage_idx];
        // Read the predecessor's output from its placement.
        let read_time = match &state.reading {
            Some(p) => transfer_time(p, spill_tier, true),
            None => Duration::ZERO, // stage 0 reads persistent input
        };
        // Acquire this stage's output space and write it.
        let placement = policy.acquire(now, job.id, stage.write_bytes);
        *dram_bytes += placement.dram;
        *spill_bytes += placement.spill;
        let write_time = transfer_time(&placement, spill_tier, false);
        state.current = Some(placement);
        now + read_time + stage.compute + write_time
    }
}

/// Time to move a placement's bytes through its tiers.
fn transfer_time(p: &Placement, spill_tier: Tier, is_read: bool) -> Duration {
    let dram = chunked_cost(&tiers::remote_dram(), p.dram);
    let spill_model = match (spill_tier, is_read) {
        (Tier::Ssd, _) => sim_ssd(),
        (Tier::S3, true) => tiers::s3_read(),
        (Tier::S3, false) => tiers::s3_write(),
        (Tier::Dram, _) => tiers::remote_dram(),
    };
    let spill = chunked_cost(&spill_model, p.spill);
    dram + spill
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_workloads::SnowflakeConfig;

    fn small_trace() -> Trace {
        Trace::generate(&SnowflakeConfig {
            tenants: 10,
            window: Duration::from_secs(900),
            jobs_per_tenant_hour: 80.0,
            ..SnowflakeConfig::default()
        })
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let trace = small_trace();
        for system in SystemKind::ALL {
            let outcome = ClusterSim::new(&trace, system, 1 << 34).run();
            assert_eq!(
                outcome.completions.len(),
                trace.jobs.len(),
                "{}",
                system.name()
            );
            let mut ids: Vec<u64> = outcome.completions.iter().map(|(id, _)| *id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), trace.jobs.len());
        }
    }

    #[test]
    fn unconstrained_runs_match_nominal_durations() {
        let trace = small_trace();
        // With effectively infinite DRAM, Jiffy completion ≈ nominal.
        let outcome = ClusterSim::new(&trace, SystemKind::Jiffy, u64::MAX / 4).run();
        assert!(outcome.spill_fraction < 1e-9);
        for (id, d) in &outcome.completions {
            let job = trace.jobs.iter().find(|j| j.id == *id).unwrap();
            let nominal = job.nominal_duration();
            let ratio = d.as_secs_f64() / nominal.as_secs_f64();
            assert!(
                (0.9..=1.1).contains(&ratio),
                "job {id}: sim {d:?} vs nominal {nominal:?}"
            );
        }
    }

    #[test]
    fn constrained_capacity_slows_jobs_down() {
        let trace = small_trace();
        let step = Duration::from_secs(60);
        let peak = trace.peak_demand(step).max(1);
        for system in SystemKind::ALL {
            let full = ClusterSim::new(&trace, system, peak).run();
            let starved = ClusterSim::new(&trace, system, peak / 10).run();
            let slowdown = starved.mean_slowdown_vs(&full);
            assert!(
                slowdown > 1.0,
                "{}: slowdown {slowdown} at 10% capacity",
                system.name()
            );
            assert!(starved.spill_fraction > full.spill_fraction);
        }
    }

    #[test]
    fn jiffy_beats_the_baselines_under_constraint() {
        // The paper's headline: at constrained capacity Jiffy's jobs
        // finish fastest in absolute terms (Fig. 9a's 1.6-2.5x vs
        // Pocket), and ElastiCache degrades the most.
        let trace = small_trace();
        let step = Duration::from_secs(5);
        let peak = trace.peak_demand(step).max(1);
        let cap = peak / 5; // 20 % of peak
        let mut completion = std::collections::HashMap::new();
        let mut slowdown = std::collections::HashMap::new();
        for system in SystemKind::ALL {
            let full = ClusterSim::new(&trace, system, peak).run();
            let constrained = ClusterSim::new(&trace, system, cap).run();
            completion.insert(system, constrained.mean_completion());
            slowdown.insert(system, constrained.mean_slowdown_vs(&full));
        }
        assert!(
            completion[&SystemKind::Jiffy] < completion[&SystemKind::Pocket],
            "{completion:?}"
        );
        assert!(
            completion[&SystemKind::Pocket] < completion[&SystemKind::Elasticache],
            "{completion:?}"
        );
        // ElastiCache also shows the worst relative degradation.
        assert!(
            slowdown[&SystemKind::Elasticache] > slowdown[&SystemKind::Jiffy],
            "{slowdown:?}"
        );
    }

    #[test]
    fn jiffy_utilization_is_highest() {
        let trace = small_trace();
        let step = Duration::from_secs(60);
        let peak = trace.peak_demand(step).max(1);
        let cap = peak / 2;
        let mut utils = std::collections::HashMap::new();
        for system in SystemKind::ALL {
            // Jiffy's 128 MB default block is close to this scaled
            // trace's job sizes; use a proportionally smaller block.
            let outcome = ClusterSim::new(&trace, system, cap)
                .with_block_size(1 << 20)
                .run();
            utils.insert(system, outcome.utilization());
        }
        assert!(
            utils[&SystemKind::Jiffy] > utils[&SystemKind::Pocket],
            "{utils:?}"
        );
        assert!(
            utils[&SystemKind::Jiffy] > utils[&SystemKind::Elasticache],
            "{utils:?}"
        );
    }

    #[test]
    fn deterministic_given_the_trace() {
        let trace = small_trace();
        let a = ClusterSim::new(&trace, SystemKind::Jiffy, 1 << 30).run();
        let b = ClusterSim::new(&trace, SystemKind::Jiffy, 1 << 30).run();
        assert_eq!(a.completions, b.completions);
    }
}
