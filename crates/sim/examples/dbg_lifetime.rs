//! Debug driver for the lifetime experiment.
use jiffy::DsType;
use jiffy_sim::lifetime::{run, LifetimeConfig};

fn main() {
    let cfg = LifetimeConfig {
        ds: DsType::File,
        ticks: 24,
        blocks: 1024,
        target_peak_bytes: 512 * 1024,
        ..LifetimeConfig::default()
    };
    match run(&cfg) {
        Ok(out) => println!("ok: {} samples, splits {}", out.samples.len(), out.splits),
        Err(e) => println!("ERR: {e}"),
    }
}
