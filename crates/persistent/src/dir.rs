//! On-disk object store (a local directory standing in for S3).

use std::fs;
use std::path::{Path, PathBuf};

use jiffy_common::{JiffyError, Result};

/// An [`crate::ObjectStore`] backed by files under a root directory.
///
/// Object paths map to file paths with `/` as the separator; path
/// components are sanitized so an object name can never escape the root.
pub struct DirObjectStore {
    root: PathBuf,
}

impl DirObjectStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// IO failures creating the root directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> Result<PathBuf> {
        let mut out = self.root.clone();
        for comp in path.split('/') {
            if comp.is_empty() || comp == "." || comp == ".." {
                return Err(JiffyError::Internal(format!(
                    "invalid object path component in {path:?}"
                )));
            }
            out.push(comp);
        }
        Ok(out)
    }
}

impl crate::ObjectStore for DirObjectStore {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        use std::io::Write;

        let file = self.resolve(path)?;
        if let Some(parent) = file.parent() {
            fs::create_dir_all(parent)?;
        }
        // Crash-safe write: a uniquely-named temp file (two writers to the
        // same object must not share one), fsync, then an atomic rename so
        // a crash mid-`put` can never leave a torn object — readers see
        // either the old contents or the new, never a prefix.
        static TMP_SEQ: jiffy_sync::atomic::AtomicU64 = jiffy_sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, jiffy_sync::atomic::Ordering::Relaxed);
        let tmp = file.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        if let Err(e) = fs::rename(&tmp, &file) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Persist the rename itself (the directory entry). Best-effort:
        // some filesystems refuse to fsync directories.
        if let Some(parent) = file.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        let file = self.resolve(path)?;
        fs::read(&file).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                JiffyError::PersistentObjectMissing(path.to_string())
            } else {
                e.into()
            }
        })
    }

    fn delete(&self, path: &str) -> Result<()> {
        let file = self.resolve(path)?;
        match fs::remove_file(&file) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|f| f.is_file()).unwrap_or(false)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.is_file() {
                    if let Ok(rel) = p.strip_prefix(&self.root) {
                        let name = rel
                            .components()
                            .map(|c| c.as_os_str().to_string_lossy())
                            .collect::<Vec<_>>()
                            .join("/");
                        if name.starts_with(prefix) {
                            out.push(name);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectStore;

    fn temp_store(tag: &str) -> DirObjectStore {
        let dir = std::env::temp_dir().join(format!("jiffy-dirstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DirObjectStore::open(dir).unwrap()
    }

    #[test]
    fn round_trips_through_disk() {
        let s = temp_store("rt");
        s.put("jobs/j1/t1", b"payload").unwrap();
        assert_eq!(s.get("jobs/j1/t1").unwrap(), b"payload");
        assert!(s.exists("jobs/j1/t1"));
        s.delete("jobs/j1/t1").unwrap();
        assert!(!s.exists("jobs/j1/t1"));
    }

    #[test]
    fn missing_object_errors_cleanly() {
        let s = temp_store("missing");
        assert!(matches!(
            s.get("nope").unwrap_err(),
            JiffyError::PersistentObjectMissing(_)
        ));
        s.delete("nope").unwrap();
    }

    #[test]
    fn path_traversal_is_rejected() {
        let s = temp_store("trav");
        assert!(s.put("../escape", b"x").is_err());
        assert!(s.put("a//b", b"x").is_err());
        assert!(s.put("a/./b", b"x").is_err());
        assert!(!s.exists("../escape"));
    }

    #[test]
    fn list_walks_nested_prefixes() {
        let s = temp_store("list");
        s.put("j1/t1/b0", b"1").unwrap();
        s.put("j1/t1/b1", b"2").unwrap();
        s.put("j1/t2/b0", b"3").unwrap();
        assert_eq!(
            s.list("j1/t1"),
            vec!["j1/t1/b0".to_string(), "j1/t1/b1".to_string()]
        );
        assert_eq!(s.list("").len(), 3);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let s = temp_store("ow");
        s.put("k", b"old").unwrap();
        s.put("k", b"new").unwrap();
        assert_eq!(s.get("k").unwrap(), b"new");
    }
}
