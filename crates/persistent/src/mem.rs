//! In-memory object store with optional imposed access costs.

use std::collections::BTreeMap;

use jiffy_common::{JiffyError, Result};
use jiffy_sync::RwLock;

use crate::cost::CostModel;
use crate::ObjectStore;

/// How a [`MemObjectStore`] applies its [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMode {
    /// Costs are only reported via [`MemObjectStore::last_cost`] /
    /// accumulated totals (the simulator adds them to virtual time).
    Account,
    /// Operations actually sleep for their modeled cost (end-to-end
    /// experiments on real threads).
    Sleep,
}

/// An in-memory [`ObjectStore`], optionally behaving like a slow tier.
pub struct MemObjectStore {
    objects: RwLock<BTreeMap<String, Vec<u8>>>,
    read_cost: CostModel,
    write_cost: CostModel,
    mode: CostMode,
    accounted: RwLock<AccountedCost>,
}

/// Accumulated modeled cost of all operations so far.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccountedCost {
    /// Total modeled read time.
    pub read: std::time::Duration,
    /// Total modeled write time.
    pub write: std::time::Duration,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Operations performed.
    pub ops: u64,
}

impl MemObjectStore {
    /// A free (cost-less) store.
    pub fn new() -> Self {
        Self::with_costs(CostModel::FREE, CostModel::FREE, CostMode::Account)
    }

    /// A store whose reads/writes carry the given cost models.
    pub fn with_costs(read_cost: CostModel, write_cost: CostModel, mode: CostMode) -> Self {
        Self {
            objects: RwLock::new(BTreeMap::new()),
            read_cost,
            write_cost,
            mode,
            accounted: RwLock::new(AccountedCost::default()),
        }
    }

    fn charge(&self, bytes: u64, is_read: bool) {
        let model = if is_read {
            &self.read_cost
        } else {
            &self.write_cost
        };
        let cost = model.cost(bytes);
        {
            let mut acc = self.accounted.write();
            acc.ops += 1;
            if is_read {
                acc.read += cost;
                acc.bytes_read += bytes;
            } else {
                acc.write += cost;
                acc.bytes_written += bytes;
            }
        }
        if self.mode == CostMode::Sleep && cost > std::time::Duration::ZERO {
            std::thread::sleep(cost);
        }
    }

    /// Snapshot of accumulated modeled costs.
    pub fn accounted(&self) -> AccountedCost {
        *self.accounted.read()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }
}

impl Default for MemObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.charge(data.len() as u64, false);
        self.objects.write().insert(path.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        let data = self
            .objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| JiffyError::PersistentObjectMissing(path.to_string()))?;
        self.charge(data.len() as u64, true);
        Ok(data)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.objects.write().remove(path);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.objects.read().contains_key(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn put_get_delete_round_trip() {
        let s = MemObjectStore::new();
        s.put("a/b", b"hello").unwrap();
        assert_eq!(s.get("a/b").unwrap(), b"hello");
        assert!(s.exists("a/b"));
        s.delete("a/b").unwrap();
        assert!(!s.exists("a/b"));
        assert!(matches!(
            s.get("a/b").unwrap_err(),
            JiffyError::PersistentObjectMissing(_)
        ));
    }

    #[test]
    fn put_replaces() {
        let s = MemObjectStore::new();
        s.put("k", b"v1").unwrap();
        s.put("k", b"v2").unwrap();
        assert_eq!(s.get("k").unwrap(), b"v2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let s = MemObjectStore::new();
        for p in ["job1/t1/b0", "job1/t2/b0", "job2/t1/b0", "job1/t1/b1"] {
            s.put(p, b"x").unwrap();
        }
        assert_eq!(
            s.list("job1/t1/"),
            vec!["job1/t1/b0".to_string(), "job1/t1/b1".to_string()]
        );
        assert_eq!(s.list("job3/"), Vec::<String>::new());
        assert_eq!(s.list("").len(), 4);
    }

    #[test]
    fn accounting_tracks_cost_and_volume() {
        let s = MemObjectStore::with_costs(
            CostModel::new(Duration::from_millis(10), 100.0),
            CostModel::new(Duration::from_millis(20), 50.0),
            CostMode::Account,
        );
        s.put("k", &[0u8; 1000]).unwrap();
        s.get("k").unwrap();
        let acc = s.accounted();
        assert_eq!(acc.ops, 2);
        assert_eq!(acc.bytes_written, 1000);
        assert_eq!(acc.bytes_read, 1000);
        assert!(acc.write >= Duration::from_millis(20));
        assert!(acc.read >= Duration::from_millis(10));
        // Account mode must not sleep: both ops complete instantly, which
        // we can't assert directly, but costs accumulated without real
        // delay is implied by the test completing within the harness
        // timeout.
    }

    #[test]
    fn sleep_mode_imposes_latency() {
        let s = MemObjectStore::with_costs(
            CostModel::new(Duration::from_millis(15), f64::INFINITY / 1e6),
            CostModel::FREE,
            CostMode::Sleep,
        );
        s.put("k", b"v").unwrap();
        let t0 = std::time::Instant::now();
        s.get("k").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn delete_is_idempotent() {
        let s = MemObjectStore::new();
        s.delete("never-existed").unwrap();
    }

    #[test]
    fn total_bytes_sums_objects() {
        let s = MemObjectStore::new();
        s.put("a", &[0; 10]).unwrap();
        s.put("b", &[0; 20]).unwrap();
        assert_eq!(s.total_bytes(), 30);
    }
}
