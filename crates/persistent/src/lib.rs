//! Persistent-tier substrate.
//!
//! Jiffy flushes expiring prefixes to external persistent storage (S3 in
//! the paper) and loads them back on demand; the baselines spill to SSD
//! (Pocket) or S3 (ElastiCache). None of those services exist in this
//! environment, so this crate provides:
//!
//! - [`ObjectStore`] — the storage abstraction (put/get/delete/list).
//! - [`MemObjectStore`] — in-memory store with an optional [`CostModel`]
//!   that either *reports* access costs (for the discrete-event
//!   simulator) or *imposes* them with real sleeps (for end-to-end
//!   latency experiments).
//! - [`DirObjectStore`] — a real on-disk store for flush/load round
//!   trips that survive the process.
//! - [`tiers`] — calibrated cost models for the storage tiers the paper
//!   measures against (S3, DynamoDB, SSD, remote DRAM); the constants
//!   and their sources are documented per tier.

pub mod cost;
pub mod dir;
pub mod mem;
pub mod tiers;

pub use cost::CostModel;
pub use dir::DirObjectStore;
pub use mem::MemObjectStore;

use jiffy_common::Result;

/// A flat byte-addressed object store (the persistent tier).
pub trait ObjectStore: Send + Sync {
    /// Stores `data` under `path`, replacing any existing object.
    ///
    /// # Errors
    ///
    /// Backend IO failures.
    fn put(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Fetches the object at `path`.
    ///
    /// # Errors
    ///
    /// [`jiffy_common::JiffyError::PersistentObjectMissing`] when absent.
    fn get(&self, path: &str) -> Result<Vec<u8>>;

    /// Deletes the object at `path` (idempotent).
    ///
    /// # Errors
    ///
    /// Backend IO failures.
    fn delete(&self, path: &str) -> Result<()>;

    /// Whether an object exists at `path`.
    fn exists(&self, path: &str) -> bool;

    /// Lists object paths under `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
}
