//! Storage-tier access-cost models.

use std::time::Duration;

/// Latency/bandwidth model for one storage tier, one operation direction.
///
/// Cost of an access of `n` bytes = `base` + `n / bandwidth`. The same
/// model serves two purposes:
///
/// - the discrete-event simulator *adds* [`CostModel::cost`] to its
///   virtual clock;
/// - the end-to-end experiments can *sleep* for it, making a local
///   in-memory store behave like S3 from the caller's perspective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-operation latency (request setup, service time).
    pub base: Duration,
    /// Sustained bandwidth in bytes/second (`f64::INFINITY` for
    /// latency-only models).
    pub bandwidth_bps: f64,
}

impl CostModel {
    /// A zero-cost model (local DRAM).
    pub const FREE: CostModel = CostModel {
        base: Duration::ZERO,
        bandwidth_bps: f64::INFINITY,
    };

    /// Builds a model from a base latency and a bandwidth in MB/s.
    pub fn new(base: Duration, bandwidth_mbps: f64) -> Self {
        Self {
            base,
            bandwidth_bps: bandwidth_mbps * 1e6,
        }
    }

    /// Time to move `bytes` through this tier.
    pub fn cost(&self, bytes: u64) -> Duration {
        if self.bandwidth_bps.is_infinite() {
            return self.base;
        }
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        self.base + transfer
    }

    /// Effective throughput (bytes/sec) for objects of `bytes` size,
    /// including the per-op base latency — the quantity Fig. 10(b)
    /// plots as MBPS.
    pub fn effective_mbps(&self, bytes: u64) -> f64 {
        let t = self.cost(bytes).as_secs_f64();
        if t == 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 / t / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_costs_nothing() {
        assert_eq!(CostModel::FREE.cost(1 << 30), Duration::ZERO);
    }

    #[test]
    fn cost_combines_latency_and_bandwidth() {
        // 10 ms base + 100 MB/s: 1 MB takes 10 ms + 10 ms.
        let m = CostModel::new(Duration::from_millis(10), 100.0);
        let c = m.cost(1_000_000);
        assert!((c.as_secs_f64() - 0.020).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn latency_dominates_small_objects() {
        let m = CostModel::new(Duration::from_millis(10), 100.0);
        let small = m.cost(8);
        assert!(small >= Duration::from_millis(10));
        assert!(small < Duration::from_millis(11));
    }

    #[test]
    fn effective_throughput_saturates_at_bandwidth() {
        let m = CostModel::new(Duration::from_millis(1), 100.0);
        // Huge object: throughput approaches 100 MB/s.
        let big = m.effective_mbps(1 << 30);
        assert!(big > 90.0 && big <= 100.0, "{big}");
        // Tiny object: latency-bound, throughput tiny.
        let tiny = m.effective_mbps(8);
        assert!(tiny < 0.01, "{tiny}");
    }
}
