//! Calibrated cost models for the storage tiers in the paper's
//! evaluation (Fig. 9, Fig. 10).
//!
//! The constants below are calibrated to the paper's own Fig. 10
//! measurements from an AWS Lambda client (the curves' small-object
//! latency floor and large-object bandwidth ceiling), plus public AWS
//! figures where Fig. 10 does not constrain a tier. They are *models of
//! services we cannot call from this environment*; EXPERIMENTS.md
//! documents the substitution.

use std::time::Duration;

use crate::cost::CostModel;

/// S3 read path: ~12 ms first-byte latency, ~85 MB/s single-stream GET.
pub fn s3_read() -> CostModel {
    CostModel::new(Duration::from_millis(12), 85.0)
}

/// S3 write path: ~18 ms request latency, ~70 MB/s single-stream PUT.
pub fn s3_write() -> CostModel {
    CostModel::new(Duration::from_millis(18), 70.0)
}

/// DynamoDB read: ~4 ms; item size capped at 400 KB (the paper notes
/// 128 KB for their batch API usage — the cap is enforced by callers).
pub fn dynamodb_read() -> CostModel {
    CostModel::new(Duration::from_millis(4), 30.0)
}

/// DynamoDB write: ~6 ms.
pub fn dynamodb_write() -> CostModel {
    CostModel::new(Duration::from_millis(6), 25.0)
}

/// Maximum object size DynamoDB accepts in the paper's runs.
pub const DYNAMODB_MAX_OBJECT: u64 = 128 * 1024;

/// Remote NVMe flash tier (Pocket's spill target, reached over the same
/// network as the DRAM tier): ~250 µs access (RPC + flash read),
/// ~900 MB/s effective.
pub fn ssd() -> CostModel {
    CostModel::new(Duration::from_micros(250), 900.0)
}

/// Remote DRAM over the EC2 network (ElastiCache/Pocket/Crail/Jiffy data
/// path): ~150 µs RPC round trip, ~1.1 GB/s effective on 10 Gbps links.
pub fn remote_dram() -> CostModel {
    CostModel::new(Duration::from_micros(150), 1100.0)
}

/// One-way network propagation + switching inside an EC2 placement
/// group, used by the simulator for server↔server transfers.
pub fn ec2_network() -> CostModel {
    CostModel::new(Duration::from_micros(60), 1200.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_matches_reality() {
        // For a 64 KB object (within every tier's size limits):
        // DRAM < SSD < DynamoDB < S3.
        let n = 64 << 10;
        let dram = remote_dram().cost(n);
        let ssd_t = ssd().cost(n);
        let ddb = dynamodb_read().cost(n);
        let s3 = s3_read().cost(n);
        assert!(dram < ssd_t, "{dram:?} {ssd_t:?}");
        assert!(ssd_t < ddb, "{ssd_t:?} {ddb:?}");
        assert!(ddb < s3, "{ddb:?} {s3:?}");
    }

    #[test]
    fn small_object_latencies_match_paper_bands() {
        // Fig. 10(a): in-memory stores are sub-millisecond for small
        // objects, persistent stores are millisecond-plus.
        assert!(remote_dram().cost(8) < Duration::from_millis(1));
        assert!(s3_read().cost(8) > Duration::from_millis(10));
        assert!(dynamodb_read().cost(8) > Duration::from_millis(1));
    }

    #[test]
    fn large_object_throughput_is_bandwidth_bound() {
        // Fig. 10(b): at 128 MB, S3 reaches tens of MB/s.
        let mbps = s3_read().effective_mbps(128 << 20);
        assert!(mbps > 50.0 && mbps < 90.0, "{mbps}");
    }
}
