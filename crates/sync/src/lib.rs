//! `jiffy-sync` — the single synchronization import for the Jiffy
//! workspace.
//!
//! Every first-party crate takes its `Mutex` / `RwLock` / `Condvar` /
//! atomics / `Arc` from here instead of `std::sync` or `parking_lot`
//! (enforced by `cargo xtask lint`). One import point buys three
//! interchangeable backends:
//!
//! 1. **Fast path** (default, release): thin non-poisoning wrappers over
//!    `std::sync` — the same shape the old `parking_lot` stand-in had,
//!    zero added cost.
//! 2. **Lock-order instrumentation** (default, `debug_assertions`):
//!    every acquisition is recorded in a global lock-order graph keyed
//!    by construction site (or an explicit `new_named` class); an
//!    acquisition that closes a cycle — i.e. could deadlock under *some*
//!    interleaving — panics deterministically with the offending chain.
//!    Disable at runtime with `JIFFY_LOCK_ORDER=0`. See [`mod@order`]
//!    docs for the rules (instance re-entrancy, same-class exemption).
//! 3. **Model checking** (`--features loom`): primitives are arbitrated
//!    by the vendored loom stand-in's bounded-exhaustive scheduler.
//!    Structures write `loom`-gated tests as
//!    `jiffy_sync::model(|| ...)` with `jiffy_sync::thread::spawn`;
//!    see DESIGN.md §8 for the recipe.
//!
//! Types deliberately NOT re-routed: `Arc`/`Weak` (plain std re-exports;
//! the loom stand-in does not track reference counts), `Barrier`, and
//! `mpsc` (std re-exports, unmodeled — don't use them inside loom
//! models).

#[cfg(all(debug_assertions, not(feature = "loom")))]
mod order;
#[cfg(not(feature = "loom"))]
mod plain;

#[cfg(not(feature = "loom"))]
pub use plain::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "loom")]
pub use loom::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Model-aware atomics (std atomics on the non-loom backends).
pub mod atomic {
    #[cfg(not(feature = "loom"))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };

    #[cfg(feature = "loom")]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        Ordering,
    };
}

/// Model-aware threads (std threads on the non-loom backends). Only the
/// subset loom can schedule is exposed: `spawn`, `yield_now`,
/// `JoinHandle`. For sleeps, names, or scoped threads use `std::thread`
/// directly — those never appear inside loom models.
pub mod thread {
    #[cfg(not(feature = "loom"))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(feature = "loom")]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Unmodeled std re-exports (see crate docs).
pub use std::sync::{mpsc, Arc, Barrier, Weak};

/// Runs `f` under the loom model checker (`--features loom`), or exactly
/// once with real threads otherwise — so `model`-based tests double as
/// plain smoke tests in ordinary `cargo test` runs.
#[cfg(feature = "loom")]
pub use loom::model;

/// Runs `f` under the loom model checker (`--features loom`), or exactly
/// once with real threads otherwise — so `model`-based tests double as
/// plain smoke tests in ordinary `cargo test` runs.
#[cfg(not(feature = "loom"))]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    f();
}

/// True when the loom backend is active (for tests that need to scale
/// bounds down inside models).
pub const LOOM: bool = cfg!(feature = "loom");

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                c.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        t.join().unwrap();
    }

    #[cfg(not(feature = "loom"))]
    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn atomics_work() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn model_runs_closure() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = ran.clone();
        model(move || {
            r2.store(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    // Lock-order instrumentation is only active on the debug non-loom
    // backend; these tests pin its observable behavior.
    #[cfg(all(debug_assertions, not(feature = "loom")))]
    mod order_tracking {
        use super::*;

        #[test]
        fn recursive_lock_panics() {
            let m = Arc::new(Mutex::new(0));
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _a = m.lock();
                let _b = m.lock(); // would deadlock at runtime
            }));
            assert!(r.is_err(), "recursive relock must be detected");
        }

        #[test]
        fn ab_ba_inversion_panics_without_needing_the_deadlock() {
            // Two named classes, single thread: taking a->b then b->a
            // must panic on the inversion even though no deadlock occurs.
            let a = Arc::new(Mutex::new_named(0, "order-test-a"));
            let b = Arc::new(Mutex::new_named(0, "order-test-b"));
            {
                let _ga = a.lock();
                let _gb = b.lock(); // records a -> b
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock(); // b -> a closes the cycle
            }));
            let payload = r.expect_err("inversion must panic");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("order-test-a") && msg.contains("order-test-b"),
                "panic names the cycle classes: {msg}"
            );
        }

        #[test]
        fn same_class_different_instances_are_exempt() {
            // Sharded pattern: Vec of locks from one construction site,
            // acquired pairwise — must NOT trip the self-edge.
            let shards: Vec<Mutex<u32>> = (0..4).map(Mutex::new).collect();
            let _a = shards[0].lock();
            let _b = shards[1].lock();
        }
    }
}
