//! The std-backed fast path: `parking_lot`-style non-poisoning guards
//! over `std::sync`, with lock-order instrumentation compiled in under
//! `debug_assertions` (see [`crate::order`]) and nothing but the plain
//! std primitive in release builds.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::{self, WaitTimeoutResult};
use std::time::Duration;

#[cfg(debug_assertions)]
use crate::order;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    site: order::Site,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can wait on
/// the guard in place (parking_lot's API) without unsafe code; it is
/// `None` only transiently inside a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    lock: &'a Mutex<T>,
    #[cfg(debug_assertions)]
    token: Option<order::Token>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. Its lock-order class is this call site.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            site: order::Site::new(None, Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a new mutex whose lock-order class is `name` instead of
    /// the construction site. Use for locks created in generic helpers,
    /// or to merge/split classes deliberately.
    #[track_caller]
    pub const fn new_named(value: T, name: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Self {
            #[cfg(debug_assertions)]
            site: order::Site::new(Some(name), Location::caller()),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::on_acquire(
            &self.site,
            self as *const _ as *const () as usize,
            order::Kind::Exclusive,
        );
        MutexGuard {
            #[cfg(debug_assertions)]
            lock: self,
            #[cfg(debug_assertions)]
            token,
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        // try_lock cannot deadlock, so it records the hold (for release
        // bookkeeping and re-entrancy detection) but tolerates order
        // inversions: a failed try is a legitimate ordering escape hatch.
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            lock: self,
            #[cfg(debug_assertions)]
            token: order::on_acquire_untracked(&self.site, self as *const _ as *const () as usize),
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex(..)")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        #[cfg(debug_assertions)]
        if let Some(t) = self.token.take() {
            order::on_release(&t);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    site: order::Site,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: Option<order::Token>,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: Option<order::Token>,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock. Its lock-order class is this
    /// call site.
    #[track_caller]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            site: order::Site::new(None, Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a new reader-writer lock whose lock-order class is `name`.
    #[track_caller]
    pub const fn new_named(value: T, name: &'static str) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Self {
            #[cfg(debug_assertions)]
            site: order::Site::new(Some(name), Location::caller()),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::on_acquire(
            &self.site,
            self as *const _ as *const () as usize,
            order::Kind::Shared,
        );
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            token,
            inner: Some(match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::on_acquire(
            &self.site,
            self as *const _ as *const () as usize,
            order::Kind::Exclusive,
        );
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            token,
            inner: Some(match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        #[cfg(debug_assertions)]
        if let Some(t) = self.token.take() {
            order::on_release(&t);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        #[cfg(debug_assertions)]
        if let Some(t) = self.token.take() {
            order::on_release(&t);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// A condition variable with the `parking_lot::Condvar` API (waits on a
/// [`MutexGuard`] in place instead of consuming and returning it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    /// The guard's lock-order hold is suspended for the duration of the
    /// wait and re-recorded on wakeup.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(debug_assertions)]
        if let Some(t) = guard.token.take() {
            order::on_release(&t);
        }
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
        #[cfg(debug_assertions)]
        {
            guard.token = order::on_acquire(
                &guard.lock.site,
                guard.lock as *const _ as *const () as usize,
                order::Kind::Exclusive,
            );
        }
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        #[cfg(debug_assertions)]
        if let Some(t) = guard.token.take() {
            order::on_release(&t);
        }
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, r): (_, WaitTimeoutResult) = match self.inner.wait_timeout(g, timeout) {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        #[cfg(debug_assertions)]
        {
            guard.token = order::on_acquire(
                &guard.lock.site,
                guard.lock as *const _ as *const () as usize,
                order::Kind::Exclusive,
            );
        }
        r.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
