//! Runtime lock-order tracking: deadlock detection by construction.
//!
//! Every instrumented lock belongs to a *class* — by default the source
//! location where it was constructed, or an explicit name given via
//! `new_named`. Each thread keeps a stack of the classes it currently
//! holds; acquiring lock class `B` while holding class `A` records the
//! directed edge `A → B` in a global graph. If the new edge closes a
//! cycle, some pair of threads can deadlock by taking the classes in
//! opposite orders, and the acquisition **panics immediately** with the
//! offending cycle — turning a once-in-a-blue-moon hang into a
//! deterministic test failure on the first run that exhibits the order
//! inversion on *any* interleaving.
//!
//! Two additional rules are enforced per lock *instance*:
//!
//! * re-acquiring an instance this thread already holds panics (std
//!   mutexes deadlock on relock; a read-read relock of `std::sync::RwLock`
//!   can deadlock against a queued writer, so it is flagged too);
//! * acquisitions of *different instances of the same class* (e.g. two
//!   shards of one sharded map, or two `Block` mutexes) are exempt from
//!   edge recording — a class-level self-edge would always "cycle". Such
//!   multi-acquisitions must be ordered by an external rule (e.g. by
//!   index or id); loom models, not this tracker, verify those.
//!
//! The tracker is compiled only into `debug_assertions` builds of the
//! non-loom backend and can be disabled at runtime with
//! `JIFFY_LOCK_ORDER=0`.
//!
//! With `JIFFY_LOCK_ORDER_DUMP=<path>` set, every *first* recording of
//! an edge also appends one line to `<path>`:
//!
//! ```text
//! <from-name>@<from-file>:<line>:<col> -> <to-name>@<to-file>:<line>:<col>
//! ```
//!
//! where `<name>` is the `new_named` name or `-` for location-classed
//! locks. `cargo xtask analyze` diffs these runtime-observed edges
//! against the statically derived acquisition graph (rule
//! `static-lock-order`): a runtime edge absent from the static graph
//! means the analyzer lost track of a nesting and its cycle check has a
//! blind spot. Appends are line-atomic, so multiple test processes may
//! share one dump file. Release builds carry zero instrumentation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::panic::Location;
use std::sync::{Mutex as StdMutex, OnceLock};

/// Whether a guard is shared (`RwLock::read`) or exclusive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kind {
    Shared,
    Exclusive,
}

/// Per-lock class identity, memoized after first acquisition.
pub(crate) struct Site {
    name: Option<&'static str>,
    loc: &'static Location<'static>,
    class: OnceLock<u32>,
}

impl Site {
    pub(crate) const fn new(name: Option<&'static str>, loc: &'static Location<'static>) -> Self {
        Self {
            name,
            loc,
            class: OnceLock::new(),
        }
    }

    fn class(&self) -> u32 {
        *self
            .class
            .get_or_init(|| registry().intern(self.name, self.loc))
    }
}

/// Proof of a recorded acquisition; released on guard drop.
pub(crate) struct Token {
    class: u32,
    instance: usize,
}

#[derive(Default)]
struct Graph {
    /// Class id -> human-readable name ("meta.rs:41:9" or explicit).
    names: Vec<String>,
    /// Class id -> dump label `name@file:line:col` (name `-` if none).
    dump_labels: Vec<String>,
    by_key: HashMap<(Option<&'static str>, &'static str, u32, u32), u32>,
    /// Adjacency: edges[a] contains b iff some thread held a while
    /// acquiring b.
    edges: HashMap<u32, Vec<u32>>,
}

impl Graph {
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        // Iterative DFS recording parents; graphs here are tiny.
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut visited: std::collections::HashSet<u32> = [from].into_iter().collect();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in self.edges.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                if visited.insert(next) {
                    parent.insert(next, n);
                    stack.push(next);
                }
            }
        }
        None
    }
}

struct Registry {
    graph: StdMutex<Graph>,
}

impl Registry {
    fn intern(&self, name: Option<&'static str>, loc: &'static Location<'static>) -> u32 {
        let mut g = self.lock();
        let key = (name, loc.file(), loc.line(), loc.column());
        if let Some(&id) = g.by_key.get(&key) {
            return id;
        }
        let id = g.names.len() as u32;
        let pretty = match name {
            Some(n) => n.to_string(),
            None => format!("{}:{}:{}", loc.file(), loc.line(), loc.column()),
        };
        g.names.push(pretty);
        g.dump_labels.push(format!(
            "{}@{}:{}:{}",
            name.unwrap_or("-"),
            loc.file(),
            loc.line(),
            loc.column()
        ));
        g.by_key.insert(key, id);
        id
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Graph> {
        match self.graph.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        graph: StdMutex::new(Graph::default()),
    })
}

fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("JIFFY_LOCK_ORDER").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

fn dump_path() -> Option<&'static str> {
    static DUMP: OnceLock<Option<String>> = OnceLock::new();
    DUMP.get_or_init(|| std::env::var("JIFFY_LOCK_ORDER_DUMP").ok())
        .as_deref()
}

/// Appends one `from -> to` line to the dump file. Called with the
/// registry lock held, so label lookups are consistent; a single
/// `write_all` keeps the line append atomic across processes sharing the
/// file. Dump failures are swallowed — the tracker's job is deadlock
/// detection, and a read-only CI scratch dir must not panic tests.
fn dump_edge(g: &Graph, from: u32, to: u32) {
    let Some(path) = dump_path() else { return };
    let line = format!(
        "{} -> {}\n",
        g.dump_labels[from as usize], g.dump_labels[to as usize]
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

thread_local! {
    /// Stack of (class, instance, kind) this thread currently holds.
    static HELD: RefCell<Vec<(u32, usize, Kind)>> = const { RefCell::new(Vec::new()) };
}

/// Records an acquisition, checking instance re-entrancy and class-level
/// ordering. Returns `None` when tracking is disabled (or during TLS
/// teardown).
pub(crate) fn on_acquire(site: &Site, instance: usize, kind: Kind) -> Option<Token> {
    if !enabled() {
        return None;
    }
    let class = site.class();
    let held_snapshot: Vec<(u32, usize, Kind)> = HELD
        .try_with(|h| {
            let h = h.borrow();
            h.clone()
        })
        .ok()?;

    for &(held_class, held_instance, held_kind) in &held_snapshot {
        if held_instance == instance {
            let reg = registry();
            let g = reg.lock();
            panic!(
                "lock-order violation: thread re-acquired lock instance it already holds \
                 (class `{}`, first as {:?}, again as {:?}) — std locks deadlock on relock",
                g.names[held_class as usize], held_kind, kind
            );
        }
    }

    // Record edges held-class -> new-class and check for cycles. Same-class
    // pairs (sharded/per-block locks) are exempt; see module docs.
    let mut new_edges: Vec<u32> = held_snapshot
        .iter()
        .map(|&(c, _, _)| c)
        .filter(|&c| c != class)
        .collect();
    new_edges.sort_unstable();
    new_edges.dedup();
    if !new_edges.is_empty() {
        let reg = registry();
        let mut g = reg.lock();
        for from in new_edges {
            let already = g.edges.get(&from).is_some_and(|v| v.contains(&class));
            if already {
                continue;
            }
            // Adding from -> class closes a cycle iff class already
            // reaches from.
            if let Some(path) = g.path(class, from) {
                let chain: Vec<&str> = path.iter().map(|&c| g.names[c as usize].as_str()).collect();
                panic!(
                    "lock-order violation: acquiring `{}` while holding `{}` inverts the \
                     established order `{}` -> `{}` (cycle: {} -> {}) — two threads taking \
                     these classes in opposite orders can deadlock",
                    g.names[class as usize],
                    g.names[from as usize],
                    chain.join("` -> `"),
                    g.names[class as usize],
                    chain.join(" -> "),
                    g.names[class as usize],
                );
            }
            g.edges.entry(from).or_default().push(class);
            dump_edge(&g, from, class);
        }
    }

    HELD.try_with(|h| h.borrow_mut().push((class, instance, kind)))
        .ok()?;
    Some(Token { class, instance })
}

/// Records a hold without order/cycle checking — for `try_lock`, which
/// cannot deadlock (a failed try is the legitimate escape hatch from the
/// lock hierarchy). The hold still participates as a *source* of edges
/// for later blocking acquisitions.
pub(crate) fn on_acquire_untracked(site: &Site, instance: usize) -> Option<Token> {
    if !enabled() {
        return None;
    }
    let class = site.class();
    HELD.try_with(|h| h.borrow_mut().push((class, instance, Kind::Exclusive)))
        .ok()?;
    Some(Token { class, instance })
}

/// Releases a recorded acquisition (tolerates out-of-order guard drops).
pub(crate) fn on_release(token: &Token) {
    let _ = HELD.try_with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h
            .iter()
            .rposition(|&(c, i, _)| c == token.class && i == token.instance)
        {
            h.remove(pos);
        }
    });
}
