//! Criterion micro-bench: end-to-end KV operations through the real
//! client -> memory-server path (the measured substrate behind Fig. 10's
//! Jiffy rows).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn bench_kv(c: &mut Criterion) {
    let cluster = JiffyCluster::in_process(
        JiffyConfig::default()
            .with_block_size(8 << 20)
            // Hour-long leases: criterion's warmups must not race expiry.
            .with_lease_duration(std::time::Duration::from_secs(3600)),
        2,
        16,
    )
    .unwrap();
    let job = cluster.client().unwrap().register_job("bench").unwrap();
    let kv = job.open_kv("kv", &[], 2).unwrap();

    let mut group = c.benchmark_group("kv_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    for size in [8usize, 2048, 512 * 1024] {
        let value = vec![0x5A; size];
        kv.put(b"hot", &value).unwrap();
        group.throughput(criterion::Throughput::Bytes(size as u64));
        group.bench_function(format!("put_{size}B"), |b| {
            b.iter(|| kv.put(black_box(b"hot"), black_box(&value)).unwrap())
        });
        group.bench_function(format!("get_{size}B"), |b| {
            b.iter(|| kv.get(black_box(b"hot")).unwrap())
        });
    }
    group.bench_function("delete_insert_8B", |b| {
        b.iter(|| {
            kv.put(b"churn", b"x").unwrap();
            kv.delete(b"churn").unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
