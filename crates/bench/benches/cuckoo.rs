//! Criterion micro-bench: the cuckoo hash map vs `std::HashMap`
//! (supports the §6.2 claim that cuckoo hashing keeps the KV hot path
//! fast).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jiffy_cuckoo::CuckooMap;
use std::collections::HashMap;

fn bench_cuckoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuckoo_vs_std");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("cuckoo_insert_10k", |b| {
        b.iter(|| {
            let mut m = CuckooMap::with_capacity(16 * 1024);
            for i in 0..10_000u64 {
                m.insert(black_box(i), i);
            }
            m
        })
    });
    group.bench_function("std_insert_10k", |b| {
        b.iter(|| {
            let mut m = HashMap::with_capacity(16 * 1024);
            for i in 0..10_000u64 {
                m.insert(black_box(i), i);
            }
            m
        })
    });

    let mut cuckoo = CuckooMap::with_capacity(16 * 1024);
    let mut std_map = HashMap::with_capacity(16 * 1024);
    for i in 0..10_000u64 {
        cuckoo.insert(i, i);
        std_map.insert(i, i);
    }
    group.bench_function("cuckoo_get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(cuckoo.get(&i))
        })
    });
    group.bench_function("std_get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(std_map.get(&i))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cuckoo);
criterion_main!(benches);
