//! Criterion micro-bench: queue and file operations through the real
//! client path (the data channels of the §5 programming models).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn bench_queue_file(c: &mut Criterion) {
    let cluster = JiffyCluster::in_process(
        JiffyConfig::default()
            .with_block_size(8 << 20)
            // Hour-long leases: criterion's warmups must not race expiry.
            .with_lease_duration(std::time::Duration::from_secs(3600)),
        2,
        64,
    )
    .unwrap();
    let job = cluster.client().unwrap().register_job("bench").unwrap();

    let mut group = c.benchmark_group("queue_file_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));

    let q = job.open_queue("q", &[]).unwrap();
    let item = vec![0x11u8; 1024];
    group.throughput(criterion::Throughput::Bytes(1024));
    group.bench_function("enqueue_dequeue_1KB", |b| {
        b.iter(|| {
            q.enqueue(black_box(&item)).unwrap();
            q.dequeue().unwrap()
        })
    });

    // Appends grow the file without bound; rotate to a fresh file every
    // 200k appends (~200 MB) and release the old one so the bench never
    // exhausts cluster capacity.
    let file = std::cell::RefCell::new(job.open_file("f-0", &[]).unwrap());
    let count = std::cell::Cell::new(0u64);
    let generation = std::cell::Cell::new(0u32);
    group.bench_function("file_append_1KB", |b| {
        b.iter(|| {
            let n = count.get() + 1;
            count.set(n);
            if n.is_multiple_of(200_000) {
                let g = generation.get() + 1;
                generation.set(g);
                *file.borrow_mut() = job.open_file(&format!("f-{g}"), &[]).unwrap();
                job.remove_addr_prefix(&format!("f-{}", g - 1)).ok();
            }
            file.borrow().append(black_box(&item)).unwrap()
        })
    });
    let reader = file.borrow();
    let len = reader.size().unwrap().min(64 * 1024);
    group.bench_function("file_read_64KB", |b| {
        b.iter(|| reader.read_at(0, black_box(len)).unwrap())
    });
    drop(reader);
    group.finish();
}

criterion_group!(benches, bench_queue_file);
criterion_main!(benches);
