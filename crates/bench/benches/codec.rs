//! Criterion micro-bench: wire-codec encode/decode throughput (the
//! RPC-layer optimization of §4.2.2 depends on cheap serialization).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jiffy_common::{BlockId, TenantId};
use jiffy_proto::{from_bytes, to_bytes, DataRequest, DsOp, Envelope};

fn envelope(value_len: usize) -> Envelope {
    Envelope::DataReq {
        id: 42,
        req: DataRequest::Op {
            block: BlockId(7),
            op: DsOp::Put {
                key: b"benchmark-key".as_slice().into(),
                value: vec![0xAB; value_len].into(),
            },
        },
        tenant: TenantId::ANONYMOUS,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    for len in [64usize, 4096, 256 * 1024] {
        let env = envelope(len);
        let bytes = to_bytes(&env).unwrap();
        group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode_{len}B_value"), |b| {
            b.iter(|| to_bytes(black_box(&env)).unwrap())
        });
        group.bench_function(format!("decode_{len}B_value"), |b| {
            b.iter(|| from_bytes::<Envelope>(black_box(&bytes)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
