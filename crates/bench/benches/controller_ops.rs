//! Criterion micro-bench: controller operations (the Fig. 12 hot path —
//! lease renewal with DAG propagation, address resolution, prefix
//! lifecycle).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jiffy_common::clock::SystemClock;
use jiffy_common::JiffyConfig;
use jiffy_controller::{Controller, NoopDataPlane};
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{ControlRequest, ControlResponse};
use jiffy_sync::Arc;

fn bench_controller(c: &mut Criterion) {
    let ctrl = Controller::new(
        JiffyConfig::default(),
        SystemClock::shared(),
        Arc::new(NoopDataPlane),
        Arc::new(MemObjectStore::new()),
    )
    .unwrap();
    ctrl.dispatch(ControlRequest::JoinServer {
        addr: "inproc:0".into(),
        capacity_blocks: 1024,
    })
    .unwrap();
    let job = match ctrl
        .dispatch(ControlRequest::RegisterJob { name: "b".into() })
        .unwrap()
    {
        ControlResponse::JobRegistered { job } => job,
        other => panic!("{other:?}"),
    };
    // A 16-deep chain so renewal propagation has real work to do.
    for i in 0..16 {
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: format!("t{i}"),
            parents: if i == 0 {
                vec![]
            } else {
                vec![format!("t{}", i - 1)]
            },
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
    }

    let mut group = c.benchmark_group("controller_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("renew_lease_chain16", |b| {
        b.iter(|| {
            ctrl.dispatch(black_box(ControlRequest::RenewLease {
                job,
                name: "t8".into(),
            }))
            .unwrap()
        })
    });
    group.bench_function("resolve_prefix", |b| {
        b.iter(|| {
            ctrl.dispatch(black_box(ControlRequest::ResolvePrefix {
                job,
                name: "t15".into(),
            }))
            .unwrap()
        })
    });
    group.bench_function("resolve_dotted_path", |b| {
        b.iter(|| {
            ctrl.dispatch(black_box(ControlRequest::ResolvePrefix {
                job,
                name: "t13.t14.t15".into(),
            }))
            .unwrap()
        })
    });
    let mut i = 0u64;
    group.bench_function("create_remove_prefix", |b| {
        b.iter(|| {
            i += 1;
            let name = format!("tmp{i}");
            ctrl.dispatch(ControlRequest::CreatePrefix {
                job,
                name: name.clone(),
                parents: vec![],
                ds: None,
                initial_blocks: 0,
            })
            .unwrap();
            ctrl.dispatch(ControlRequest::RemovePrefix { job, name })
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
