//! Shared helpers for the figure-regeneration harnesses.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6); DESIGN.md carries the experiment index and
//! EXPERIMENTS.md records paper-vs-measured for every run.

use std::time::Duration;

/// Computes the `p`-th percentile (0–100) of a sample set.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    samples.sort_unstable();
    let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Formats a duration compactly (µs / ms / s with 3 significant-ish
/// digits), matching the log-scale axes of the paper's plots.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Prints a CDF of `samples` at the given percentile points as aligned
/// rows, prefixed by `label`.
pub fn print_cdf(label: &str, samples: &mut [Duration]) {
    const POINTS: [f64; 7] = [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0];
    print!("{label:<28}");
    for p in POINTS {
        print!(" p{:<3}={:<9}", p as u32, fmt_dur(percentile(samples, p)));
    }
    println!();
}

/// A fixed-width horizontal bar for timeline plots.
pub fn bar(value: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((value as f64 / max as f64) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_ranks() {
        let mut v: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut v, 50.0), Duration::from_millis(51));
        assert_eq!(percentile(&mut v, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&mut v, 0.0), Duration::from_millis(1));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_dur(Duration::from_micros(250)), "250µs");
        assert_eq!(fmt_dur(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_dur(Duration::from_millis(2500)), "2.50s");
    }

    #[test]
    fn bars_scale_to_width() {
        assert_eq!(bar(50, 100, 10).chars().count(), 5);
        assert_eq!(bar(0, 100, 10), "");
        assert_eq!(bar(100, 100, 10).chars().count(), 10);
        assert_eq!(bar(1, 0, 10), "");
    }
}
