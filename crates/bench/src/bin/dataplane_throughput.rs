//! Data-plane fast-path throughput: single-op RPCs vs batched multi-op
//! RPCs over real TCP, in the spirit of Fig. 10's small-op columns.
//!
//! Runs the kv/queue/file op mix twice — once issuing one RPC per
//! operation (the pre-fast-path baseline) and once through the PR 4
//! batched client calls (`multi_put` / `multi_get` / `enqueue_batch` /
//! `write_vectored`) — and writes machine-readable before/after numbers
//! to `BENCH_dataplane.json` at the repo root (ops/s plus p50/p99 call
//! latency in µs).
//!
//! Values are 256 B ("small op" per the paper's Fig. 10 hinge point);
//! transport is real loopback TCP so framing, corked writes and the
//! waiter table are all on the measured path.
//!
//! Run: `cargo run --release -p jiffy-bench --bin dataplane_throughput`
//! Set `JIFFY_BENCH_QUICK=1` for a fast smoke run (reduced op counts).

use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_bench::{fmt_dur, percentile};

/// Ops per workload phase (divided by 20 in quick mode).
const OPS: usize = 20_000;
/// Multi-op batch size for the batched phases.
const BATCH: usize = 32;
const VALUE_LEN: usize = 256;
/// Distinct KV keys (ops cycle through them).
const KEYS: usize = 1024;

struct Phase {
    workload: &'static str,
    mode: &'static str,
    ops: usize,
    elapsed: Duration,
    /// One entry per RPC-issuing client call (per op when single, per
    /// batch when batched).
    call_lat: Vec<Duration>,
}

impl Phase {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

fn quick() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Times `calls` client calls, each covering `ops_per_call` logical ops.
fn run_phase(
    workload: &'static str,
    mode: &'static str,
    calls: usize,
    ops_per_call: usize,
    mut call: impl FnMut(usize),
) -> Phase {
    let mut call_lat = Vec::with_capacity(calls);
    let t0 = Instant::now();
    for c in 0..calls {
        let s = Instant::now();
        call(c);
        call_lat.push(s.elapsed());
    }
    Phase {
        workload,
        mode,
        ops: calls * ops_per_call,
        elapsed: t0.elapsed(),
        call_lat,
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("key-{:08}", i % KEYS).into_bytes()
}

fn main() {
    let ops = if quick() { OPS / 20 } else { OPS };
    let value = vec![0xA5u8; VALUE_LEN];
    // Long lease: the bench issues no renewals, and over_tcp runs the
    // expiry worker — a default (1 s) lease would reclaim the
    // structures mid-measurement.
    let cfg = JiffyConfig::default().with_lease_duration(Duration::from_secs(3600));
    let cluster = JiffyCluster::over_tcp(cfg, 2, 24).unwrap();
    let job = cluster.client().unwrap().register_job("dataplane").unwrap();
    let kv = job.open_kv("bench", &[], 2).unwrap();
    let q = job.open_queue("bench-q", &[]).unwrap();
    let file = job.open_file("bench-f", &[]).unwrap();

    // Warm up connections and fill the key space.
    for i in 0..KEYS {
        kv.put(&key(i), &value).unwrap();
    }

    let mut phases = Vec::new();

    // --- KV put ---
    phases.push(run_phase("kv_put", "single", ops, 1, |i| {
        kv.put(&key(i), &value).unwrap();
    }));
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..BATCH).map(|j| (key(j), value.clone())).collect();
    phases.push(run_phase("kv_put", "batched", ops / BATCH, BATCH, |c| {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .enumerate()
            .map(|(j, (_, v))| (key(c * BATCH + j), v.clone()))
            .collect();
        kv.multi_put(&pairs).unwrap();
    }));

    // --- KV get ---
    phases.push(run_phase("kv_get", "single", ops, 1, |i| {
        assert!(kv.get(&key(i)).unwrap().is_some());
    }));
    phases.push(run_phase("kv_get", "batched", ops / BATCH, BATCH, |c| {
        let keys: Vec<Vec<u8>> = (0..BATCH).map(|j| key(c * BATCH + j)).collect();
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
    }));

    // --- Queue enqueue ---
    phases.push(run_phase("queue_enqueue", "single", ops, 1, |_| {
        q.enqueue(&value).unwrap();
    }));
    phases.push(run_phase(
        "queue_enqueue",
        "batched",
        ops / BATCH,
        BATCH,
        |_| {
            let items: Vec<&[u8]> = (0..BATCH).map(|_| value.as_slice()).collect();
            q.enqueue_batch(&items).unwrap();
        },
    ));

    // --- File write ---
    phases.push(run_phase("file_write", "single", ops, 1, |_| {
        file.append(&value).unwrap();
    }));
    let mut offset = file.size().unwrap();
    phases.push(run_phase(
        "file_write",
        "batched",
        ops / BATCH,
        BATCH,
        |_| {
            let bufs: Vec<&[u8]> = (0..BATCH).map(|_| value.as_slice()).collect();
            file.write_vectored(offset, &bufs).unwrap();
            offset += (BATCH * VALUE_LEN) as u64;
        },
    ));

    // --- Report ---
    println!(
        "=== Data-plane throughput: single vs batched (batch={BATCH}, {VALUE_LEN} B values) ==="
    );
    println!(
        "{:<16}{:<9}{:>10}{:>13}{:>12}{:>12}",
        "workload", "mode", "ops", "ops/s", "call p50", "call p99"
    );
    for p in &mut phases {
        let p50 = percentile(&mut p.call_lat, 50.0);
        let p99 = percentile(&mut p.call_lat, 99.0);
        println!(
            "{:<16}{:<9}{:>10}{:>13.0}{:>12}{:>12}",
            p.workload,
            p.mode,
            p.ops,
            p.ops_per_s(),
            fmt_dur(p50),
            fmt_dur(p99),
        );
    }
    println!();
    let mut speedups = Vec::new();
    for pair in phases.chunks(2) {
        let speedup = pair[1].ops_per_s() / pair[0].ops_per_s();
        println!(
            "{:<16} batched/single speedup: {speedup:.2}x",
            pair[0].workload
        );
        speedups.push((pair[0].workload, speedup));
    }

    // --- Machine-readable trajectory ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"dataplane_throughput\",\n");
    json.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    json.push_str(&format!("  \"value_bytes\": {VALUE_LEN},\n"));
    json.push_str(&format!("  \"quick\": {},\n", quick()));
    json.push_str("  \"transport\": \"tcp-loopback\",\n");
    json.push_str("  \"results\": [\n");
    let n_phases = phases.len();
    for (i, p) in phases.iter_mut().enumerate() {
        let p50 = percentile(&mut p.call_lat, 50.0).as_secs_f64() * 1e6;
        let p99 = percentile(&mut p.call_lat, 99.0).as_secs_f64() * 1e6;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"ops\": {}, \"ops_per_s\": {:.0}, \"call_p50_us\": {:.1}, \"call_p99_us\": {:.1}}}{}\n",
            p.workload,
            p.mode,
            p.ops,
            p.ops_per_s(),
            p50,
            p99,
            if i + 1 < n_phases { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_batched_over_single\": {\n");
    for (i, (w, s)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "    \"{w}\": {s:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    // Quick (smoke-gate) runs produce throwaway numbers; keep them out
    // of the checked-in measurement file.
    let path = if quick() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_dataplane.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json")
    };
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}");
}
