//! Data-plane fast-path throughput: single-op RPCs vs batched multi-op
//! RPCs over real TCP, in the spirit of Fig. 10's small-op columns.
//!
//! Runs the kv/queue/file op mix twice — once issuing one RPC per
//! operation (the pre-fast-path baseline) and once through the PR 4
//! batched client calls (`multi_put` / `multi_get` / `enqueue_batch` /
//! `write_vectored`) — and writes machine-readable before/after numbers
//! to `BENCH_dataplane.json` at the repo root (ops/s plus p50/p99 call
//! latency in µs).
//!
//! Values are 256 B ("small op" per the paper's Fig. 10 hinge point);
//! transport is real loopback TCP so framing, corked writes and the
//! waiter table are all on the measured path.
//!
//! A second section measures the replicated write path on a 2-replica
//! chain: identical fan-down `Replicate` calls with an untracked vs a
//! replay-tracked request id, reporting the per-write overhead of the
//! exactly-once replay window (`replicated_rid_overhead_pct_kv_put_p50`
//! in the JSON; budget < 5%).
//!
//! Run: `cargo run --release -p jiffy-bench --bin dataplane_throughput`
//! Set `JIFFY_BENCH_QUICK=1` for a fast smoke run (reduced op counts).

use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_bench::{fmt_dur, percentile};
use jiffy_common::TenantId;
use jiffy_proto::{Blob, DataRequest, DsOp, Envelope, PartitionView, Replica, CLIENT_RID_BASE};
use jiffy_rpc::ClientConn;

/// Ops per workload phase (divided by 20 in quick mode).
const OPS: usize = 20_000;
/// Multi-op batch size for the batched phases.
const BATCH: usize = 32;
const VALUE_LEN: usize = 256;
/// Distinct KV keys (ops cycle through them).
const KEYS: usize = 1024;

struct Phase {
    workload: &'static str,
    mode: &'static str,
    ops: usize,
    elapsed: Duration,
    /// One entry per RPC-issuing client call (per op when single, per
    /// batch when batched).
    call_lat: Vec<Duration>,
}

impl Phase {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

fn quick() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Times `calls` client calls, each covering `ops_per_call` logical ops.
fn run_phase(
    workload: &'static str,
    mode: &'static str,
    calls: usize,
    ops_per_call: usize,
    mut call: impl FnMut(usize),
) -> Phase {
    let mut call_lat = Vec::with_capacity(calls);
    let t0 = Instant::now();
    for c in 0..calls {
        let s = Instant::now();
        call(c);
        call_lat.push(s.elapsed());
    }
    Phase {
        workload,
        mode,
        ops: calls * ops_per_call,
        elapsed: t0.elapsed(),
        call_lat,
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("key-{:08}", i % KEYS).into_bytes()
}

fn main() {
    let ops = if quick() { OPS / 20 } else { OPS };
    let value = vec![0xA5u8; VALUE_LEN];
    // Long lease: the bench issues no renewals, and over_tcp runs the
    // expiry worker — a default (1 s) lease would reclaim the
    // structures mid-measurement.
    let cfg = JiffyConfig::default().with_lease_duration(Duration::from_secs(3600));
    let cluster = JiffyCluster::over_tcp(cfg, 2, 24).unwrap();
    let job = cluster.client().unwrap().register_job("dataplane").unwrap();
    let kv = job.open_kv("bench", &[], 2).unwrap();
    let q = job.open_queue("bench-q", &[]).unwrap();
    let file = job.open_file("bench-f", &[]).unwrap();

    // Warm up connections and fill the key space.
    for i in 0..KEYS {
        kv.put(&key(i), &value).unwrap();
    }

    let mut phases = Vec::new();

    // --- KV put ---
    phases.push(run_phase("kv_put", "single", ops, 1, |i| {
        kv.put(&key(i), &value).unwrap();
    }));
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..BATCH).map(|j| (key(j), value.clone())).collect();
    phases.push(run_phase("kv_put", "batched", ops / BATCH, BATCH, |c| {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .enumerate()
            .map(|(j, (_, v))| (key(c * BATCH + j), v.clone()))
            .collect();
        kv.multi_put(&pairs).unwrap();
    }));

    // --- KV get ---
    phases.push(run_phase("kv_get", "single", ops, 1, |i| {
        assert!(kv.get(&key(i)).unwrap().is_some());
    }));
    phases.push(run_phase("kv_get", "batched", ops / BATCH, BATCH, |c| {
        let keys: Vec<Vec<u8>> = (0..BATCH).map(|j| key(c * BATCH + j)).collect();
        let got = kv.multi_get(&keys).unwrap();
        assert!(got.iter().all(Option::is_some));
    }));

    // --- Queue enqueue ---
    phases.push(run_phase("queue_enqueue", "single", ops, 1, |_| {
        q.enqueue(&value).unwrap();
    }));
    phases.push(run_phase(
        "queue_enqueue",
        "batched",
        ops / BATCH,
        BATCH,
        |_| {
            let items: Vec<&[u8]> = (0..BATCH).map(|_| value.as_slice()).collect();
            q.enqueue_batch(&items).unwrap();
        },
    ));

    // --- File write ---
    phases.push(run_phase("file_write", "single", ops, 1, |_| {
        file.append(&value).unwrap();
    }));
    let mut offset = file.size().unwrap();
    phases.push(run_phase(
        "file_write",
        "batched",
        ops / BATCH,
        BATCH,
        |_| {
            let bufs: Vec<&[u8]> = (0..BATCH).map(|_| value.as_slice()).collect();
            file.write_vectored(offset, &bufs).unwrap();
            offset += (BATCH * VALUE_LEN) as u64;
        },
    ));

    // --- Replicated KV put: fan-down rid overhead ---
    // A second cluster with a 2-replica chain. Both phases issue the
    // same raw `Replicate` envelopes straight at each key's chain head;
    // the ONLY difference is the request id. A sub-client-range rid is
    // fanned down but never recorded (the pre-replay-window fan-down
    // path), while a client-range rid is recorded in every replica's
    // replay window (DESIGN.md §16). The p50 delta is therefore exactly
    // the per-write cost of exactly-once across head failure.
    let rep_cfg = JiffyConfig::default()
        .with_lease_duration(Duration::from_secs(3600))
        .with_chain_length(2);
    let rep_cluster = JiffyCluster::over_tcp(rep_cfg, 2, 24).unwrap();
    let rep_job = rep_cluster
        .client()
        .unwrap()
        .register_job("dataplane-rep")
        .unwrap();
    let rep_kv = rep_job.open_kv("bench-rep", &[], 2).unwrap();
    for i in 0..KEYS {
        rep_kv.put(&key(i), &value).unwrap();
    }
    let view = rep_job.resolve_fresh("bench-rep").unwrap();
    let Some(PartitionView::Kv { num_slots, slots }) = view.partition else {
        panic!("kv prefix must resolve to a kv partition");
    };
    // Pre-route every key to its chain head so routing cost is off the
    // measured path for both phases.
    let mut conns: Vec<(String, ClientConn)> = Vec::new();
    let routes: Vec<(usize, jiffy_common::BlockId, Vec<Replica>)> = (0..KEYS)
        .map(|i| {
            let slot = jiffy_ds::kv_slot(&key(i), num_slots);
            let range = slots
                .iter()
                .find(|r| r.contains(slot))
                .expect("slot covered");
            let head = range.location.head();
            let ci = conns
                .iter()
                .position(|(a, _)| *a == head.addr)
                .unwrap_or_else(|| {
                    let conn = rep_cluster.fabric().connect(&head.addr).unwrap();
                    conns.push((head.addr.clone(), conn));
                    conns.len() - 1
                });
            (ci, head.block, range.location.chain[1..].to_vec())
        })
        .collect();
    let raw_put = |rid: u64, i: usize| {
        let (ci, block, downstream) = &routes[i % KEYS];
        let resp = conns[*ci]
            .1
            .call(Envelope::DataReq {
                id: rid,
                req: DataRequest::Replicate {
                    block: *block,
                    op: DsOp::Put {
                        key: Blob::new(key(i)),
                        value: Blob::new(value.clone()),
                    },
                    downstream: downstream.clone(),
                    rid,
                },
                tenant: TenantId::ANONYMOUS,
            })
            .unwrap();
        assert!(matches!(resp, Envelope::DataResp { resp: Ok(_), .. }));
    };
    // Interleave the two modes in alternating rounds so clock drift,
    // allocator state and TCP warmth bias neither side; the overhead
    // estimate below pairs each round's p50s and takes the median
    // delta, which cancels slow drift and discards outlier rounds.
    let rounds = 10;
    let per_round = (ops / rounds).max(1);
    let mut untracked = Phase {
        workload: "kv_put_replicated",
        mode: "untracked",
        ops: rounds * per_round,
        elapsed: Duration::ZERO,
        call_lat: Vec::with_capacity(rounds * per_round),
    };
    let mut tracked = Phase {
        workload: "kv_put_replicated",
        mode: "tracked",
        ops: rounds * per_round,
        elapsed: Duration::ZERO,
        call_lat: Vec::with_capacity(rounds * per_round),
    };
    for r in 0..rounds {
        for (phase, rid_base) in [
            // Offset the tracked rids past every rid the warm-up
            // consumed so no put is (cheaply) answered from a
            // replay-window hit.
            (&mut untracked, 1),
            (&mut tracked, CLIENT_RID_BASE + (1 << 30)),
        ] {
            let t0 = Instant::now();
            for c in 0..per_round {
                let i = r * per_round + c;
                let s = Instant::now();
                raw_put(rid_base + i as u64, i);
                phase.call_lat.push(s.elapsed());
            }
            phase.elapsed += t0.elapsed();
        }
    }
    let mut rep_phases = [untracked, tracked];
    let rid_overhead_pct = {
        let mut deltas: Vec<f64> = (0..rounds)
            .map(|r| {
                let lo = r * per_round;
                let hi = lo + per_round;
                let mut u = rep_phases[0].call_lat[lo..hi].to_vec();
                let mut t = rep_phases[1].call_lat[lo..hi].to_vec();
                let before = percentile(&mut u, 50.0).as_secs_f64();
                let after = percentile(&mut t, 50.0).as_secs_f64();
                (after - before) / before * 100.0
            })
            .collect();
        deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (deltas[rounds / 2 - 1] + deltas[rounds / 2]) / 2.0
    };

    // --- Report ---
    println!(
        "=== Data-plane throughput: single vs batched (batch={BATCH}, {VALUE_LEN} B values) ==="
    );
    println!(
        "{:<16}{:<9}{:>10}{:>13}{:>12}{:>12}",
        "workload", "mode", "ops", "ops/s", "call p50", "call p99"
    );
    for p in phases.iter_mut().chain(rep_phases.iter_mut()) {
        let p50 = percentile(&mut p.call_lat, 50.0);
        let p99 = percentile(&mut p.call_lat, 99.0);
        println!(
            "{:<16}{:<9}{:>10}{:>13.0}{:>12}{:>12}",
            p.workload,
            p.mode,
            p.ops,
            p.ops_per_s(),
            fmt_dur(p50),
            fmt_dur(p99),
        );
    }
    println!();
    let mut speedups = Vec::new();
    for pair in phases.chunks(2) {
        let speedup = pair[1].ops_per_s() / pair[0].ops_per_s();
        println!(
            "{:<16} batched/single speedup: {speedup:.2}x",
            pair[0].workload
        );
        speedups.push((pair[0].workload, speedup));
    }
    println!(
        "kv_put_replicated  fan-down rid overhead on p50: {rid_overhead_pct:+.1}% (budget < 5%)"
    );

    // --- Machine-readable trajectory ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"dataplane_throughput\",\n");
    json.push_str(&format!("  \"batch_size\": {BATCH},\n"));
    json.push_str(&format!("  \"value_bytes\": {VALUE_LEN},\n"));
    json.push_str(&format!("  \"quick\": {},\n", quick()));
    json.push_str("  \"transport\": \"tcp-loopback\",\n");
    json.push_str("  \"results\": [\n");
    let n_phases = phases.len() + rep_phases.len();
    for (i, p) in phases.iter_mut().chain(rep_phases.iter_mut()).enumerate() {
        let p50 = percentile(&mut p.call_lat, 50.0).as_secs_f64() * 1e6;
        let p99 = percentile(&mut p.call_lat, 99.0).as_secs_f64() * 1e6;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"ops\": {}, \"ops_per_s\": {:.0}, \"call_p50_us\": {:.1}, \"call_p99_us\": {:.1}}}{}\n",
            p.workload,
            p.mode,
            p.ops,
            p.ops_per_s(),
            p50,
            p99,
            if i + 1 < n_phases { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    // Replicated writes issue identical Replicate envelopes with and
    // without a replay-tracked rid; the p50 delta is the price of the
    // exactly-once window (budget: < 5%).
    json.push_str(&format!(
        "  \"replicated_rid_overhead_pct_kv_put_p50\": {rid_overhead_pct:.2},\n"
    ));
    json.push_str("  \"speedup_batched_over_single\": {\n");
    for (i, (w, s)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "    \"{w}\": {s:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    // Quick (smoke-gate) runs produce throwaway numbers; keep them out
    // of the checked-in measurement file.
    let path = if quick() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_dataplane.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json")
    };
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}");
}
