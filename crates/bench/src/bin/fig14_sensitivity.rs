//! Fig. 14 — sensitivity analysis on the file data structure under the
//! Snowflake-derived trace: (a) block size, (b) lease duration,
//! (c) high repartition threshold. Each run replays the same virtual-
//! time trace on the real system and reports the used-vs-allocated
//! timeline summary (the paper's green/red areas).
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig14_sensitivity [block-size|lease|threshold]`

use std::time::Duration;

use jiffy::{DsType, JiffyConfig};
use jiffy_sim::lifetime::{run, LifetimeConfig};

fn base_config() -> LifetimeConfig {
    LifetimeConfig {
        ds: DsType::File,
        // Default sweep point: 16 KB blocks (stands in for the paper's
        // 128 MB at our scaled data sizes), 1 s lease, 95 % threshold.
        jiffy: JiffyConfig::for_testing().with_block_size(16 * 1024),
        blocks: 2048,
        ticks: 60,
        tick: Duration::from_secs(60),
        target_peak_bytes: 2 << 20,
        seed: 0x000F_1614,
    }
}

fn report(label: &str, cfg: &LifetimeConfig) {
    let out = run(cfg).expect("sensitivity run");
    println!(
        "{label:<24} util {:>5.1}%  peak used {:>9}  peak alloc {:>9}  splits {:>4}  expired {:>3}",
        out.avg_utilization() * 100.0,
        out.peak_used(),
        out.peak_allocated(),
        out.splits,
        out.leases_expired
    );
}

fn sweep_block_size() {
    println!("=== Fig. 14(a): block size (paper sweeps 32-512 MB at production scale; ===");
    println!("===              we sweep the same 16x range at our scaled data sizes) ===");
    for kb in [16usize, 32, 64, 128, 256] {
        let mut cfg = base_config();
        cfg.jiffy = cfg.jiffy.with_block_size(kb * 1024);
        // Same byte capacity across points.
        cfg.blocks = (32 * 1024 / kb) as u32;
        report(&format!("block size = {kb} KB"), &cfg);
    }
    println!("(larger blocks -> more allocated-but-unused capacity -> lower utilization)\n");
}

fn sweep_lease() {
    println!("=== Fig. 14(b): lease duration (paper sweeps 0.25-64 s of real time; the ===");
    println!("===             sweep is in units of the workload's consumption cadence) ===");
    // The tick is one virtual minute; leases are swept relative to it
    // exactly as the paper sweeps leases relative to its (real-time)
    // renewal cadence.
    for (label, lease) in [
        ("0.25 ticks", Duration::from_secs(15)),
        ("1 tick", Duration::from_secs(60)),
        ("4 ticks", Duration::from_secs(240)),
        ("16 ticks", Duration::from_secs(960)),
        ("64 ticks", Duration::from_secs(3840)),
    ] {
        let mut cfg = base_config();
        cfg.jiffy = cfg.jiffy.with_lease_duration(lease);
        report(&format!("lease = {label}"), &cfg);
    }
    println!("(longer leases keep dead prefixes allocated -> lower utilization)\n");
}

fn sweep_threshold() {
    println!("=== Fig. 14(c): high repartition threshold ===");
    for pct in [99u32, 95, 90, 80, 60] {
        let mut cfg = base_config();
        cfg.jiffy = cfg.jiffy.with_thresholds(0.05, pct as f64 / 100.0);
        report(&format!("threshold = {pct}%"), &cfg);
    }
    println!("(lower thresholds allocate new blocks prematurely -> lower utilization)");
}

fn main() {
    let which = std::env::args().nth(1);
    match which.as_deref() {
        Some("block-size") => sweep_block_size(),
        Some("lease") => sweep_lease(),
        Some("threshold") => sweep_threshold(),
        _ => {
            sweep_block_size();
            sweep_lease();
            sweep_threshold();
        }
    }
}
