//! Multi-tenant QoS noisy-neighbor scenario: a victim tenant's latency
//! with and without admission control while an aggressor tenant hammers
//! the same cluster (the paper's Fig. 1 motivation — static partitioning
//! à la ElastiCache avoids interference by overprovisioning; Jiffy's QoS
//! layer has to earn the same isolation on shared hardware).
//!
//! Three scenarios, each on a fresh two-server TCP cluster:
//!
//! 1. `isolated` — the victim alone: the baseline its p99 is judged
//!    against.
//! 2. `contended_qos_off` — aggressor threads run full tilt with QoS
//!    disabled; the victim queues behind them on the shared transport
//!    and server locks.
//! 3. `contended_qos_on` — same aggressor load, but QoS is enabled and
//!    the aggressor tenant is pinned to a tight op-rate; its clients
//!    spend most of their time in throttle backoff and the victim's
//!    latency recovers.
//!
//! The victim's p50/p99 per scenario, the aggressor's achieved op count,
//! and the server-side `TenantStats` throttle counters are printed and
//! written to `BENCH_qos.json` at the repo root. The headline number is
//! `p99_ratio_qos_on` = victim p99 contended-with-QoS over isolated —
//! the QoS layer's job is to keep it near 1 (the acceptance bar is 2×)
//! when `p99_ratio_qos_off` is far above it.
//!
//! Run: `cargo run --release -p jiffy-bench --bin noisy_neighbor`
//! Set `JIFFY_BENCH_QUICK=1` for a fast smoke run (reduced op counts).

use std::time::{Duration, Instant};

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_bench::{fmt_dur, percentile};
use jiffy_common::{QosConfig, TenantId};

const VICTIM: TenantId = TenantId(1);
const AGGRESSOR: TenantId = TenantId(2);

/// Victim ops per scenario (divided by 10 in quick mode).
const VICTIM_OPS: usize = 16_000;
/// The victim issues ops at this steady rate (open-loop, so queueing
/// delay shows up as latency instead of silently shrinking the
/// denominator) — well under the cluster's capacity, so its latency
/// in isolation is flat.
const VICTIM_RATE_PER_SEC: u64 = 5_000;
/// Full-speed aggressor client threads.
const AGGRESSOR_THREADS: usize = 2;
/// Aggressor op-rate cap in the QoS-on scenario (per server; the
/// uncapped aggressor manages tens of thousands of ops/s).
const AGGRESSOR_OPS_PER_SEC: u64 = 1_000;
const VALUE_LEN: usize = 256;
/// Aggressor ops carry fat values: per-op server cost (memcpy, framing)
/// dwarfs the victim's small ops, which is what makes it a *noisy*
/// neighbor rather than just another tenant.
const AGGRESSOR_VALUE_LEN: usize = 4096;
/// Repetitions per scenario (median p99 wins): tail latency on a small
/// shared box is scheduler-noisy, and one unlucky timeslice shouldn't
/// decide the headline ratio. Quick mode runs each scenario once.
const REPS: usize = 5;
const KEYS: usize = 512;

fn quick() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

struct Scenario {
    name: &'static str,
    victim_lat: Vec<Duration>,
    victim_elapsed: Duration,
    aggressor_ops: u64,
    aggressor_throttled: u64,
}

impl Scenario {
    fn victim_ops_per_s(&self) -> f64 {
        self.victim_lat.len() as f64 / self.victim_elapsed.as_secs_f64()
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("key-{:08}", i % KEYS).into_bytes()
}

/// Runs one scenario on a fresh cluster: the victim's rate-paced
/// put/get mix timed per op, with `aggressors` full-speed writer threads
/// (0 for the isolated baseline) racing it until the victim finishes.
fn run_scenario(
    name: &'static str,
    qos: QosConfig,
    aggressors: usize,
    cap_aggressor: bool,
    victim_ops: usize,
) -> Scenario {
    // Long lease: the bench issues no renewals, and over_tcp runs the
    // expiry worker — a default (1 s) lease would reclaim the
    // structures mid-measurement.
    let cfg = JiffyConfig::default()
        .with_lease_duration(Duration::from_secs(3600))
        .with_qos(qos);
    let qos_enabled = cfg.qos.enabled;
    let cluster = JiffyCluster::over_tcp(cfg, 2, 24).unwrap();
    if cap_aggressor {
        cluster
            .set_tenant_share(AGGRESSOR, 1, 0, AGGRESSOR_OPS_PER_SEC, 0)
            .unwrap();
    }

    // Every tenant on its own fabric (own TCP connections), as separate
    // tenant processes would be — contention is server-side, not
    // head-of-line blocking on a shared client session.
    let victim_job = cluster
        .isolated_tenant_client(VICTIM)
        .unwrap()
        .register_job("victim")
        .unwrap();
    let victim_kv = victim_job.open_kv("v", &[], 2).unwrap();
    let value = vec![0xA5u8; VALUE_LEN];
    for i in 0..KEYS {
        victim_kv.put(&key(i), &value).unwrap();
    }

    let stop = AtomicBool::new(false);
    let aggressor_ops = AtomicU64::new(0);
    let mut victim_lat = Vec::with_capacity(victim_ops);
    let mut victim_elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        for t in 0..aggressors {
            let agg_job = cluster
                .isolated_tenant_client(AGGRESSOR)
                .unwrap()
                .register_job(&format!("agg-{t}"))
                .unwrap();
            let agg_kv = agg_job.open_kv("a", &[], 2).unwrap();
            let (stop, ops) = (&stop, &aggressor_ops);
            s.spawn(move || {
                let fat = vec![0x5Au8; AGGRESSOR_VALUE_LEN];
                let mut i = t * KEYS;
                while !stop.load(Ordering::Relaxed) {
                    agg_kv.put(&key(i), &fat).unwrap();
                    ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // Let the aggressors reach steady state before measuring.
        if aggressors > 0 {
            std::thread::sleep(Duration::from_millis(300));
        }
        let tick = Duration::from_nanos(1_000_000_000 / VICTIM_RATE_PER_SEC);
        let t0 = Instant::now();
        for i in 0..victim_ops {
            // Open-loop pacing: each op has a schedule slot; falling
            // behind doesn't stretch the schedule, so queueing during a
            // contended burst is charged to the ops it delays.
            let slot = t0 + tick * i as u32;
            if let Some(wait) = slot.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let s = Instant::now();
            if i % 2 == 0 {
                victim_kv.put(&key(i), &value).unwrap();
            } else {
                assert!(victim_kv.get(&key(i)).unwrap().is_some());
            }
            victim_lat.push(s.elapsed());
        }
        victim_elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
    });

    // Throttle counters reach the controller with the next heartbeats.
    let aggressor_throttled = if qos_enabled {
        std::thread::sleep(Duration::from_millis(2_200));
        cluster
            .tenant_stats()
            .unwrap()
            .iter()
            .find(|e| e.tenant == AGGRESSOR)
            .map_or(0, |e| e.ops_throttled)
    } else {
        0
    };

    Scenario {
        name,
        victim_lat,
        victim_elapsed,
        aggressor_ops: aggressor_ops.load(Ordering::Relaxed),
        aggressor_throttled,
    }
}

/// Runs a scenario `reps` times on fresh clusters and keeps the rep
/// with the median victim p99.
fn run_median(
    name: &'static str,
    qos: QosConfig,
    aggressors: usize,
    cap_aggressor: bool,
    victim_ops: usize,
    reps: usize,
) -> Scenario {
    let mut runs: Vec<Scenario> = (0..reps)
        .map(|_| run_scenario(name, qos.clone(), aggressors, cap_aggressor, victim_ops))
        .collect();
    runs.sort_by_key(|sc| {
        let mut lat = sc.victim_lat.clone();
        percentile(&mut lat, 99.0)
    });
    runs.swap_remove(runs.len() / 2)
}

fn main() {
    let victim_ops = if quick() { VICTIM_OPS / 10 } else { VICTIM_OPS };
    let aggressors = AGGRESSOR_THREADS;
    let reps = if quick() { 1 } else { REPS };

    let mut scenarios = vec![
        run_median(
            "isolated",
            QosConfig::enabled_with_rates(0, 0),
            0,
            false,
            victim_ops,
            reps,
        ),
        run_median(
            "contended_qos_off",
            QosConfig::default(),
            aggressors,
            false,
            victim_ops,
            reps,
        ),
        run_median(
            "contended_qos_on",
            QosConfig::enabled_with_rates(0, 0),
            aggressors,
            true,
            victim_ops,
            reps,
        ),
    ];

    println!(
        "=== Noisy neighbor: victim latency vs aggressor load ({aggressors} aggressor threads, \
         {VALUE_LEN} B values) ==="
    );
    println!(
        "{:<20}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "scenario", "victim p50", "victim p99", "victim op/s", "aggr ops", "aggr throttled"
    );
    for sc in &mut scenarios {
        let p50 = percentile(&mut sc.victim_lat, 50.0);
        let p99 = percentile(&mut sc.victim_lat, 99.0);
        println!(
            "{:<20}{:>12}{:>12}{:>12.0}{:>14}{:>14}",
            sc.name,
            fmt_dur(p50),
            fmt_dur(p99),
            sc.victim_ops_per_s(),
            sc.aggressor_ops,
            sc.aggressor_throttled,
        );
    }

    let p99_us = |sc: &mut Scenario| percentile(&mut sc.victim_lat, 99.0).as_secs_f64() * 1e6;
    let base_p99 = p99_us(&mut scenarios[0]);
    let off_ratio = p99_us(&mut scenarios[1]) / base_p99;
    let on_ratio = p99_us(&mut scenarios[2]) / base_p99;
    println!();
    println!("victim p99 vs isolated: qos off {off_ratio:.2}x, qos on {on_ratio:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"noisy_neighbor\",\n");
    json.push_str(&format!("  \"quick\": {},\n", quick()));
    json.push_str("  \"transport\": \"tcp-loopback\",\n");
    json.push_str(&format!("  \"value_bytes\": {VALUE_LEN},\n"));
    json.push_str(&format!(
        "  \"victim_rate_per_sec\": {VICTIM_RATE_PER_SEC},\n"
    ));
    json.push_str(&format!("  \"aggressor_threads\": {aggressors},\n"));
    json.push_str(&format!("  \"reps_median_p99\": {reps},\n"));
    json.push_str(&format!(
        "  \"aggressor_ops_per_sec_cap\": {AGGRESSOR_OPS_PER_SEC},\n"
    ));
    json.push_str("  \"scenarios\": [\n");
    let n = scenarios.len();
    for (i, sc) in scenarios.iter_mut().enumerate() {
        let p50 = percentile(&mut sc.victim_lat, 50.0).as_secs_f64() * 1e6;
        let p99 = percentile(&mut sc.victim_lat, 99.0).as_secs_f64() * 1e6;
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"victim_p50_us\": {:.1}, \"victim_p99_us\": {:.1}, \
             \"victim_ops_per_s\": {:.0}, \"aggressor_ops\": {}, \"aggressor_throttled\": {}}}{}\n",
            sc.name,
            p50,
            p99,
            sc.victim_ops_per_s(),
            sc.aggressor_ops,
            sc.aggressor_throttled,
            if i + 1 < n { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"p99_ratio_qos_off\": {off_ratio:.2},\n  \"p99_ratio_qos_on\": {on_ratio:.2}\n"
    ));
    json.push_str("}\n");

    // Quick (smoke-gate) runs produce throwaway numbers; keep them out
    // of the checked-in measurement file.
    let path = if quick() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_qos.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qos.json")
    };
    std::fs::write(path, &json).unwrap();
    println!("\nwrote {path}");
}
