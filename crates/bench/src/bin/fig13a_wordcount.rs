//! Fig. 13(a) — streaming word-count: CDF of end-to-end latency per
//! 64-sentence batch, Jiffy vs an over-provisioned ElastiCache-style
//! cluster (same topology; ElastiCache's higher per-op RPC cost is the
//! difference, per Fig. 10). Partition tasks split sentences and route
//! words by hash to count tasks (Dataflow + Piccolo models, §6.5).
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig13a_wordcount`

use jiffy_sync::atomic::{AtomicBool, Ordering};
use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::{JiffyClient, JiffyConfig, JobClient};
use jiffy_bench::print_cdf;
use jiffy_ds::kv_slot;
use jiffy_workloads::SentenceGen;

/// Paper: 50 partition + 50 count tasks on 5 instances; scaled to this
/// single-core host.
const PARTITION_TASKS: usize = 8;
const COUNT_TASKS: usize = 8;
const BATCHES: usize = 30;
const SENTENCES_PER_BATCH: usize = 64;

/// Modeled client->store RTTs (Fig. 10): Jiffy's lean framed RPC vs
/// Redis protocol.
const JIFFY_RTT: Duration = Duration::from_micros(150);
const EC_RTT: Duration = Duration::from_micros(230);

fn run_pipeline(label: &str, rtt: Duration) -> Vec<Duration> {
    let cluster =
        JiffyCluster::in_process(JiffyConfig::default().with_block_size(1 << 20), 2, 256).unwrap();
    let delayed = cluster.fabric().clone().with_injected_rtt(rtt);
    let client = JiffyClient::connect(delayed, cluster.controller_addr()).unwrap();
    let job = client.register_job(label).unwrap();

    // Channels: per-partition-task input queues, per-count-task word
    // queues, one ack queue; counts live in a shared KV store.
    for p in 0..PARTITION_TASKS {
        job.open_queue(&format!("in-{p}"), &[]).unwrap();
    }
    for c in 0..COUNT_TASKS {
        job.open_queue(&format!("words-{c}"), &[]).unwrap();
    }
    job.open_queue("acks", &[]).unwrap();
    job.open_kv("counts", &[], 4).unwrap();
    let renew: Vec<String> = (0..PARTITION_TASKS)
        .map(|p| format!("in-{p}"))
        .chain((0..COUNT_TASKS).map(|c| format!("words-{c}")))
        .chain(["acks".to_string(), "counts".to_string()])
        .collect();
    let _renewer = job.start_lease_renewer(renew, Duration::from_millis(200));

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    // Partition tasks: sentence -> words, routed by hash.
    for p in 0..PARTITION_TASKS {
        let job: JobClient = job.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let input = job.open_queue(&format!("in-{p}"), &[]).unwrap();
            let outs: Vec<_> = (0..COUNT_TASKS)
                .map(|c| job.open_queue(&format!("words-{c}"), &[]).unwrap())
                .collect();
            let listener = input.subscribe(&[jiffy::OpKind::Enqueue]).unwrap();
            while !stop.load(Ordering::Relaxed) {
                match input.dequeue().unwrap() {
                    Some(sentence) => {
                        for w in String::from_utf8_lossy(&sentence).split_whitespace() {
                            let c = kv_slot(w.as_bytes(), COUNT_TASKS as u32) as usize;
                            outs[c].enqueue(w.as_bytes()).unwrap();
                        }
                    }
                    None => {
                        let _ = listener.get(Duration::from_millis(5));
                    }
                }
            }
        }));
    }
    // Count tasks: word -> running count in the KV store, ack per word.
    for c in 0..COUNT_TASKS {
        let job: JobClient = job.clone();
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            let input = job.open_queue(&format!("words-{c}"), &[]).unwrap();
            let acks = job.open_queue("acks", &[]).unwrap();
            let kv = job.open_kv("counts", &[], 1).unwrap();
            let listener = input.subscribe(&[jiffy::OpKind::Enqueue]).unwrap();
            let mut local: HashMap<Vec<u8>, u64> = HashMap::new();
            while !stop.load(Ordering::Relaxed) {
                match input.dequeue().unwrap() {
                    Some(word) => {
                        let n = local.entry(word.clone()).or_insert(0);
                        *n += 1;
                        kv.put(&word, &n.to_le_bytes()).unwrap();
                        acks.enqueue(b"1").unwrap();
                    }
                    None => {
                        let _ = listener.get(Duration::from_millis(5));
                    }
                }
            }
        }));
    }

    // Master: feed batches, measure end-to-end completion of each.
    let inputs: Vec<_> = (0..PARTITION_TASKS)
        .map(|p| job.open_queue(&format!("in-{p}"), &[]).unwrap())
        .collect();
    let acks = job.open_queue("acks", &[]).unwrap();
    let ack_listener = acks.subscribe(&[jiffy::OpKind::Enqueue]).unwrap();
    let mut gen = SentenceGen::new(5000, 1.05, 0x13A);
    let mut latencies = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let batch = gen.batch(SENTENCES_PER_BATCH);
        let expected: usize = batch.iter().map(|s| s.split_whitespace().count()).sum();
        let t0 = Instant::now();
        for (i, sentence) in batch.iter().enumerate() {
            inputs[i % PARTITION_TASKS]
                .enqueue(sentence.as_bytes())
                .unwrap();
        }
        let mut acked = 0usize;
        while acked < expected {
            match acks.dequeue().unwrap() {
                Some(_) => acked += 1,
                None => {
                    let _ = ack_listener.get(Duration::from_millis(2));
                }
            }
        }
        latencies.push(t0.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    latencies
}

fn main() {
    println!(
        "streaming word-count: {PARTITION_TASKS} partition + {COUNT_TASKS} count tasks, \
         {BATCHES} batches x {SENTENCES_PER_BATCH} sentences"
    );
    let mut jiffy = run_pipeline("jiffy", JIFFY_RTT);
    let mut ec = run_pipeline("elasticache", EC_RTT);
    println!("\n=== Fig. 13(a): end-to-end latency per 64-sentence batch ===");
    print_cdf("Elasticache (overprov.)", &mut ec);
    print_cdf("Jiffy", &mut jiffy);
    let med = |v: &mut Vec<Duration>| jiffy_bench::percentile(v, 50.0);
    println!(
        "\nmedian ratio EC/Jiffy: {:.2}x (paper: comparable, Jiffy >= EC)",
        med(&mut ec).as_secs_f64() / med(&mut jiffy).as_secs_f64()
    );
}
