//! Connection-count sweep over the epoll reactor transport: how many
//! concurrent client sessions one server sustains, and what concurrency
//! does to per-call latency (DESIGN.md §12).
//!
//! Ramps 10 → 10k sessions (capped by the process fd limit — each
//! loopback session costs ~4 fds in-process) against a single
//! `serve_tcp` server. At every point the sweep holds all sessions open
//! simultaneously, fans pings across them from a fixed set of driver
//! threads, and records ops/s, p50/p99 call latency, the server's peak
//! live-session count and the process thread count — the latter must
//! stay flat, since sessions no longer own threads.
//!
//! Results are spliced into `BENCH_dataplane.json` at the repo root as a
//! `"connection_sweep"` section (run `dataplane_throughput` first — it
//! rewrites the file from scratch). Set `JIFFY_BENCH_QUICK=1` for the CI
//! smoke ramp (10 → 500, throwaway output under `target/`).
//!
//! Run: `cargo run --release -p jiffy-bench --bin connection_sweep`

use std::time::{Duration, Instant};

use jiffy_bench::{fmt_dur, percentile};
use jiffy_proto::{DataRequest, DataResponse, Envelope, INTERNAL_RID};
use jiffy_rpc::tcp::{connect_tcp, serve_tcp};
use jiffy_rpc::{ClientConn, Service, SessionHandle};
use jiffy_sync::{Arc, Barrier, Mutex};

/// Driver threads fanning calls over the open sessions.
const DRIVERS: usize = 16;
/// Calls per point (split across drivers; divided by 10 in quick mode).
const CALLS: usize = 20_000;

struct Echo;

impl Service for Echo {
    fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
        match req {
            Envelope::DataReq { id, .. } => Envelope::DataResp {
                id,
                resp: Ok(DataResponse::Pong),
            },
            other => other,
        }
    }
}

fn quick() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Soft `RLIMIT_NOFILE`, read from /proc (no libc dependency).
fn fd_soft_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1024)
}

struct Point {
    sessions: usize,
    peak_live: usize,
    threads: usize,
    ops: usize,
    elapsed: Duration,
    lat: Vec<Duration>,
}

fn sweep_point(
    addr: &str,
    server: &jiffy_rpc::TcpServerHandle,
    sessions: usize,
    calls: usize,
) -> Point {
    let drivers = sessions.clamp(1, DRIVERS);
    let barrier = Arc::new(Barrier::new(drivers + 1));
    let lat = Arc::new(Mutex::new(Vec::with_capacity(calls)));
    let mut handles = Vec::new();
    for d in 0..drivers {
        let quota = sessions / drivers + usize::from(d < sessions % drivers);
        let my_calls = calls / drivers + usize::from(d < calls % drivers);
        let addr = addr.to_string();
        let barrier = barrier.clone();
        let lat = lat.clone();
        handles.push(std::thread::spawn(move || {
            let conns: Vec<ClientConn> = (0..quota)
                .map(|_| connect_tcp(&addr).expect("dial"))
                .collect();
            barrier.wait(); // all sessions of the point are open
            barrier.wait(); // measurement starts
            let mut local = Vec::with_capacity(my_calls);
            for i in 0..my_calls {
                let conn = &conns[i % conns.len().max(1)];
                let s = Instant::now();
                conn.call(Envelope::DataReq {
                    id: INTERNAL_RID,
                    req: DataRequest::Ping,
                    tenant: jiffy_common::TenantId::ANONYMOUS,
                })
                .expect("ping");
                local.push(s.elapsed());
            }
            barrier.wait(); // hold sessions open until every driver is done
            for c in &conns {
                c.close();
            }
            lat.lock().extend(local);
        }));
    }
    barrier.wait();
    // Every session is open: sample the server's view and our threads.
    let mut peak_live = 0;
    for _ in 0..10 {
        peak_live = peak_live.max(server.live_sessions());
        std::thread::sleep(Duration::from_millis(2));
    }
    let threads = thread_count();
    let t0 = Instant::now();
    barrier.wait();
    barrier.wait();
    let elapsed = t0.elapsed();
    for h in handles {
        h.join().expect("driver");
    }
    let lat = std::mem::take(&mut *lat.lock());
    Point {
        sessions,
        peak_live,
        threads,
        ops: lat.len(),
        elapsed,
        lat,
    }
}

/// Splices the sweep section into `BENCH_dataplane.json`, replacing a
/// previous sweep if present (plain string surgery; the repo vendors no
/// JSON parser).
fn splice_into_bench_json(path: &str, section: &str) -> std::io::Result<()> {
    let txt = std::fs::read_to_string(path).unwrap_or_default();
    let base = match txt.find(",\n  \"connection_sweep\"") {
        Some(i) => txt[..i].to_string(),
        None => {
            let t = txt.trim_end();
            match t.strip_suffix('}') {
                Some(body) => body.trim_end().to_string(),
                // Missing or malformed file: start a fresh document.
                None => "{\n  \"bench\": \"dataplane_throughput\"".to_string(),
            }
        }
    };
    std::fs::write(
        path,
        format!("{base},\n  \"connection_sweep\": {section}\n}}\n"),
    )
}

fn main() {
    jiffy_common::set_call_timeout(Duration::from_secs(30));
    let calls = if quick() { CALLS / 10 } else { CALLS };
    // ~4 fds per loopback session in-process; keep headroom for the
    // process's own files, reactors and wake pipes.
    let cap = ((fd_soft_limit().saturating_sub(512)) / 4).max(10);
    let targets: &[usize] = if quick() {
        &[10, 100, 500]
    } else {
        &[10, 100, 500, 1000, 2000, 5000, 10_000]
    };
    let mut points_at: Vec<usize> = targets.iter().map(|&t| t.min(cap)).collect();
    points_at.dedup();

    let mut server = serve_tcp("127.0.0.1:0", Arc::new(Echo)).expect("serve");
    let addr = server.addr().to_string();

    println!("=== Connection-count sweep (fd cap {cap}, {calls} calls/point) ===");
    println!(
        "{:>10}{:>12}{:>10}{:>13}{:>12}{:>12}",
        "sessions", "peak live", "threads", "ops/s", "p50", "p99"
    );
    let mut points = Vec::new();
    for &n in &points_at {
        let mut p = sweep_point(&addr, &server, n, calls);
        let ops_per_s = p.ops as f64 / p.elapsed.as_secs_f64();
        let p50 = percentile(&mut p.lat, 50.0);
        let p99 = percentile(&mut p.lat, 99.0);
        println!(
            "{:>10}{:>12}{:>10}{:>13.0}{:>12}{:>12}",
            p.sessions,
            p.peak_live,
            p.threads,
            ops_per_s,
            fmt_dur(p50),
            fmt_dur(p99),
        );
        points.push(p);
        // Let the previous wave's sessions finish closing so points
        // don't bleed into each other.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.live_sessions() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let stats = server.stats();
    println!(
        "\naccepted {} sessions total, {} closed, {} accept errors, {} spawn failures",
        stats.accepted, stats.sessions_closed, stats.accept_errors, stats.spawn_failures
    );

    // --- Machine-readable section ---
    let mut section = String::new();
    section.push_str("{\n");
    section.push_str(&format!("    \"quick\": {},\n", quick()));
    section.push_str(&format!("    \"fd_cap_sessions\": {cap},\n"));
    section.push_str(&format!("    \"calls_per_point\": {calls},\n"));
    section.push_str("    \"points\": [\n");
    let n_points = points.len();
    for (i, p) in points.iter_mut().enumerate() {
        let ops_per_s = p.ops as f64 / p.elapsed.as_secs_f64();
        let p50 = percentile(&mut p.lat, 50.0).as_secs_f64() * 1e6;
        let p99 = percentile(&mut p.lat, 99.0).as_secs_f64() * 1e6;
        section.push_str(&format!(
            "      {{\"sessions\": {}, \"peak_live_sessions\": {}, \"process_threads\": {}, \"ops\": {}, \"ops_per_s\": {:.0}, \"call_p50_us\": {:.1}, \"call_p99_us\": {:.1}}}{}\n",
            p.sessions,
            p.peak_live,
            p.threads,
            p.ops,
            ops_per_s,
            p50,
            p99,
            if i + 1 < n_points { "," } else { "" },
        ));
    }
    section.push_str("    ]\n  }");

    // Quick (smoke-gate) runs produce throwaway numbers; keep them out
    // of the checked-in measurement file.
    let path = if quick() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_connection_sweep.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json")
    };
    if quick() {
        std::fs::write(path, format!("{{\n  \"connection_sweep\": {section}\n}}\n")).unwrap();
    } else {
        splice_into_bench_json(path, &section).unwrap();
    }
    println!("wrote {path}");
    server.shutdown();
}
