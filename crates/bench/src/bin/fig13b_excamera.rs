//! Fig. 13(b) — ExCamera-style video encoding: serverless encode tasks
//! exchange encoder state along a chain. The baseline forwards state
//! through a central rendezvous server that tasks poll; Jiffy replaces
//! it with queues whose notifications wake the consumer the moment
//! state arrives, cutting task wait time by 10–20 % (paper §6.5).
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig13b_excamera`

use jiffy_sync::Arc;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_sync::{Condvar, Mutex};

/// Encode tasks (the paper plots 15 task IDs).
const TASKS: usize = 15;
/// Frames per task; each "encode" is a deterministic compute kernel
/// standing in for VP8 encoding of one 4K frame chunk.
const CHUNKS_PER_TASK: usize = 4;
/// Synthetic encoder state exchanged between neighbours.
const STATE_BYTES: usize = 256 * 1024;
/// Rendezvous polling interval (ExCamera's tasks long-poll the
/// rendezvous server; in-datacenter HTTP long-poll turnaround).
const POLL_INTERVAL: Duration = Duration::from_millis(4);

/// Deterministic stand-in for encoding one chunk (~15 ms of real work).
fn encode_chunk(seed: u64) -> u64 {
    let mut h = seed | 1;
    for i in 0..3_000_000u64 {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    h
}

/// Per-(sender, receiver) mailboxes on the central board.
type Board = HashMap<(usize, usize), VecDeque<Vec<u8>>>;

/// The rendezvous baseline: a central in-memory message board; senders
/// post, receivers poll every `POLL_INTERVAL`.
struct Rendezvous {
    board: Mutex<Board>,
}

impl Rendezvous {
    fn post(&self, from: usize, to: usize, state: Vec<u8>) {
        self.board
            .lock()
            .entry((from, to))
            .or_default()
            .push_back(state);
    }

    fn poll(&self, from: usize, to: usize) -> Vec<u8> {
        loop {
            if let Some(s) = self
                .board
                .lock()
                .get_mut(&(from, to))
                .and_then(VecDeque::pop_front)
            {
                return s;
            }
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

fn run_rendezvous() -> Vec<(Duration, Duration)> {
    let rv = Arc::new(Rendezvous {
        board: Mutex::new(HashMap::new()),
    });
    let barrier = Arc::new(jiffy_sync::Barrier::new(TASKS));
    let mut handles = Vec::new();
    for t in 0..TASKS {
        let rv = rv.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let t0 = Instant::now();
            let mut wait = Duration::ZERO;
            for chunk in 0..CHUNKS_PER_TASK {
                if t > 0 {
                    // Rebase on the predecessor's state before encoding
                    // this chunk (the ExCamera dependency chain).
                    let w0 = Instant::now();
                    let _state = rv.poll(t - 1, t);
                    wait += w0.elapsed();
                }
                std::hint::black_box(encode_chunk((t * 31 + chunk) as u64));
                if t + 1 < TASKS {
                    rv.post(t, t + 1, vec![0xE0; STATE_BYTES]);
                }
            }
            (t0.elapsed(), wait)
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn run_jiffy() -> Vec<(Duration, Duration)> {
    let cluster =
        JiffyCluster::in_process(JiffyConfig::default().with_block_size(4 << 20), 1, 64).unwrap();
    let job = cluster.client().unwrap().register_job("excamera").unwrap();
    for t in 1..TASKS {
        job.open_queue(&format!("state-{t}"), &[]).unwrap();
    }
    let _renewer = job.start_lease_renewer(
        (1..TASKS).map(|t| format!("state-{t}")).collect(),
        Duration::from_millis(200),
    );
    // Condvar start line so all tasks begin together.
    let start = Arc::new((Mutex::new(false), Condvar::new()));
    let mut handles = Vec::new();
    for t in 0..TASKS {
        let job = job.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || {
            let input = (t > 0).then(|| {
                let q = job.open_queue(&format!("state-{t}"), &[]).unwrap();
                let l = q.subscribe(&[jiffy::OpKind::Enqueue]).unwrap();
                (q, l)
            });
            let output =
                (t + 1 < TASKS).then(|| job.open_queue(&format!("state-{}", t + 1), &[]).unwrap());
            {
                let (lock, cv) = &*start;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            }
            let t0 = Instant::now();
            let mut wait = Duration::ZERO;
            for chunk in 0..CHUNKS_PER_TASK {
                if let Some((q, l)) = &input {
                    let w0 = Instant::now();
                    loop {
                        match q.dequeue().unwrap() {
                            Some(_state) => break,
                            None => {
                                // Notification wakes us the moment the
                                // upstream task enqueues.
                                let _ = l.get(Duration::from_millis(50));
                            }
                        }
                    }
                    wait += w0.elapsed();
                }
                std::hint::black_box(encode_chunk((t * 31 + chunk) as u64));
                if let Some(q) = &output {
                    q.enqueue(&vec![0xE0; STATE_BYTES]).unwrap();
                }
            }
            (t0.elapsed(), wait)
        }));
    }
    {
        let (lock, cv) = &*start;
        *lock.lock() = true;
        cv.notify_all();
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn main() {
    println!(
        "ExCamera: {TASKS} encode tasks x {CHUNKS_PER_TASK} chunks, {} KB state exchanged",
        STATE_BYTES / 1024
    );
    let rendezvous = run_rendezvous();
    let jiffy = run_jiffy();
    println!("\n=== Fig. 13(b): per-task latency (wait time in parentheses) ===");
    println!(
        "{:<8} {:>24} {:>24}",
        "task", "ExCamera (rendezvous)", "ExCamera+Jiffy"
    );
    let (mut sum_rv, mut sum_j) = (Duration::ZERO, Duration::ZERO);
    let (mut wait_rv, mut wait_j) = (Duration::ZERO, Duration::ZERO);
    for t in 0..TASKS {
        println!(
            "{:<8} {:>13} ({:>8}) {:>13} ({:>8})",
            t,
            jiffy_bench::fmt_dur(rendezvous[t].0),
            jiffy_bench::fmt_dur(rendezvous[t].1),
            jiffy_bench::fmt_dur(jiffy[t].0),
            jiffy_bench::fmt_dur(jiffy[t].1),
        );
        sum_rv += rendezvous[t].0;
        sum_j += jiffy[t].0;
        wait_rv += rendezvous[t].1;
        wait_j += jiffy[t].1;
    }
    let reduction = (1.0 - wait_j.as_secs_f64() / wait_rv.as_secs_f64()) * 100.0;
    println!(
        "\ntotal task time: rendezvous {} vs jiffy {} ({:.0}% lower wait time; paper: 10-20% lower)",
        jiffy_bench::fmt_dur(sum_rv),
        jiffy_bench::fmt_dur(sum_j),
        reduction
    );
}
