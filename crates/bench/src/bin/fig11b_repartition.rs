//! Fig. 11(b) — efficient elastic scaling via flexible data
//! repartitioning: (left) CDF of per-block repartition latency for the
//! three structures, measured from overload detection to repartition
//! completion; (right) latency of 100 KB KV gets before vs during
//! repartitioning (repartitioning must not block the data path).
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig11b_repartition`

use jiffy_sync::atomic::{AtomicBool, Ordering};
use jiffy_sync::Arc;
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_bench::print_cdf;
use jiffy_common::clock::SystemClock;
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{ControlRequest, PartitionView};

/// Block size for the repartition measurement: splits move half a
/// block, mirroring the paper's "repartitioning a single block moves
/// ~half the block capacity".
const BLOCK: usize = 4 << 20;

fn main() {
    // High threshold at 99 % so the harness controls when splits fire.
    let cfg = JiffyConfig::default()
        .with_block_size(BLOCK)
        .with_thresholds(0.01, 0.99);
    // No expiry worker: this harness measures repartitioning, not
    // lifetime management, and must not race lease reclamation.
    let cluster = JiffyCluster::build(
        cfg,
        2,
        32,
        SystemClock::shared(),
        Arc::new(MemObjectStore::new()),
        false,
        false,
    )
    .unwrap();
    let client = cluster.client().unwrap();
    let job = client.register_job("fig11b").unwrap();

    println!("=== Fig. 11(b) left: repartition latency per block ===");
    // KV: fill one block to ~70 %, then trigger the overload path and
    // time detection->completion (the controller orchestrates the
    // split synchronously, so the control call spans exactly that).
    let mut kv_lat = Vec::new();
    for round in 0..30 {
        let name = format!("kv-{round}");
        let kv = job.open_kv(&name, &[], 1).unwrap();
        let value = vec![0x7Fu8; 64 * 1024];
        for i in 0..44 {
            // ~2.8 MB of 64 KB values.
            kv.put(format!("k{i}").as_bytes(), &value).unwrap();
        }
        let view = job.resolve(&name).unwrap();
        let block = view.partition.unwrap().blocks()[0].id();
        let t0 = Instant::now();
        client
            .control(ControlRequest::ReportOverload { block, used: 0 })
            .unwrap();
        kv_lat.push(t0.elapsed());
        job.remove_addr_prefix(&name).unwrap();
    }
    // File and queue: metadata-only splits (no data moves).
    let mut file_lat = Vec::new();
    for round in 0..30 {
        let name = format!("f-{round}");
        let f = job.open_file(&name, &[]).unwrap();
        f.append(&vec![1u8; 1 << 20]).unwrap();
        let view = job.resolve(&name).unwrap();
        let block = view.partition.unwrap().blocks()[0].id();
        let t0 = Instant::now();
        client
            .control(ControlRequest::ReportOverload { block, used: 0 })
            .unwrap();
        file_lat.push(t0.elapsed());
        job.remove_addr_prefix(&name).unwrap();
    }
    let mut queue_lat = Vec::new();
    for round in 0..30 {
        let name = format!("q-{round}");
        let q = job.open_queue(&name, &[]).unwrap();
        q.enqueue(&vec![1u8; 1 << 20]).unwrap();
        let view = job.resolve(&name).unwrap();
        let tail = view.partition.unwrap().blocks().last().unwrap().id();
        let t0 = Instant::now();
        client
            .control(ControlRequest::ReportOverload {
                block: tail,
                used: 0,
            })
            .unwrap();
        queue_lat.push(t0.elapsed());
        job.remove_addr_prefix(&name).unwrap();
    }
    print_cdf("FIFO Queue (link tail)", &mut queue_lat);
    print_cdf("File (append chunk)", &mut file_lat);
    print_cdf("KV-Store (move 1/2 slots)", &mut kv_lat);

    println!("\n=== Fig. 11(b) right: 100 KB gets before vs during repartitioning ===");
    let kv = Arc::new(job.open_kv("live", &[], 1).unwrap());
    let value = vec![0x11u8; 100 * 1024];
    for i in 0..20 {
        kv.put(format!("hot{i}").as_bytes(), &value).unwrap();
    }
    // Baseline: gets with no repartitioning.
    let mut before = Vec::new();
    for i in 0..2000 {
        let key = format!("hot{}", i % 20);
        let t0 = Instant::now();
        kv.get(key.as_bytes()).unwrap().unwrap();
        before.push(t0.elapsed());
    }
    // During: a background thread keeps splitting/merging the store's
    // blocks while the foreground measures gets.
    let busy = Arc::new(AtomicBool::new(true));
    let splitting = Arc::new(AtomicBool::new(false));
    let b2 = busy.clone();
    let s2 = splitting.clone();
    let job2 = job.clone();
    let client2 = cluster.client().unwrap();
    let churn = std::thread::spawn(move || {
        while b2.load(Ordering::SeqCst) {
            let view = job2.resolve("live").unwrap();
            let Some(PartitionView::Kv { slots, .. }) = view.partition else {
                break;
            };
            // Split the fullest-range block, then let the underload
            // path merge things back; loop.
            let target = slots
                .iter()
                .max_by_key(|s| s.hi - s.lo)
                .map(|s| s.location.id());
            if let Some(block) = target {
                s2.store(true, Ordering::SeqCst);
                let _ = client2.control(ControlRequest::ReportOverload { block, used: 0 });
                s2.store(false, Ordering::SeqCst);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    let mut during = Vec::new();
    let t_end = Instant::now() + Duration::from_secs(2);
    let mut i = 0u64;
    while Instant::now() < t_end {
        let key = format!("hot{}", i % 20);
        i += 1;
        let t0 = Instant::now();
        kv.get(key.as_bytes()).unwrap().unwrap();
        during.push(t0.elapsed());
    }
    busy.store(false, Ordering::SeqCst);
    churn.join().unwrap();
    print_cdf("get 100KB (before)", &mut before);
    print_cdf("get 100KB (during)", &mut during);
    println!(
        "\nsplits executed during measurement: {}",
        cluster.controller().stats().splits
    );
}
