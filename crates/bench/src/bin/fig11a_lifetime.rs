//! Fig. 11(a) — fine-grained elasticity via lease-based lifetime
//! management: allocated vs used memory over time for each built-in
//! data structure (FIFO queue, file, KV-store with Zipf keys), on the
//! real system under virtual time.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig11a_lifetime`

use jiffy::DsType;
use jiffy_bench::bar;
use jiffy_sim::lifetime::{run, LifetimeConfig};

fn main() {
    for ds in [DsType::Queue, DsType::File, DsType::KvStore] {
        let cfg = LifetimeConfig {
            ds,
            ticks: 60,
            ..LifetimeConfig::default()
        };
        let out = run(&cfg).expect("lifetime run");
        let max = out.peak_allocated().max(1);
        println!("=== Fig. 11(a): {ds} — allocated (#) vs used (=) over time ===");
        println!(
            "{:<8} {:>12} {:>12}  timeline",
            "t (min)", "used", "allocated"
        );
        for s in &out.samples {
            let used_bar = bar(s.used, max, 40);
            let alloc_extra = bar(s.allocated, max, 40).chars().count() - used_bar.chars().count();
            println!(
                "{:<8} {:>12} {:>12}  {}{}",
                s.tick,
                s.used,
                s.allocated,
                "=".repeat(used_bar.chars().count()),
                "#".repeat(alloc_extra)
            );
        }
        println!(
            "avg utilization {:.1}%  splits {}  merges {}  leases expired {}\n",
            out.avg_utilization() * 100.0,
            out.splits,
            out.merges,
            out.leases_expired
        );
    }
}
