//! Fig. 1 — analysis of the (synthetic, Snowflake-calibrated) workload:
//! (a) per-tenant intermediate data over time, normalized by mean usage;
//! (b) utilization when provisioning for peak.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig01_snowflake`

use std::time::Duration;

use jiffy_workloads::{SnowflakeConfig, Trace};

fn main() {
    // Fig. 1 uses 4 tenants over a 1-hour window.
    let trace = Trace::generate(&SnowflakeConfig::small());
    let step = Duration::from_secs(60);

    println!("=== Fig. 1(a): per-tenant intermediate data, normalized by mean ===");
    println!(
        "{:<10} tenant#1   tenant#2   tenant#3   tenant#4",
        "t (min)"
    );
    let timelines: Vec<Vec<(Duration, u64)>> = (0..4)
        .map(|t| trace.tenant_demand_timeline(step, t))
        .collect();
    let means: Vec<f64> = timelines
        .iter()
        .map(|tl| tl.iter().map(|(_, b)| *b as f64).sum::<f64>() / tl.len() as f64)
        .collect();
    for i in 0..timelines[0].len() {
        print!("{i:<10}");
        for (timeline, mean) in timelines.iter().zip(&means) {
            let norm = if *mean == 0.0 {
                0.0
            } else {
                timeline[i].1 as f64 / mean
            };
            print!(" {norm:<10.3}");
        }
        println!();
    }

    println!("\n=== Fig. 1(a) summary: peak-to-average ratios ===");
    for t in 0..4 {
        println!(
            "tenant#{}: peak/avg = {:.1}x",
            t + 1,
            trace.tenant_peak_to_avg(step, t)
        );
    }

    println!("\n=== Fig. 1(b): provisioning for peak ===");
    let full = Trace::generate(&SnowflakeConfig::default());
    let per_tenant = full.mean_tenant_utilization(step);
    let aggregate = full.utilization_vs_peak_provisioning(step);
    println!("tenants: {}, jobs: {}", full.tenants, full.jobs.len());
    println!(
        "mean per-tenant utilization (paper: ~19%):          {:.1}%",
        per_tenant * 100.0
    );
    println!(
        "aggregate demand / sum of tenant peaks (paper <10%): {:.1}%",
        aggregate * 100.0
    );
    println!(
        "wasted when provisioning per-tenant peaks:           {:.1}%",
        (1.0 - aggregate) * 100.0
    );
}
