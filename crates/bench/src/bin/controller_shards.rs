//! Sharded control plane + client metadata cache (DESIGN.md §15):
//! control-plane ops/s at 1/2/4/8 controller shards, resolve latency
//! with a cold vs warm client cache, and the steady-state cache hit
//! ratio.
//!
//! Shard scaling follows the Fig. 12(b) methodology: this host has one
//! core, so each shard's throughput is measured in isolation (driving
//! real routed requests through the `ShardedController`) and the
//! aggregate is the sum — valid exactly because shards share no state.
//!
//! Results go to `BENCH_controller.json` at the repo root (or
//! `target/BENCH_controller.quick.json` when `JIFFY_BENCH_QUICK=1`, so
//! smoke runs never overwrite checked-in measurements).
//!
//! Run: `cargo run --release -p jiffy-bench --bin controller_shards`

use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy_bench::{fmt_dur, percentile};
use jiffy_common::clock::SystemClock;
use jiffy_common::{JiffyConfig, JobId};
use jiffy_controller::{NoopDataPlane, ShardedController};
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{ControlRequest, ControlResponse};
use jiffy_sync::Arc;

fn quick() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn router(shards: u32) -> ShardedController {
    ShardedController::build(
        JiffyConfig::default(),
        SystemClock::shared(),
        Arc::new(NoopDataPlane),
        Arc::new(MemObjectStore::new()),
        shards,
    )
    .unwrap()
}

fn register(sc: &ShardedController, name: &str) -> JobId {
    match sc
        .dispatch(ControlRequest::RegisterJob { name: name.into() })
        .unwrap()
    {
        ControlResponse::JobRegistered { job } => job,
        other => panic!("{other:?}"),
    }
}

/// Picks `per_shard` fresh root names that hash to `shard` and creates
/// them (each becomes its own lease root on that shard).
fn seed_shard(sc: &ShardedController, job: JobId, shard: u32, per_shard: usize) -> Vec<String> {
    let mut names = Vec::with_capacity(per_shard);
    let mut k = 0u64;
    while names.len() < per_shard {
        let name = format!("r{shard}x{k}");
        k += 1;
        if sc.route_path(job, &name) != shard {
            continue;
        }
        sc.dispatch(ControlRequest::CreatePrefix {
            job,
            name: name.clone(),
            parents: vec![],
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
        names.push(name);
    }
    names
}

/// The paper's control-plane mix (Fig. 12): mostly lease renewals plus
/// address resolution, issued through the shard router.
fn one_op(sc: &ShardedController, job: JobId, names: &[String], i: u64) {
    let name = names[(i as usize) % names.len()].clone();
    let req = match i % 4 {
        0 => ControlRequest::ResolvePrefix { job, name },
        _ => ControlRequest::RenewLease { job, name },
    };
    sc.dispatch(req).unwrap();
}

struct ScalePoint {
    shards: usize,
    per_shard: Vec<f64>,
    aggregate: f64,
}

fn measure_scaling(window: Duration) -> Vec<ScalePoint> {
    println!("=== control-plane ops/s vs shard count (routed requests) ===");
    println!(
        "{:<8} {:>16} {:>18}",
        "shards", "min per-shard", "aggregate op/s"
    );
    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let sc = router(shards as u32);
        let job = register(&sc, "load");
        let slices: Vec<Vec<String>> = (0..shards as u32)
            .map(|s| seed_shard(&sc, job, s, 4))
            .collect();
        let mut per_shard = Vec::with_capacity(shards);
        for names in &slices {
            let mut ops = 0u64;
            let t0 = Instant::now();
            while t0.elapsed() < window {
                one_op(&sc, job, names, ops);
                ops += 1;
            }
            per_shard.push(ops as f64 / t0.elapsed().as_secs_f64());
        }
        let min = per_shard.iter().copied().fold(f64::INFINITY, f64::min);
        let aggregate: f64 = per_shard.iter().sum();
        println!("{shards:<8} {min:>13.0} op/s {aggregate:>15.0}");
        points.push(ScalePoint {
            shards,
            per_shard,
            aggregate,
        });
    }
    points
}

struct CacheNumbers {
    uncached: Vec<Duration>,
    cached: Vec<Duration>,
    hit_ratio: f64,
}

fn measure_cache(samples: usize) -> CacheNumbers {
    // A real sharded cluster: 4 controller shards behind the routing
    // endpoint, clients resolving through the lease-guarded cache. The
    // long lease keeps TTL expiry out of the steady-state measurement.
    let cluster = JiffyCluster::build_with_shards(
        JiffyConfig::for_testing().with_lease_duration(Duration::from_secs(600)),
        4,
        8,
        SystemClock::shared(),
        Arc::new(MemObjectStore::new()),
        false,
        false,
        4,
    )
    .unwrap();
    let client = cluster.client().unwrap();
    let job = client.register_job("cachebench").unwrap();
    const PREFIXES: usize = 8;
    for i in 0..PREFIXES {
        job.create_addr_prefix(&format!("t{i}"), &[]).unwrap();
    }
    let cache = client.metadata_cache();

    // Cold path: every resolve bypasses and refills the cache — the
    // pre-cache behavior, one controller round-trip per lookup.
    let mut uncached = Vec::with_capacity(samples);
    for i in 0..samples {
        let t0 = Instant::now();
        job.resolve_fresh(&format!("t{}", i % PREFIXES)).unwrap();
        uncached.push(t0.elapsed());
    }

    // Warm path: steady-state resolves served from the cache.
    for i in 0..PREFIXES {
        job.resolve(&format!("t{i}")).unwrap();
    }
    let hits0 = cache.stats().hits();
    let misses0 = cache.stats().misses();
    let mut cached = Vec::with_capacity(samples);
    for i in 0..samples {
        let t0 = Instant::now();
        job.resolve(&format!("t{}", i % PREFIXES)).unwrap();
        cached.push(t0.elapsed());
    }
    let hits = cache.stats().hits() - hits0;
    let misses = cache.stats().misses() - misses0;
    let hit_ratio = hits as f64 / (hits + misses).max(1) as f64;
    CacheNumbers {
        uncached,
        cached,
        hit_ratio,
    }
}

fn main() {
    let window = if quick() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(300)
    };
    let samples = if quick() { 300 } else { 3000 };

    let points = measure_scaling(window);
    let agg1 = points
        .iter()
        .find(|p| p.shards == 1)
        .map_or(1.0, |p| p.aggregate);
    let agg4 = points
        .iter()
        .find(|p| p.shards == 4)
        .map_or(0.0, |p| p.aggregate);
    let scaling_1_to_4 = agg4 / agg1;
    println!("1 -> 4 shard scaling: {scaling_1_to_4:.2}x (target >= 2.5x)");

    println!("\n=== client resolve latency: cold vs lease-guarded cache ===");
    let mut cache = measure_cache(samples);
    let un_p50 = percentile(&mut cache.uncached, 50.0);
    let un_p99 = percentile(&mut cache.uncached, 99.0);
    let ca_p50 = percentile(&mut cache.cached, 50.0);
    let ca_p99 = percentile(&mut cache.cached, 99.0);
    println!(
        "uncached (every resolve -> controller): p50={} p99={}",
        fmt_dur(un_p50),
        fmt_dur(un_p99)
    );
    println!(
        "cached   (steady state, {} lookups):    p50={} p99={}",
        samples,
        fmt_dur(ca_p50),
        fmt_dur(ca_p99)
    );
    println!(
        "steady-state cache hit ratio: {:.4} (target >= 0.90)",
        cache.hit_ratio
    );

    // --- Machine-readable output ---
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"controller_shards\",\n");
    json.push_str(&format!("  \"quick\": {},\n", quick()));
    json.push_str("  \"shard_scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        let per: Vec<String> = p.per_shard.iter().map(|o| format!("{o:.0}")).collect();
        json.push_str(&format!(
            "    {{\"shards\": {}, \"per_shard_ops_per_s\": [{}], \"aggregate_ops_per_s\": {:.0}}}{}\n",
            p.shards,
            per.join(", "),
            p.aggregate,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"scaling_1_to_4\": {scaling_1_to_4:.2},\n"));
    json.push_str(&format!(
        "  \"resolve\": {{\"uncached_p50_us\": {:.1}, \"uncached_p99_us\": {:.1}, \"cached_p50_us\": {:.1}, \"cached_p99_us\": {:.1}, \"samples\": {samples}}},\n",
        un_p50.as_secs_f64() * 1e6,
        un_p99.as_secs_f64() * 1e6,
        ca_p50.as_secs_f64() * 1e6,
        ca_p99.as_secs_f64() * 1e6,
    ));
    json.push_str(&format!(
        "  \"cache_hit_ratio\": {:.4}\n}}\n",
        cache.hit_ratio
    ));

    // Quick (smoke-gate) runs produce throwaway numbers; keep them out
    // of the checked-in measurement file.
    let path = if quick() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_controller.quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json")
    };
    std::fs::write(path, json).unwrap();
    println!("\nwrote {path}");
}
