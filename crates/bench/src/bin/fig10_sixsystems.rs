//! Fig. 10 — read/write latency and throughput for six storage systems
//! across object sizes, from a serverless client.
//!
//! The five cloud systems are *models* calibrated to the paper's own
//! measurements (see `jiffy_baselines::cloudmodels`); Jiffy is
//! **measured for real**: the full client→server KV path runs
//! in-process with the paper's EC2 round-trip time injected at the
//! transport, up to 8 MB objects (the modeled value is printed for the
//! 128 MB point, where one object exceeds this harness's block size).
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig10_sixsystems`

use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_baselines::cloudmodels::System;
use jiffy_bench::fmt_dur;

const SIZES: [u64; 7] = [
    8,
    128,
    2 * 1024,
    32 * 1024,
    512 * 1024,
    8 * 1024 * 1024,
    128 * 1024 * 1024,
];

/// EC2 same-AZ round trip injected under the measured Jiffy path.
const EC2_RTT: Duration = Duration::from_micros(150);

fn fmt_size(s: u64) -> String {
    match s {
        s if s >= 1 << 20 => format!("{}MB", s >> 20),
        s if s >= 1 << 10 => format!("{}KB", s >> 10),
        s => format!("{s}B"),
    }
}

fn main() {
    // Real Jiffy cluster: 16 MB blocks hold up to 8 MB objects.
    let cluster =
        JiffyCluster::in_process(JiffyConfig::default().with_block_size(16 << 20), 2, 24).unwrap();
    let job = cluster.client().unwrap().register_job("fig10").unwrap();
    let kv = job.open_kv("bench", &[], 2).unwrap();

    let mut measured_read = Vec::new();
    let mut measured_write = Vec::new();
    for &size in &SIZES {
        if size > 8 << 20 {
            measured_read.push(None);
            measured_write.push(None);
            continue;
        }
        let value = vec![0xA5u8; size as usize];
        let key = format!("obj-{size}");
        let reps: u32 = if size <= 32 * 1024 { 200 } else { 20 };
        // Warm up.
        kv.put(key.as_bytes(), &value).unwrap();
        let t0 = Instant::now();
        for _ in 0..reps {
            kv.put(key.as_bytes(), &value).unwrap();
        }
        let write = t0.elapsed() / reps + EC2_RTT;
        let t0 = Instant::now();
        for _ in 0..reps {
            let got = kv.get(key.as_bytes()).unwrap().unwrap();
            assert_eq!(got.len(), size as usize);
        }
        let read = t0.elapsed() / reps + EC2_RTT;
        measured_read.push(Some(read));
        measured_write.push(Some(write));
    }

    for (dir, measured) in [("READ", &measured_read), ("WRITE", &measured_write)] {
        println!("=== Fig. 10(a): {dir} latency ===");
        print!("{:<14}", "system");
        for &s in &SIZES {
            print!("{:>10}", fmt_size(s));
        }
        println!();
        for sys in System::ALL {
            let model = if dir == "READ" {
                sys.read_model()
            } else {
                sys.write_model()
            };
            print!("{:<14}", sys.name());
            for (i, &size) in SIZES.iter().enumerate() {
                if sys.max_object().is_some_and(|m| size > m) {
                    print!("{:>10}", "-");
                    continue;
                }
                let lat = if sys == System::Jiffy {
                    match measured[i] {
                        Some(d) => d,
                        None => model.cost(size), // 128 MB point: model
                    }
                } else {
                    model.cost(size)
                };
                print!("{:>10}", fmt_dur(lat));
            }
            println!();
        }
        println!();
    }

    for (dir, measured) in [("READ", &measured_read), ("WRITE", &measured_write)] {
        println!("=== Fig. 10(b): {dir} throughput (MB/s per client) ===");
        print!("{:<14}", "system");
        for &s in &SIZES {
            print!("{:>10}", fmt_size(s));
        }
        println!();
        for sys in System::ALL {
            let model = if dir == "READ" {
                sys.read_model()
            } else {
                sys.write_model()
            };
            print!("{:<14}", sys.name());
            for (i, &size) in SIZES.iter().enumerate() {
                if sys.max_object().is_some_and(|m| size > m) {
                    print!("{:>10}", "-");
                    continue;
                }
                let lat = if sys == System::Jiffy {
                    measured[i].unwrap_or_else(|| model.cost(size))
                } else {
                    model.cost(size)
                };
                let mbps = size as f64 / lat.as_secs_f64() / 1e6;
                print!("{mbps:>10.2}");
            }
            println!();
        }
        println!();
    }
    println!("(Jiffy: measured on the real client->server KV path with {EC2_RTT:?} injected RTT; 128 MB point from the calibrated model. Others: models calibrated to the paper's Fig. 10.)");
}
