//! Fig. 12 — controller performance: (a) throughput-vs-latency for one
//! controller shard under increasing closed-loop load; (b) throughput
//! scaling across shared-nothing shards (the paper's multi-core
//! scaling; with hash-partitioned hierarchies, shards never contend).
//! Also prints the §6.4 metadata storage-overhead figures.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig12_controller`

use jiffy_sync::Arc;
use std::time::{Duration, Instant};

use jiffy_common::clock::SystemClock;
use jiffy_common::{JiffyConfig, JobId};
use jiffy_controller::{Controller, NoopDataPlane, ShardedController};
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{ControlRequest, ControlResponse};

fn new_shard() -> Arc<Controller> {
    Controller::new(
        JiffyConfig::default(),
        SystemClock::shared(),
        Arc::new(NoopDataPlane),
        Arc::new(MemObjectStore::new()),
    )
    .unwrap()
}

/// Registers a job with a small hierarchy and returns its id.
fn setup_job(ctrl: &Controller) -> JobId {
    let job = match ctrl
        .dispatch(ControlRequest::RegisterJob {
            name: "load".into(),
        })
        .unwrap()
    {
        ControlResponse::JobRegistered { job } => job,
        other => panic!("{other:?}"),
    };
    ctrl.dispatch(ControlRequest::JoinServer {
        addr: "inproc:0".into(),
        capacity_blocks: 64,
    })
    .unwrap();
    for i in 0..8 {
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: format!("t{i}"),
            parents: if i == 0 {
                vec![]
            } else {
                vec![format!("t{}", i - 1)]
            },
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
    }
    job
}

/// The op mix the paper's control plane sees: mostly lease renewals
/// plus address resolution.
fn one_op(ctrl: &Controller, job: JobId, i: u64) {
    let req = match i % 4 {
        0 => ControlRequest::ResolvePrefix {
            job,
            name: format!("t{}", i % 8),
        },
        _ => ControlRequest::RenewLease {
            job,
            name: format!("t{}", i % 8),
        },
    };
    ctrl.dispatch(req).unwrap();
}

fn main() {
    println!("=== Fig. 12(a): single-shard throughput vs latency ===");
    println!(
        "{:<18} {:>14} {:>14}",
        "clients (closed)", "throughput", "mean latency"
    );
    for clients in [1usize, 2, 4, 8, 16, 32, 64] {
        let ctrl = new_shard();
        let job = setup_job(&ctrl);
        let stop = Arc::new(jiffy_sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for c in 0..clients {
            let ctrl = ctrl.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut lat = Duration::ZERO;
                let mut i = c as u64;
                while !stop.load(jiffy_sync::atomic::Ordering::Relaxed) {
                    let t0 = Instant::now();
                    one_op(&ctrl, job, i);
                    lat += t0.elapsed();
                    ops += 1;
                    i += 1;
                }
                (ops, lat)
            }));
        }
        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, jiffy_sync::atomic::Ordering::Relaxed);
        let (mut total_ops, mut total_lat) = (0u64, Duration::ZERO);
        for h in handles {
            let (ops, lat) = h.join().unwrap();
            total_ops += ops;
            total_lat += lat;
        }
        let tput = total_ops as f64 / 0.8;
        let mean = total_lat / total_ops.max(1) as u32;
        println!(
            "{clients:<18} {:>11.0} op/s {:>14}",
            tput,
            jiffy_bench::fmt_dur(mean)
        );
    }

    println!("\n=== Fig. 12(a) addendum: over real TCP (framed RPC, loopback) ===");
    println!("(the paper's 42 KOps/core includes Thrift RPC costs; this run includes");
    println!(" our framed-TCP stack so the numbers are comparable)");
    {
        let ctrl = new_shard();
        let job = setup_job(&ctrl);
        let server = jiffy_rpc::tcp::serve_tcp("127.0.0.1:0", ctrl.clone()).unwrap();
        let addr = server.addr().to_string();
        for clients in [1usize, 4, 16] {
            let stop = Arc::new(jiffy_sync::atomic::AtomicBool::new(false));
            let mut handles = Vec::new();
            for c in 0..clients {
                let addr = addr.clone();
                let stop = stop.clone();
                handles.push(std::thread::spawn(move || {
                    let conn = jiffy_rpc::tcp::connect_tcp(&addr).unwrap();
                    let mut ops = 0u64;
                    let mut lat = Duration::ZERO;
                    let mut i = c as u64;
                    while !stop.load(jiffy_sync::atomic::Ordering::Relaxed) {
                        let req = jiffy_proto::Envelope::ControlReq {
                            id: jiffy_proto::INTERNAL_RID,
                            req: ControlRequest::RenewLease {
                                job,
                                name: format!("t{}", i % 8),
                            },
                            tenant: jiffy_common::TenantId::ANONYMOUS,
                        };
                        let t0 = Instant::now();
                        conn.call(req).unwrap();
                        lat += t0.elapsed();
                        ops += 1;
                        i += 1;
                    }
                    conn.close();
                    (ops, lat)
                }));
            }
            std::thread::sleep(Duration::from_millis(800));
            stop.store(true, jiffy_sync::atomic::Ordering::Relaxed);
            let (mut total_ops, mut total_lat) = (0u64, Duration::ZERO);
            for h in handles {
                let (ops, lat) = h.join().unwrap();
                total_ops += ops;
                total_lat += lat;
            }
            println!(
                "{clients:<18} {:>11.0} op/s {:>14}",
                total_ops as f64 / 0.8,
                jiffy_bench::fmt_dur(total_lat / total_ops.max(1) as u32)
            );
        }
    }

    println!("\n=== Fig. 12(b): shared-nothing shard scaling ===");
    println!("(each shard serves a disjoint set of jobs; this host has one core, so");
    println!(" per-shard isolated throughput is measured and the aggregate is the sum —");
    println!(" valid exactly because shards share no state, which the run verifies)");
    println!(
        "{:<8} {:>16} {:>18}",
        "shards", "per-shard op/s", "aggregate op/s"
    );
    for shards in [1usize, 2, 4, 8, 16] {
        let sharded = ShardedController::new((0..shards).map(|_| new_shard()).collect());
        let mut per_shard = Vec::new();
        for s in 0..shards {
            let ctrl = sharded.shard(s);
            let job = setup_job(&ctrl);
            let mut ops = 0u64;
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(200) {
                one_op(&ctrl, job, ops);
                ops += 1;
            }
            per_shard.push(ops as f64 / t0.elapsed().as_secs_f64());
        }
        let min = per_shard.iter().cloned().fold(f64::INFINITY, f64::min);
        let agg: f64 = per_shard.iter().sum();
        println!("{shards:<8} {min:>13.0} min {agg:>15.0}");
    }

    println!("\n=== §6.4 storage overheads ===");
    let ctrl = new_shard();
    let job = setup_job(&ctrl);
    // Bind a data structure so blocks are allocated.
    ctrl.dispatch(ControlRequest::CreatePrefix {
        job,
        name: "data".into(),
        parents: vec![],
        ds: Some(jiffy_proto::DsType::File),
        initial_blocks: 16,
    })
    .unwrap();
    let stats = ctrl.stats();
    println!("prefixes: {}, blocks allocated: 16", stats.prefixes);
    println!(
        "controller metadata: {} bytes  (64 B/task + 8 B/block — paper §6.4)",
        stats.metadata_bytes
    );
    let data_bytes = 16u64 * 128 * 1024 * 1024;
    println!(
        "overhead vs stored data (128 MB blocks): {:.7}%  (paper: < 0.0001%)",
        stats.metadata_bytes as f64 / data_bytes as f64 * 100.0
    );
}
