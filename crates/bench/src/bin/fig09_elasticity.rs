//! Fig. 9 — benefits of fine-grained elasticity: (a) average job
//! slowdown and (b) average resource utilization as far-memory capacity
//! shrinks to a fraction of the workload's peak demand, for
//! ElastiCache-, Pocket- and Jiffy-style allocation over identical
//! modeled hardware.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig09_elasticity`

use std::time::Duration;

use jiffy_sim::{ClusterSim, SystemKind};
use jiffy_workloads::{SnowflakeConfig, Trace};

fn main() {
    // §6.1: ~50k jobs across 100 tenants over a 5 h window. Our default
    // generator config reproduces that scale.
    let trace = Trace::generate(&SnowflakeConfig::default());
    let step = Duration::from_secs(5);
    let peak = trace.peak_demand(step);
    // ElastiCache slices are provisioned proportionally to each
    // tenant's peak (what a capacity planner would do).
    let weights: Vec<f64> = (0..trace.tenants)
        .map(|t| {
            trace
                .tenant_demand_timeline(Duration::from_secs(30), t)
                .iter()
                .map(|(_, b)| *b)
                .max()
                .unwrap_or(0) as f64
        })
        .collect();
    println!(
        "trace: {} jobs, {} tenants, peak demand {:.1} GB",
        trace.jobs.len(),
        trace.tenants,
        peak as f64 / (1u64 << 30) as f64
    );

    // 128 MB blocks and 1 s leases (the paper's defaults) for Jiffy.
    let capacities = [100u64, 80, 60, 40, 20, 10];
    println!("\n=== Fig. 9(a): average job slowdown vs capacity (% of peak) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "Elasticache", "Pocket", "Jiffy"
    );
    let mut utilization_rows = Vec::new();
    let mut spill_rows = Vec::new();
    // Reference run per system: 100 % of peak.
    let refs: Vec<_> = SystemKind::ALL
        .iter()
        .map(|s| {
            ClusterSim::new(&trace, *s, peak)
                .with_tenant_weights(weights.clone())
                .run()
        })
        .collect();
    // Cross-system absolute comparison at 100 % (the paper's footnote:
    // EC was 30 % worse than Pocket, Pocket 5 % worse than Jiffy).
    let abs100: Vec<f64> = refs
        .iter()
        .map(|o| o.mean_completion().as_secs_f64())
        .collect();
    for pct in capacities {
        let cap = (peak as f64 * pct as f64 / 100.0) as u64;
        print!("{:<10}", format!("{pct}%"));
        let mut utils = Vec::new();
        let mut spills = Vec::new();
        for (i, system) in SystemKind::ALL.iter().enumerate() {
            let outcome = ClusterSim::new(&trace, *system, cap)
                .with_tenant_weights(weights.clone())
                .run();
            let slowdown = outcome.mean_slowdown_vs(&refs[i]);
            print!(" {slowdown:>11.2}x");
            utils.push(outcome.utilization() * 100.0);
            spills.push(outcome.spill_fraction * 100.0);
        }
        println!();
        utilization_rows.push((pct, utils));
        spill_rows.push((pct, spills));
    }

    println!("\n=== Fig. 9(b): average resource utilization (used / held DRAM, %) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "Elasticache", "Pocket", "Jiffy"
    );
    for (pct, utils) in &utilization_rows {
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{pct}%"),
            utils[0],
            utils[1],
            utils[2]
        );
    }

    println!("\n=== supporting: fraction of intermediate bytes spilled off DRAM (%) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "EC->S3", "Pocket->SSD", "Jiffy->SSD"
    );
    for (pct, spills) in &spill_rows {
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{pct}%"),
            spills[0],
            spills[1],
            spills[2]
        );
    }

    println!("\n=== supporting: absolute mean completion at 100% capacity ===");
    for (i, system) in SystemKind::ALL.iter().enumerate() {
        println!(
            "{:<12} {:.2}s ({:+.0}% vs Jiffy)",
            system.name(),
            abs100[i],
            (abs100[i] / abs100[2] - 1.0) * 100.0
        );
    }
}
