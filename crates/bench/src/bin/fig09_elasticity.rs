//! Fig. 9 — benefits of fine-grained elasticity: (a) average job
//! slowdown and (b) average resource utilization as far-memory capacity
//! shrinks to a fraction of the workload's peak demand, for
//! ElastiCache-, Pocket- and Jiffy-style allocation over identical
//! modeled hardware.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig09_elasticity`
//!
//! With `--live`, instead of the analytical simulator, a scaled-down
//! Snowflake trace is replayed against a **real in-process cluster**
//! with the demand-driven autoscaler running: jobs write and free
//! intermediate data through the actual client/controller/server stack
//! while the pool grows and shrinks. Prints servers-over-time and
//! allocated-vs-used so future PRs can benchmark scaling latency.
//!
//! Run: `cargo run --release -p jiffy-bench --bin fig09_elasticity -- --live`

use std::time::Duration;

use jiffy_sim::{ClusterSim, SystemKind};
use jiffy_workloads::{SnowflakeConfig, Trace};

fn main() {
    if std::env::args().any(|a| a == "--live") {
        live::run();
        return;
    }
    // §6.1: ~50k jobs across 100 tenants over a 5 h window. Our default
    // generator config reproduces that scale.
    let trace = Trace::generate(&SnowflakeConfig::default());
    let step = Duration::from_secs(5);
    let peak = trace.peak_demand(step);
    // ElastiCache slices are provisioned proportionally to each
    // tenant's peak (what a capacity planner would do).
    let weights: Vec<f64> = (0..trace.tenants)
        .map(|t| {
            trace
                .tenant_demand_timeline(Duration::from_secs(30), t)
                .iter()
                .map(|(_, b)| *b)
                .max()
                .unwrap_or(0) as f64
        })
        .collect();
    println!(
        "trace: {} jobs, {} tenants, peak demand {:.1} GB",
        trace.jobs.len(),
        trace.tenants,
        peak as f64 / (1u64 << 30) as f64
    );

    // 128 MB blocks and 1 s leases (the paper's defaults) for Jiffy.
    let capacities = [100u64, 80, 60, 40, 20, 10];
    println!("\n=== Fig. 9(a): average job slowdown vs capacity (% of peak) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "Elasticache", "Pocket", "Jiffy"
    );
    let mut utilization_rows = Vec::new();
    let mut spill_rows = Vec::new();
    // Reference run per system: 100 % of peak.
    let refs: Vec<_> = SystemKind::ALL
        .iter()
        .map(|s| {
            ClusterSim::new(&trace, *s, peak)
                .with_tenant_weights(weights.clone())
                .run()
        })
        .collect();
    // Cross-system absolute comparison at 100 % (the paper's footnote:
    // EC was 30 % worse than Pocket, Pocket 5 % worse than Jiffy).
    let abs100: Vec<f64> = refs
        .iter()
        .map(|o| o.mean_completion().as_secs_f64())
        .collect();
    for pct in capacities {
        let cap = (peak as f64 * pct as f64 / 100.0) as u64;
        print!("{:<10}", format!("{pct}%"));
        let mut utils = Vec::new();
        let mut spills = Vec::new();
        for (i, system) in SystemKind::ALL.iter().enumerate() {
            let outcome = ClusterSim::new(&trace, *system, cap)
                .with_tenant_weights(weights.clone())
                .run();
            let slowdown = outcome.mean_slowdown_vs(&refs[i]);
            print!(" {slowdown:>11.2}x");
            utils.push(outcome.utilization() * 100.0);
            spills.push(outcome.spill_fraction * 100.0);
        }
        println!();
        utilization_rows.push((pct, utils));
        spill_rows.push((pct, spills));
    }

    println!("\n=== Fig. 9(b): average resource utilization (used / held DRAM, %) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "Elasticache", "Pocket", "Jiffy"
    );
    for (pct, utils) in &utilization_rows {
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{pct}%"),
            utils[0],
            utils[1],
            utils[2]
        );
    }

    println!("\n=== supporting: fraction of intermediate bytes spilled off DRAM (%) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "capacity", "EC->S3", "Pocket->SSD", "Jiffy->SSD"
    );
    for (pct, spills) in &spill_rows {
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{pct}%"),
            spills[0],
            spills[1],
            spills[2]
        );
    }

    println!("\n=== supporting: absolute mean completion at 100% capacity ===");
    for (i, system) in SystemKind::ALL.iter().enumerate() {
        println!(
            "{:<12} {:.2}s ({:+.0}% vs Jiffy)",
            system.name(),
            abs100[i],
            (abs100[i] / abs100[2] - 1.0) * 100.0
        );
    }
}

/// `--live`: replay a scaled-down Snowflake trace against a real
/// in-process cluster with the autoscaler on.
mod live {
    use std::time::{Duration, Instant};

    use jiffy::cluster::JiffyCluster;
    use jiffy::{AutoscalerPolicy, JiffyConfig, JiffyError};
    use jiffy_client::KvClient;
    use jiffy_sync::atomic::{AtomicU64, Ordering};
    use jiffy_sync::{Arc, Mutex};
    use jiffy_workloads::{SnowflakeConfig, Trace};

    /// Virtual-to-real time compression: a 240 s trace window replays
    /// in ~10 s of wall clock.
    const COMPRESS: u32 = 24;
    /// Bytes per KV chunk written for intermediate data (block size is
    /// 8 KB below; a chunk must fit a block with headroom).
    const CHUNK: usize = 2048;
    /// Cap on chunks per stage so one log-normal outlier cannot
    /// dominate the replay.
    const MAX_STAGE_CHUNKS: u64 = 16;
    /// Admission control: serverless platforms bound concurrent task
    /// slots; without this, backpressure stretches job residency and
    /// inflates live demand far past the trace's nominal peak.
    const MAX_CONCURRENT_JOBS: u64 = 6;
    const BLOCK_SIZE: u32 = 8 * 1024;
    const INITIAL_SERVERS: usize = 2;
    const BLOCKS_PER_SERVER: u32 = 12;

    /// One sampler row: (elapsed secs, servers, held bytes, used bytes,
    /// app-level live bytes).
    type Sample = (f64, u64, u64, u64, u64);

    /// Writes (or frees) one job stage's chunks with bounded retries:
    /// `BlockFull`/`OutOfBlocks` and transient routing errors are the
    /// expected backpressure while the pool is scaling.
    fn put_retrying(
        kv: &KvClient,
        key: &[u8],
        value: &[u8],
        hard_stop: Instant,
    ) -> Result<(), JiffyError> {
        let deadline = (Instant::now() + Duration::from_millis(1500)).min(hard_stop);
        loop {
            match kv.put(key, value) {
                Ok(_) => return Ok(()),
                Err(e)
                    if Instant::now() < deadline
                        && (e.is_retryable()
                            || e.is_transport()
                            || matches!(
                                e,
                                JiffyError::BlockFull { .. } | JiffyError::OutOfBlocks
                            )) =>
                {
                    std::thread::sleep(Duration::from_millis(3));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Deletes reclaim the capacity the autoscaler watches; retry
    /// transient failures briefly so backpressure can actually drain.
    fn delete_retrying(kv: &KvClient, key: &[u8]) -> bool {
        let deadline = Instant::now() + Duration::from_millis(500);
        loop {
            match kv.delete(key) {
                Ok(_) => return true,
                Err(e) if Instant::now() < deadline && (e.is_retryable() || e.is_transport()) => {
                    std::thread::sleep(Duration::from_millis(3));
                }
                Err(_) => return false,
            }
        }
    }

    pub fn run() {
        // A trace small enough to replay in real time but bursty enough
        // to cross both autoscaler watermarks: ~40 jobs over a 240 s
        // virtual window, median ~24 KB of intermediate state per job.
        let cfg = SnowflakeConfig {
            tenants: 4,
            window: Duration::from_secs(240),
            jobs_per_tenant_hour: 400.0,
            median_job_bytes: 20.0 * 1024.0,
            job_sigma: 1.0,
            tenant_sigma: 0.8,
            ..SnowflakeConfig::default()
        };
        let trace = Trace::generate(&cfg);
        let peak = trace.peak_demand(Duration::from_secs(5));
        println!("=== Fig. 9 (live): autoscaler on a real in-process cluster ===");
        println!(
            "trace: {} jobs, {} tenants, peak demand {:.0} KB \
             (virtual window {} s, replayed at {COMPRESS}x)",
            trace.jobs.len(),
            trace.tenants,
            peak as f64 / 1024.0,
            cfg.window.as_secs()
        );

        let jcfg = JiffyConfig::for_testing().with_block_size(BLOCK_SIZE as usize);
        let mut cluster = JiffyCluster::in_process(jcfg, INITIAL_SERVERS, BLOCKS_PER_SERVER)
            .expect("in-process cluster boots");
        let policy = AutoscalerPolicy::new(0.25, 0.70, INITIAL_SERVERS, 8);
        cluster.start_elasticity(policy);
        println!(
            "cluster: {INITIAL_SERVERS} x {BLOCKS_PER_SERVER} blocks of {} KB, \
             scale up <25% free, scale down >70% free, pool {INITIAL_SERVERS}..8 servers",
            BLOCK_SIZE / 1024
        );

        let job = cluster
            .client()
            .expect("client connects")
            .register_job("fig09-live")
            .expect("job registers");
        let kv = Arc::new(job.open_kv("intermediate", &[], 1).expect("kv opens"));
        // The trace has quiet gaps longer than the testing-profile lease;
        // keep the structure alive for the whole replay.
        let _renewer =
            job.start_lease_renewer(vec!["intermediate".into()], Duration::from_millis(200));

        // Sampler: servers-over-time and allocated-vs-used, 200 ms grain.
        let app_live = Arc::new(AtomicU64::new(0));
        let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
        let sampling = Arc::new(AtomicU64::new(1));
        let sampler = {
            let controller = cluster.controller().clone();
            let app_live = app_live.clone();
            let samples = samples.clone();
            let sampling = sampling.clone();
            let start = Instant::now();
            std::thread::spawn(move || {
                while sampling.load(Ordering::SeqCst) == 1 {
                    let stats = controller.stats();
                    let used = stats.total_blocks.saturating_sub(stats.free_blocks);
                    samples.lock().push((
                        start.elapsed().as_secs_f64(),
                        stats.servers,
                        stats.total_blocks * BLOCK_SIZE as u64,
                        used * BLOCK_SIZE as u64,
                        app_live.load(Ordering::SeqCst),
                    ));
                    std::thread::sleep(Duration::from_millis(200));
                }
            })
        };

        // Replay: spawn each job's thread at its compressed arrival.
        let mut jobs: Vec<_> = trace.jobs.clone();
        jobs.sort_by_key(|j| j.arrival);
        let failures = Arc::new(AtomicU64::new(0));
        let chunk_writes = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        // Safety valve: if the pool saturates and every put is stuck in
        // backpressure, the replay still terminates.
        let hard_stop = start + Duration::from_secs(45);
        let active = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for spec in jobs {
            let at = spec.arrival / COMPRESS;
            if let Some(wait) = at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            while active.load(Ordering::SeqCst) >= MAX_CONCURRENT_JOBS && Instant::now() < hard_stop
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            active.fetch_add(1, Ordering::SeqCst);
            let active = active.clone();
            let kv = kv.clone();
            let app_live = app_live.clone();
            let failures = failures.clone();
            let chunk_writes = chunk_writes.clone();
            handles.push(std::thread::spawn(move || {
                let value = vec![0x5Au8; CHUNK];
                let mut prev: Vec<String> = Vec::new();
                for (si, stage) in spec.stages.iter().enumerate() {
                    if Instant::now() >= hard_stop {
                        break;
                    }
                    std::thread::sleep(stage.compute / COMPRESS);
                    // Stage i > 0 re-reads stage i-1's output first.
                    if let Some(k) = prev.first() {
                        let _ = kv.get(k.as_bytes());
                    }
                    let chunks = (stage.write_bytes / CHUNK as u64 + 1).min(MAX_STAGE_CHUNKS);
                    let mut written = Vec::new();
                    for c in 0..chunks {
                        let key = format!("j{}-s{si}-c{c}", spec.id);
                        match put_retrying(&kv, key.as_bytes(), &value, hard_stop) {
                            Ok(()) => {
                                app_live.fetch_add(CHUNK as u64, Ordering::SeqCst);
                                chunk_writes.fetch_add(1, Ordering::SeqCst);
                                written.push(key);
                            }
                            Err(_) => {
                                failures.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                    // A stage's output lives until the *next* stage
                    // finishes; free the previous stage now.
                    for k in prev.drain(..) {
                        if delete_retrying(&kv, k.as_bytes()) {
                            app_live.fetch_sub(CHUNK as u64, Ordering::SeqCst);
                        }
                    }
                    prev = written;
                }
                for k in prev {
                    if delete_retrying(&kv, k.as_bytes()) {
                        app_live.fetch_sub(CHUNK as u64, Ordering::SeqCst);
                    }
                }
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        // Grace period: let the autoscaler observe the drained pool and
        // retire surplus servers before the final sample.
        std::thread::sleep(Duration::from_secs(4));
        sampling.store(0, Ordering::SeqCst);
        let _ = sampler.join();
        cluster.stop_elasticity();

        println!("\n--- servers-over-time and allocated-vs-used ---");
        println!(
            "{:>7} {:>8} {:>10} {:>10} {:>13} {:>6}",
            "t(s)", "servers", "held(KB)", "used(KB)", "app-live(KB)", "util%"
        );
        for (t, servers, held, used, live) in samples.lock().iter() {
            println!(
                "{t:>7.1} {servers:>8} {:>10} {:>10} {:>13} {:>6.1}",
                held / 1024,
                used / 1024,
                live / 1024,
                if *held > 0 {
                    *used as f64 / *held as f64 * 100.0
                } else {
                    0.0
                }
            );
        }

        let stats = cluster.controller().stats();
        println!("\n--- scaling summary ---");
        println!(
            "scale-ups: {}, scale-downs: {}, blocks migrated: {}, final pool: {} servers",
            stats.scale_ups, stats.scale_downs, stats.blocks_migrated, stats.servers
        );
        println!(
            "workload: {} chunk writes, {} unrecovered errors",
            chunk_writes.load(Ordering::SeqCst),
            failures.load(Ordering::SeqCst)
        );
    }
}
