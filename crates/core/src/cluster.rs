//! Cluster bootstrap: wire a controller, memory servers, persistent
//! tier and client fabric together, in-process or over TCP — plus the
//! elastic server pool: add, drain, and kill servers at runtime, and
//! run the demand-driven autoscaler against the live pool.

use jiffy_sync::{Arc, Mutex, RwLock};

use jiffy_client::JiffyClient;
use jiffy_common::clock::{SharedClock, SystemClock};
use jiffy_common::{JiffyConfig, JiffyError, Result, ServerId, TenantId};
use jiffy_controller::{Controller, ControllerHandle, RpcDataPlane, ShardedController};
use jiffy_elastic::{AutoscalerPolicy, ServerProvider};
use jiffy_persistent::{MemObjectStore, ObjectStore};
use jiffy_proto::{ControlRequest, ControlResponse};
use jiffy_rpc::tcp::{serve_tcp, TcpServerHandle};
use jiffy_rpc::{Deduplicated, Fabric, Service};
use jiffy_server::MemoryServer;

/// The mutable part of the cluster, shared with the [`ServerProvider`]
/// the autoscaler acts through: the live server pool plus everything
/// needed to stand up (or tear down) one more server.
struct ClusterInner {
    fabric: Fabric,
    cfg: JiffyConfig,
    controller_addr: String,
    servers: RwLock<Vec<Arc<MemoryServer>>>,
    tcp: bool,
    tcp_handles: Mutex<Vec<TcpServerHandle>>,
    blocks_per_server: u32,
}

impl ClusterInner {
    /// Boots one more memory server (with `blocks` blocks), registers it
    /// with the controller, and starts its heartbeat.
    fn spawn_server(&self, blocks: u32) -> Result<ServerId> {
        let server = MemoryServer::new(
            self.cfg.clone(),
            self.fabric.clone(),
            self.controller_addr.clone(),
        );
        let server_svc = Deduplicated::shared(server.clone());
        let addr = if self.tcp {
            let handle = serve_tcp("127.0.0.1:0", server_svc)?;
            let addr = handle.addr().to_string();
            self.tcp_handles.lock().push(handle);
            addr
        } else {
            self.fabric.hub().register(server_svc)
        };
        let id = server.register(&addr, blocks)?;
        server.start_heartbeats();
        self.servers.write().push(server);
        Ok(id)
    }

    /// Removes a server from the pool and tears down its transport
    /// endpoint, so late requests fail with `Unavailable` rather than
    /// reaching a ghost.
    fn remove_server(&self, id: ServerId) -> Option<Arc<MemoryServer>> {
        let server = {
            let mut servers = self.servers.write();
            let pos = servers
                .iter()
                .position(|s| s.identity().map(|(sid, _)| sid) == Some(id))?;
            servers.remove(pos)
        };
        if let Some((_, addr)) = server.identity() {
            if self.tcp {
                self.tcp_handles.lock().retain(|h| h.addr() != addr);
            } else {
                self.fabric.hub().deregister(&addr);
            }
        }
        Some(server)
    }
}

/// [`ServerProvider`] backed by the cluster itself: scale-up boots an
/// in-process (or TCP) memory server with the cluster's default block
/// count; scale-down tears the drained server's endpoint down.
struct ClusterProvider {
    inner: Arc<ClusterInner>,
}

impl ServerProvider for ClusterProvider {
    fn provision(&self) -> Result<ServerId> {
        self.inner.spawn_server(self.inner.blocks_per_server)
    }

    fn decommission(&self, server: ServerId) -> Result<()> {
        self.inner.remove_server(server);
        Ok(())
    }
}

/// A running Jiffy cluster (controller + memory servers) plus the fabric
/// to reach it. Dropping the cluster stops its background workers.
///
/// The controller slot is swappable: [`JiffyCluster::crash_controller`]
/// tears the current instance's transport and workers down (its memory
/// state is lost, exactly like a process crash), and
/// [`JiffyCluster::restart_controller`] recovers a fresh instance from
/// the metadata journal in the persistent tier at the same address.
pub struct JiffyCluster {
    controller: RwLock<Arc<Controller>>,
    /// `Some` when the control plane is partitioned into shards; control
    /// traffic then flows through the router and individual shards can
    /// be crashed/recovered via [`JiffyCluster::crash_controller_shard`].
    sharded: Option<Arc<ShardedController>>,
    persistent: Arc<dyn ObjectStore>,
    inner: Arc<ClusterInner>,
    clock: SharedClock,
    run_expiry: bool,
    /// Per-shard expiry workers (one slot when unsharded).
    expiry: Mutex<Vec<Option<ControllerHandle>>>,
    elastic: Mutex<Option<ControllerHandle>>,
    autoscaler_policy: Mutex<Option<AutoscalerPolicy>>,
    controller_tcp: Mutex<Option<TcpServerHandle>>,
}

impl JiffyCluster {
    /// Boots an in-process cluster: `num_servers` memory servers with
    /// `blocks_per_server` blocks each, a fresh in-memory persistent
    /// tier, a system clock, and a running lease-expiry worker.
    ///
    /// # Errors
    ///
    /// Registration failures.
    pub fn in_process(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
    ) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            false,
        )
    }

    /// Boots a cluster whose controller and memory servers listen on
    /// real TCP sockets (ephemeral ports on localhost).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn over_tcp(cfg: JiffyConfig, num_servers: usize, blocks_per_server: u32) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            true,
        )
    }

    /// Fully parameterized bootstrap (custom clock, custom persistent
    /// tier, optional expiry worker, in-proc or TCP transport).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn build(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
        clock: SharedClock,
        persistent: Arc<dyn ObjectStore>,
        run_expiry_worker: bool,
        tcp: bool,
    ) -> Result<Self> {
        Self::build_with_shards(
            cfg,
            num_servers,
            blocks_per_server,
            clock,
            persistent,
            run_expiry_worker,
            tcp,
            1,
        )
    }

    /// Boots an in-process cluster whose control plane is partitioned
    /// into `shards` controller shards behind one routing endpoint
    /// (DESIGN.md §15). `shards == 1` is exactly [`Self::in_process`].
    ///
    /// # Errors
    ///
    /// Registration failures.
    pub fn in_process_sharded(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
        shards: usize,
    ) -> Result<Self> {
        Self::build_with_shards(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            false,
            shards,
        )
    }

    /// [`Self::build`] with a sharded control plane: `shards` in-process
    /// controller shards, each journaling under its own
    /// `jiffy-meta/shard-{i}/` prefix in the persistent tier, fronted by
    /// a [`ShardedController`] router at one transport address. With
    /// `shards <= 1` this is the unsharded path, byte-for-byte (single
    /// `Controller`, plain `jiffy-meta/` journal prefix).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_shards(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
        clock: SharedClock,
        persistent: Arc<dyn ObjectStore>,
        run_expiry_worker: bool,
        tcp: bool,
        shards: usize,
    ) -> Result<Self> {
        let fabric = Fabric::new();
        let dataplane = Arc::new(RpcDataPlane::new(fabric.clone()));
        let (controller, sharded) = if shards <= 1 {
            let controller =
                Controller::new(cfg.clone(), clock.clone(), dataplane, persistent.clone())?;
            (controller, None)
        } else {
            let sc = Arc::new(ShardedController::build(
                cfg.clone(),
                clock.clone(),
                dataplane,
                persistent.clone(),
                shards as u32,
            )?);
            (sc.shard(0), Some(sc))
        };
        // Services are registered behind a replay cache so that clients
        // retrying a timed-out request (same request id) never execute a
        // mutation twice.
        let controller_svc: Arc<dyn Service> = match &sharded {
            Some(sc) => Deduplicated::shared(sc.clone()),
            None => Deduplicated::shared(controller.clone()),
        };
        let mut controller_tcp = None;
        let controller_addr = if tcp {
            let handle = serve_tcp("127.0.0.1:0", controller_svc)?;
            let addr = handle.addr().to_string();
            controller_tcp = Some(handle);
            addr
        } else {
            fabric.hub().register(controller_svc)
        };
        let inner = Arc::new(ClusterInner {
            fabric,
            cfg,
            controller_addr,
            servers: RwLock::new(Vec::new()),
            tcp,
            tcp_handles: Mutex::new(Vec::new()),
            blocks_per_server,
        });
        for _ in 0..num_servers {
            inner.spawn_server(blocks_per_server)?;
        }
        let expiry = match &sharded {
            Some(sc) => (0..sc.num_shards())
                .map(|i| run_expiry_worker.then(|| sc.shard(i).start_expiry_worker()))
                .collect(),
            None => vec![run_expiry_worker.then(|| controller.start_expiry_worker())],
        };
        Ok(Self {
            controller: RwLock::new(controller),
            sharded,
            persistent,
            inner,
            clock,
            run_expiry: run_expiry_worker,
            expiry: Mutex::new(expiry),
            elastic: Mutex::new(None),
            autoscaler_policy: Mutex::new(None),
            controller_tcp: Mutex::new(controller_tcp),
        })
    }

    /// A client connected to this cluster's controller.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn client(&self) -> Result<JiffyClient> {
        JiffyClient::connect(self.inner.fabric.clone(), &self.inner.controller_addr)
    }

    /// A client whose requests are accounted to (and admission-controlled
    /// as) `tenant`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn tenant_client(&self, tenant: TenantId) -> Result<JiffyClient> {
        Ok(self.client()?.with_tenant(tenant))
    }

    /// Like [`Self::tenant_client`], but on a private transport fabric
    /// with its own connections — how real tenants (separate processes)
    /// reach the cluster, so one tenant's traffic never queues behind
    /// another's on a shared session. Only available on TCP clusters:
    /// in-process service names live in the shared fabric's hub.
    ///
    /// # Errors
    ///
    /// Transport failures, or the cluster is in-process.
    pub fn isolated_tenant_client(&self, tenant: TenantId) -> Result<JiffyClient> {
        if !self.inner.tcp {
            return Err(JiffyError::Rpc(
                "isolated_tenant_client requires a TCP cluster".into(),
            ));
        }
        let client = JiffyClient::connect(Fabric::new(), &self.inner.controller_addr)?;
        Ok(client.with_tenant(tenant))
    }

    /// Sets a tenant's fair-share weight, memory quota, and data-plane
    /// rate limits (0 = unlimited / config default for each limit). The
    /// change is journaled on the controller and pushed to every live
    /// memory server immediately (heartbeats keep refreshing it
    /// afterwards, covering servers that join later).
    ///
    /// # Errors
    ///
    /// Controller dispatch failures.
    pub fn set_tenant_share(
        &self,
        tenant: TenantId,
        share: u32,
        quota_bytes: u64,
        ops_per_sec: u64,
        bytes_per_sec: u64,
    ) -> Result<()> {
        self.dispatch_control(ControlRequest::SetTenantShare {
            tenant,
            share,
            quota_bytes,
            ops_per_sec,
            bytes_per_sec,
        })?;
        // Sharded mode fans SetTenantShare out to every shard, so any
        // shard's limits table is authoritative.
        let limits = self.controller().tenant_limits();
        for server in self.inner.servers.read().iter() {
            server.install_tenant_limits(&limits);
        }
        Ok(())
    }

    /// Per-tenant usage and load accounting, aggregated across the
    /// controller's allocation metadata and the servers' heartbeat
    /// reports.
    ///
    /// # Errors
    ///
    /// Controller dispatch failures.
    pub fn tenant_stats(&self) -> Result<Vec<jiffy_proto::TenantStatsEntry>> {
        match self.dispatch_control(ControlRequest::TenantStats)? {
            ControlResponse::TenantStatsReport(entries) => Ok(entries),
            other => Err(JiffyError::Rpc(format!(
                "unexpected tenant-stats reply: {other:?}"
            ))),
        }
    }

    /// The shared connection fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The current controller instance (for stats and direct dispatch
    /// in tests/benches). Owned, because a crash/restart cycle swaps
    /// the instance out from under the cluster. On a sharded cluster
    /// this is shard 0.
    ///
    /// # Panics
    ///
    /// On a sharded cluster whose shard 0 is currently crashed.
    pub fn controller(&self) -> Arc<Controller> {
        match &self.sharded {
            Some(sc) => sc.shard(0),
            None => self.controller.read().clone(),
        }
    }

    /// The control-plane router, when this cluster was built with
    /// [`Self::build_with_shards`] and more than one shard.
    pub fn sharded_controller(&self) -> Option<&Arc<ShardedController>> {
        self.sharded.as_ref()
    }

    /// Number of controller shards (1 for an unsharded cluster).
    pub fn controller_shards(&self) -> usize {
        self.sharded.as_ref().map_or(1, |sc| sc.num_shards())
    }

    /// Routes a control request the way client traffic is routed: via
    /// the shard router when sharded, directly otherwise.
    fn dispatch_control(&self, req: ControlRequest) -> Result<ControlResponse> {
        match &self.sharded {
            Some(sc) => sc.dispatch(req),
            None => self.controller().dispatch(req),
        }
    }

    /// The controller's transport address.
    pub fn controller_addr(&self) -> &str {
        &self.inner.controller_addr
    }

    /// A snapshot of the live memory servers (usage sampling).
    pub fn servers(&self) -> Vec<Arc<MemoryServer>> {
        self.inner.servers.read().clone()
    }

    /// The persistent tier backing flush/load and expiry.
    pub fn persistent(&self) -> &Arc<dyn ObjectStore> {
        &self.persistent
    }

    /// Total bytes of intermediate data resident in DRAM right now
    /// (the quantity Fig. 11a / Fig. 14 sample over time).
    pub fn used_bytes(&self) -> u64 {
        self.inner
            .servers
            .read()
            .iter()
            .map(|s| s.used_bytes())
            .sum()
    }

    /// Blocks currently allocated to data structures, across servers.
    pub fn allocated_blocks(&self) -> usize {
        self.inner
            .servers
            .read()
            .iter()
            .map(|s| s.allocated_blocks())
            .sum()
    }

    /// Adds one memory server (with `blocks` blocks) to the running
    /// cluster: it registers with the controller, starts heartbeating,
    /// and its blocks join the free pool immediately.
    ///
    /// # Errors
    ///
    /// Transport or registration failures.
    pub fn add_server(&self, blocks: u32) -> Result<ServerId> {
        self.inner.spawn_server(blocks)
    }

    /// Gracefully decommissions a server: the controller marks it
    /// draining, live-migrates every chain it hosts (client ops keep
    /// flowing — at worst they see retryable errors during a move),
    /// deregisters it, and this side tears the endpoint down. Returns
    /// how many physical blocks were migrated off it.
    ///
    /// # Errors
    ///
    /// Unknown server, or a migration failure (e.g. no capacity left on
    /// the remaining servers).
    pub fn drain_server(&self, server: ServerId) -> Result<u32> {
        match self.dispatch_control(ControlRequest::LeaveServer { server })? {
            ControlResponse::Drained {
                blocks_migrated, ..
            } => {
                self.inner.remove_server(server);
                Ok(blocks_migrated)
            }
            other => Err(JiffyError::Rpc(format!(
                "unexpected drain reply: {other:?}"
            ))),
        }
    }

    /// Kills a server abruptly (crash injection): its endpoint vanishes
    /// first — in-flight requests fail with `Unavailable` — and the
    /// controller then re-routes its blocks (replica promotion where a
    /// chain survives, persistent-tier reload where one was flushed).
    ///
    /// # Errors
    ///
    /// Unknown server.
    pub fn kill_server(&self, server: ServerId) -> Result<()> {
        self.inner.remove_server(server);
        match &self.sharded {
            // The failure is owned by the shard the server registered
            // with — same routing the router uses for its heartbeats.
            Some(sc) => {
                let idx = sc.shard_map().shard_of_server(server) as usize;
                sc.shard(idx).handle_server_failure(server)
            }
            None => self.controller().handle_server_failure(server),
        }
    }

    /// Installs the autoscaler (policy + cluster-backed provider) and
    /// starts the elasticity worker: every `cfg.elasticity_interval` it
    /// sweeps the failure detector and takes one scaling decision.
    pub fn start_elasticity(&mut self, policy: AutoscalerPolicy) {
        let provider = Arc::new(ClusterProvider {
            inner: self.inner.clone(),
        });
        let controller = self.controller();
        controller.set_autoscaler(policy, provider);
        *self.autoscaler_policy.lock() = Some(policy);
        *self.elastic.lock() = Some(controller.start_elasticity_worker());
    }

    /// Stops the elasticity worker (the autoscaler hooks stay installed;
    /// `Controller::run_autoscaler_once` still works manually).
    pub fn stop_elasticity(&mut self) {
        *self.elastic.lock() = None;
        *self.autoscaler_policy.lock() = None;
    }

    /// Crashes the controller: its transport endpoint vanishes (in-flight
    /// and subsequent requests fail with transport errors until a
    /// restart), its background workers stop, and its in-memory state is
    /// abandoned — exactly what a process crash loses. The metadata
    /// journal in the persistent tier is untouched; pair with
    /// [`JiffyCluster::restart_controller`].
    pub fn crash_controller(&self) {
        // Stop the workers first so nothing dispatches mid-teardown.
        for slot in self.expiry.lock().iter_mut() {
            *slot = None;
        }
        *self.elastic.lock() = None;
        if self.inner.tcp {
            // Dropping the handle closes the listener; session threads
            // die as clients evict their broken connections. Take it
            // out first and drop it after the guard: the handle's Drop
            // joins reactor threads, and that teardown must not run
            // while controller_tcp is held.
            let old = self.controller_tcp.lock().take();
            drop(old);
        } else {
            self.inner
                .fabric
                .hub()
                .deregister(&self.inner.controller_addr);
        }
    }

    /// Restarts the controller at the same address, recovering all
    /// metadata (jobs, hierarchies, leases, freelist, placement) from
    /// the journal + snapshots the crashed instance wrote. Leases are
    /// re-armed and the failure detector is re-seeded at the restart
    /// instant; servers keep heartbeating into the new instance and
    /// clients retry through the restart window transparently.
    ///
    /// # Errors
    ///
    /// Journal decode/replay failures, or (TCP mode) failure to re-bind
    /// the controller's port.
    pub fn restart_controller(&self) -> Result<()> {
        if self.sharded.is_some() {
            return Err(JiffyError::Internal(
                "sharded control plane: restart shards individually via restart_controller_shard"
                    .into(),
            ));
        }
        let controller = Controller::recover(
            self.inner.cfg.clone(),
            self.clock.clone(),
            Arc::new(RpcDataPlane::new(self.inner.fabric.clone())),
            self.persistent.clone(),
        )?;
        // Same replay-cache wrapping as the original registration —
        // though the cache itself restarts empty, so exactly-once across
        // the crash leans on idempotent handlers (DESIGN.md §11).
        let controller_svc = Deduplicated::shared(controller.clone());
        if self.inner.tcp {
            let hostport = self
                .inner
                .controller_addr
                .strip_prefix("tcp:")
                .unwrap_or(&self.inner.controller_addr)
                .to_string();
            // The old listener's sockets may linger briefly; retry the
            // bind for a bounded window.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            let handle = loop {
                match serve_tcp(&hostport, controller_svc.clone()) {
                    Ok(h) => break h,
                    Err(e) => {
                        if std::time::Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                }
            };
            // Swap under the lock, drop any stale handle after: its
            // Drop joins reactor threads (see crash_controller).
            let old = (*self.controller_tcp.lock()).replace(handle);
            drop(old);
        } else {
            self.inner
                .fabric
                .hub()
                .register_at(&self.inner.controller_addr, controller_svc)?;
        }
        if let Some(policy) = *self.autoscaler_policy.lock() {
            let provider = Arc::new(ClusterProvider {
                inner: self.inner.clone(),
            });
            controller.set_autoscaler(policy, provider);
            *self.elastic.lock() = Some(controller.start_elasticity_worker());
        }
        if self.run_expiry {
            if let Some(slot) = self.expiry.lock().first_mut() {
                *slot = Some(controller.start_expiry_worker());
            }
        }
        *self.controller.write() = controller;
        Ok(())
    }

    /// Crashes one controller shard: its in-memory state is abandoned
    /// (journal and snapshots in the persistent tier survive) and its
    /// expiry worker stops. Requests routed to it fail with a retryable
    /// `Unavailable` until [`Self::restart_controller_shard`]; the other
    /// shards — and clients' cached metadata for every shard — keep
    /// serving. On an unsharded cluster this falls back to
    /// [`Self::crash_controller`].
    pub fn crash_controller_shard(&self, idx: usize) {
        match &self.sharded {
            Some(sc) => {
                if let Some(slot) = self.expiry.lock().get_mut(idx) {
                    *slot = None;
                }
                sc.crash_shard(idx);
            }
            None => self.crash_controller(),
        }
    }

    /// Recovers shard `idx` from its own `jiffy-meta/shard-{idx}/`
    /// journal stream and brings its routing slot back up (bumping the
    /// shared view epoch, so clients drop cached metadata that might
    /// predate the crash). On an unsharded cluster this falls back to
    /// [`Self::restart_controller`].
    ///
    /// # Errors
    ///
    /// Journal decode/replay failures.
    pub fn restart_controller_shard(&self, idx: usize) -> Result<()> {
        match &self.sharded {
            Some(sc) => {
                let shard = sc.restart_shard(idx)?;
                if self.run_expiry {
                    if let Some(slot) = self.expiry.lock().get_mut(idx) {
                        *slot = Some(shard.start_expiry_worker());
                    }
                }
                Ok(())
            }
            None => self.restart_controller(),
        }
    }

    /// Whether controller shard `idx` is currently up (always true for
    /// an unsharded cluster's only controller unless it was crashed via
    /// [`Self::crash_controller`]).
    pub fn controller_shard_is_up(&self, idx: usize) -> bool {
        match &self.sharded {
            Some(sc) => sc.shard_is_up(idx),
            None => self.controller_tcp.lock().is_some() || !self.inner.tcp,
        }
    }
}

impl std::fmt::Debug for JiffyCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JiffyCluster({} servers, controller at {})",
            self.inner.servers.read().len(),
            self.inner.controller_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_cluster_serves_kv_traffic() {
        let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let kv = job.open_kv("s", &[], 2).unwrap();
        for i in 0..100 {
            kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..100 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(kv.count().unwrap(), 100);
    }

    #[test]
    fn tcp_cluster_serves_traffic() {
        let cluster = JiffyCluster::over_tcp(JiffyConfig::for_testing(), 1, 4).unwrap();
        assert!(cluster.controller_addr().starts_with("tcp:"));
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let q = job.open_queue("q", &[]).unwrap();
        q.enqueue(b"over tcp").unwrap();
        assert_eq!(q.dequeue().unwrap(), Some(b"over tcp".to_vec()));
    }

    #[test]
    fn tenant_quota_denies_over_quota_allocation() {
        let mut cfg = JiffyConfig::for_testing();
        cfg.qos.enabled = true;
        let cluster = JiffyCluster::in_process(cfg, 2, 8).unwrap();
        let tenant = TenantId(7);
        // Quota of exactly two 64 KiB test blocks.
        cluster
            .set_tenant_share(tenant, 1, 2 * 64 * 1024, 0, 0)
            .unwrap();
        let job = cluster
            .tenant_client(tenant)
            .unwrap()
            .register_job("quota")
            .unwrap();
        job.open_kv("small", &[], 2).unwrap();
        // A third block would exceed the cap.
        let err = job.open_kv("big", &[], 1).unwrap_err();
        assert!(matches!(err, JiffyError::QuotaExceeded { .. }), "{err:?}");
        // Untenanted traffic is exempt and unaffected.
        let other = cluster.client().unwrap().register_job("free").unwrap();
        other.open_kv("s", &[], 4).unwrap();
        // The denial is visible in the stats report.
        let stats = cluster.tenant_stats().unwrap();
        let entry = stats
            .iter()
            .find(|e| e.tenant == tenant)
            .expect("configured tenant missing from stats");
        assert_eq!(entry.allocated_blocks, 2);
        assert_eq!(entry.quota_bytes, 2 * 64 * 1024);
    }

    #[test]
    fn tenant_rate_limit_throttles_but_ops_still_succeed() {
        let mut cfg = JiffyConfig::for_testing();
        // 100 ops/s with a 2x burst: 250 back-to-back puts must hit the
        // limiter, and the client's backoff retry must absorb it.
        cfg.qos = jiffy_common::QosConfig::enabled_with_rates(100, 0);
        let cluster = JiffyCluster::in_process(cfg, 1, 8).unwrap();
        let tenant = TenantId(9);
        let job = cluster
            .tenant_client(tenant)
            .unwrap()
            .register_job("rl")
            .unwrap();
        let kv = job.open_kv("s", &[], 2).unwrap();
        // Throttle backoff stretches the put loop past the 1 s test
        // lease, so keep the lease alive the way a real app would.
        let _renewer =
            job.start_lease_renewer(vec!["s".into()], std::time::Duration::from_millis(200));
        for i in 0..250u32 {
            kv.put(format!("k{i}").as_bytes(), b"v".as_slice()).unwrap();
        }
        // Every acked put is durable despite the throttling. (Read back
        // before polling stats: the job lease lapses once we stop
        // touching the data structure.)
        for i in 0..250u32 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
        // Tenant loads travel controller-ward on the next heartbeat.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = cluster.tenant_stats().unwrap();
            let throttled = stats
                .iter()
                .find(|e| e.tenant == tenant)
                .map_or(0, |e| e.ops_throttled);
            if throttled > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no throttle ever reported: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    #[test]
    fn sharded_cluster_serves_traffic_across_shards() {
        let cluster =
            JiffyCluster::in_process_sharded(JiffyConfig::for_testing(), 4, 8, 4).unwrap();
        assert_eq!(cluster.controller_shards(), 4);
        let job = cluster.client().unwrap().register_job("t").unwrap();
        // Enough distinct roots to land on several shards; every one
        // must get blocks (round-robin server placement guarantees
        // each shard owns capacity).
        let kvs: Vec<_> = (0..8)
            .map(|i| job.open_kv(&format!("s{i}"), &[], 1).unwrap())
            .collect();
        for (i, kv) in kvs.iter().enumerate() {
            kv.put(b"k", format!("v{i}").as_bytes()).unwrap();
        }
        for (i, kv) in kvs.iter().enumerate() {
            assert_eq!(kv.get(b"k").unwrap(), Some(format!("v{i}").into_bytes()));
        }
        let sc = cluster.sharded_controller().expect("sharded cluster");
        let spread: Vec<usize> = (0..4)
            .map(|i| sc.shard(i).stats().servers as usize)
            .collect();
        assert_eq!(spread, vec![1, 1, 1, 1], "round-robin server placement");
    }

    #[test]
    fn shard_crash_and_restart_recovers_its_slice() {
        let cluster =
            JiffyCluster::in_process_sharded(JiffyConfig::for_testing(), 4, 8, 2).unwrap();
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let sc = cluster.sharded_controller().unwrap().clone();
        // One prefix per shard.
        let mut names = (0..16).map(|i| format!("p{i}"));
        let a = names.next().unwrap();
        let b = names
            .find(|n| sc.route_path(job.id(), n) != sc.route_path(job.id(), &a))
            .expect("16 names must span 2 shards");
        let kv_a = job.open_kv(&a, &[], 1).unwrap();
        let kv_b = job.open_kv(&b, &[], 1).unwrap();
        kv_a.put(b"k", b"a").unwrap();
        kv_b.put(b"k", b"b").unwrap();

        let dark = sc.route_path(job.id(), &a) as usize;
        cluster.crash_controller_shard(dark);
        assert!(!cluster.controller_shard_is_up(dark));
        // The other shard's control plane still answers.
        job.resolve(&b).unwrap();
        // Data ops to BOTH prefixes keep working: the data path never
        // touches the controller.
        assert_eq!(kv_a.get(b"k").unwrap(), Some(b"a".to_vec()));
        assert_eq!(kv_b.get(b"k").unwrap(), Some(b"b".to_vec()));

        cluster.restart_controller_shard(dark).unwrap();
        assert!(cluster.controller_shard_is_up(dark));
        // The recovered shard serves its slice of the namespace again.
        let v = job.resolve_fresh(&a).unwrap();
        assert_eq!(v.name, a);
    }

    #[test]
    fn add_and_drain_server_round_trip() {
        let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
        assert_eq!(cluster.controller().stats().servers, 2);

        let added = cluster.add_server(4).unwrap();
        assert_eq!(cluster.controller().stats().servers, 3);
        assert_eq!(cluster.controller().stats().total_blocks, 12);

        // Data written before the drain survives it.
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let kv = job.open_kv("s", &[], 4).unwrap();
        for i in 0..50 {
            kv.put(format!("k{i}").as_bytes(), b"v".as_slice()).unwrap();
        }

        cluster.drain_server(added).unwrap();
        assert_eq!(cluster.controller().stats().servers, 2);
        assert_eq!(cluster.servers().len(), 2);
        for i in 0..50 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec()),
                "key k{i} lost by the drain"
            );
        }
    }
}
