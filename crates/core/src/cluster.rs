//! Cluster bootstrap: wire a controller, memory servers, persistent
//! tier and client fabric together, in-process or over TCP.

use jiffy_sync::Arc;

use jiffy_client::JiffyClient;
use jiffy_common::clock::{SharedClock, SystemClock};
use jiffy_common::{JiffyConfig, Result};
use jiffy_controller::{Controller, ControllerHandle, RpcDataPlane};
use jiffy_persistent::{MemObjectStore, ObjectStore};
use jiffy_rpc::tcp::{serve_tcp, TcpServerHandle};
use jiffy_rpc::{Deduplicated, Fabric};
use jiffy_server::MemoryServer;

/// A running Jiffy cluster (controller + memory servers) plus the fabric
/// to reach it. Dropping the cluster stops its background workers.
pub struct JiffyCluster {
    fabric: Fabric,
    controller: Arc<Controller>,
    controller_addr: String,
    servers: Vec<Arc<MemoryServer>>,
    persistent: Arc<dyn ObjectStore>,
    _expiry: Option<ControllerHandle>,
    _tcp_handles: Vec<TcpServerHandle>,
}

impl JiffyCluster {
    /// Boots an in-process cluster: `num_servers` memory servers with
    /// `blocks_per_server` blocks each, a fresh in-memory persistent
    /// tier, a system clock, and a running lease-expiry worker.
    ///
    /// # Errors
    ///
    /// Registration failures.
    pub fn in_process(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
    ) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            false,
        )
    }

    /// Boots a cluster whose controller and memory servers listen on
    /// real TCP sockets (ephemeral ports on localhost).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn over_tcp(cfg: JiffyConfig, num_servers: usize, blocks_per_server: u32) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            true,
        )
    }

    /// Fully parameterized bootstrap (custom clock, custom persistent
    /// tier, optional expiry worker, in-proc or TCP transport).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn build(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
        clock: SharedClock,
        persistent: Arc<dyn ObjectStore>,
        run_expiry_worker: bool,
        tcp: bool,
    ) -> Result<Self> {
        let fabric = Fabric::new();
        let controller = Controller::new(
            cfg.clone(),
            clock,
            Arc::new(RpcDataPlane::new(fabric.clone())),
            persistent.clone(),
        )?;
        let mut tcp_handles = Vec::new();
        // Services are registered behind a replay cache so that clients
        // retrying a timed-out request (same request id) never execute a
        // mutation twice.
        let controller_svc = Deduplicated::shared(controller.clone());
        let controller_addr = if tcp {
            let handle = serve_tcp("127.0.0.1:0", controller_svc)?;
            let addr = handle.addr().to_string();
            tcp_handles.push(handle);
            addr
        } else {
            fabric.hub().register(controller_svc)
        };
        let mut servers = Vec::new();
        for _ in 0..num_servers {
            let server = MemoryServer::new(cfg.clone(), fabric.clone(), controller_addr.clone());
            let server_svc = Deduplicated::shared(server.clone());
            let addr = if tcp {
                let handle = serve_tcp("127.0.0.1:0", server_svc)?;
                let addr = handle.addr().to_string();
                tcp_handles.push(handle);
                addr
            } else {
                fabric.hub().register(server_svc)
            };
            server.register(&addr, blocks_per_server)?;
            servers.push(server);
        }
        let expiry = run_expiry_worker.then(|| controller.start_expiry_worker());
        Ok(Self {
            fabric,
            controller,
            controller_addr,
            servers,
            persistent,
            _expiry: expiry,
            _tcp_handles: tcp_handles,
        })
    }

    /// A client connected to this cluster's controller.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn client(&self) -> Result<JiffyClient> {
        JiffyClient::connect(self.fabric.clone(), &self.controller_addr)
    }

    /// The shared connection fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The controller (for stats and direct dispatch in tests/benches).
    pub fn controller(&self) -> &Arc<Controller> {
        &self.controller
    }

    /// The controller's transport address.
    pub fn controller_addr(&self) -> &str {
        &self.controller_addr
    }

    /// The memory servers (for usage sampling in experiments).
    pub fn servers(&self) -> &[Arc<MemoryServer>] {
        &self.servers
    }

    /// The persistent tier backing flush/load and expiry.
    pub fn persistent(&self) -> &Arc<dyn ObjectStore> {
        &self.persistent
    }

    /// Total bytes of intermediate data resident in DRAM right now
    /// (the quantity Fig. 11a / Fig. 14 sample over time).
    pub fn used_bytes(&self) -> u64 {
        self.servers.iter().map(|s| s.used_bytes()).sum()
    }

    /// Blocks currently allocated to data structures, across servers.
    pub fn allocated_blocks(&self) -> usize {
        self.servers.iter().map(|s| s.allocated_blocks()).sum()
    }
}

impl std::fmt::Debug for JiffyCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JiffyCluster({} servers, controller at {})",
            self.servers.len(),
            self.controller_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_cluster_serves_kv_traffic() {
        let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let kv = job.open_kv("s", &[], 2).unwrap();
        for i in 0..100 {
            kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..100 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(kv.count().unwrap(), 100);
    }

    #[test]
    fn tcp_cluster_serves_traffic() {
        let cluster = JiffyCluster::over_tcp(JiffyConfig::for_testing(), 1, 4).unwrap();
        assert!(cluster.controller_addr().starts_with("tcp:"));
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let q = job.open_queue("q", &[]).unwrap();
        q.enqueue(b"over tcp").unwrap();
        assert_eq!(q.dequeue().unwrap(), Some(b"over tcp".to_vec()));
    }
}
