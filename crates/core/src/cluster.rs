//! Cluster bootstrap: wire a controller, memory servers, persistent
//! tier and client fabric together, in-process or over TCP — plus the
//! elastic server pool: add, drain, and kill servers at runtime, and
//! run the demand-driven autoscaler against the live pool.

use jiffy_sync::{Arc, Mutex, RwLock};

use jiffy_client::JiffyClient;
use jiffy_common::clock::{SharedClock, SystemClock};
use jiffy_common::{JiffyConfig, JiffyError, Result, ServerId, TenantId};
use jiffy_controller::{Controller, ControllerHandle, RpcDataPlane};
use jiffy_elastic::{AutoscalerPolicy, ServerProvider};
use jiffy_persistent::{MemObjectStore, ObjectStore};
use jiffy_proto::{ControlRequest, ControlResponse};
use jiffy_rpc::tcp::{serve_tcp, TcpServerHandle};
use jiffy_rpc::{Deduplicated, Fabric};
use jiffy_server::MemoryServer;

/// The mutable part of the cluster, shared with the [`ServerProvider`]
/// the autoscaler acts through: the live server pool plus everything
/// needed to stand up (or tear down) one more server.
struct ClusterInner {
    fabric: Fabric,
    cfg: JiffyConfig,
    controller_addr: String,
    servers: RwLock<Vec<Arc<MemoryServer>>>,
    tcp: bool,
    tcp_handles: Mutex<Vec<TcpServerHandle>>,
    blocks_per_server: u32,
}

impl ClusterInner {
    /// Boots one more memory server (with `blocks` blocks), registers it
    /// with the controller, and starts its heartbeat.
    fn spawn_server(&self, blocks: u32) -> Result<ServerId> {
        let server = MemoryServer::new(
            self.cfg.clone(),
            self.fabric.clone(),
            self.controller_addr.clone(),
        );
        let server_svc = Deduplicated::shared(server.clone());
        let addr = if self.tcp {
            let handle = serve_tcp("127.0.0.1:0", server_svc)?;
            let addr = handle.addr().to_string();
            self.tcp_handles.lock().push(handle);
            addr
        } else {
            self.fabric.hub().register(server_svc)
        };
        let id = server.register(&addr, blocks)?;
        server.start_heartbeats();
        self.servers.write().push(server);
        Ok(id)
    }

    /// Removes a server from the pool and tears down its transport
    /// endpoint, so late requests fail with `Unavailable` rather than
    /// reaching a ghost.
    fn remove_server(&self, id: ServerId) -> Option<Arc<MemoryServer>> {
        let server = {
            let mut servers = self.servers.write();
            let pos = servers
                .iter()
                .position(|s| s.identity().map(|(sid, _)| sid) == Some(id))?;
            servers.remove(pos)
        };
        if let Some((_, addr)) = server.identity() {
            if self.tcp {
                self.tcp_handles.lock().retain(|h| h.addr() != addr);
            } else {
                self.fabric.hub().deregister(&addr);
            }
        }
        Some(server)
    }
}

/// [`ServerProvider`] backed by the cluster itself: scale-up boots an
/// in-process (or TCP) memory server with the cluster's default block
/// count; scale-down tears the drained server's endpoint down.
struct ClusterProvider {
    inner: Arc<ClusterInner>,
}

impl ServerProvider for ClusterProvider {
    fn provision(&self) -> Result<ServerId> {
        self.inner.spawn_server(self.inner.blocks_per_server)
    }

    fn decommission(&self, server: ServerId) -> Result<()> {
        self.inner.remove_server(server);
        Ok(())
    }
}

/// A running Jiffy cluster (controller + memory servers) plus the fabric
/// to reach it. Dropping the cluster stops its background workers.
///
/// The controller slot is swappable: [`JiffyCluster::crash_controller`]
/// tears the current instance's transport and workers down (its memory
/// state is lost, exactly like a process crash), and
/// [`JiffyCluster::restart_controller`] recovers a fresh instance from
/// the metadata journal in the persistent tier at the same address.
pub struct JiffyCluster {
    controller: RwLock<Arc<Controller>>,
    persistent: Arc<dyn ObjectStore>,
    inner: Arc<ClusterInner>,
    clock: SharedClock,
    run_expiry: bool,
    expiry: Mutex<Option<ControllerHandle>>,
    elastic: Mutex<Option<ControllerHandle>>,
    autoscaler_policy: Mutex<Option<AutoscalerPolicy>>,
    controller_tcp: Mutex<Option<TcpServerHandle>>,
}

impl JiffyCluster {
    /// Boots an in-process cluster: `num_servers` memory servers with
    /// `blocks_per_server` blocks each, a fresh in-memory persistent
    /// tier, a system clock, and a running lease-expiry worker.
    ///
    /// # Errors
    ///
    /// Registration failures.
    pub fn in_process(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
    ) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            false,
        )
    }

    /// Boots a cluster whose controller and memory servers listen on
    /// real TCP sockets (ephemeral ports on localhost).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn over_tcp(cfg: JiffyConfig, num_servers: usize, blocks_per_server: u32) -> Result<Self> {
        Self::build(
            cfg,
            num_servers,
            blocks_per_server,
            SystemClock::shared(),
            Arc::new(MemObjectStore::new()),
            true,
            true,
        )
    }

    /// Fully parameterized bootstrap (custom clock, custom persistent
    /// tier, optional expiry worker, in-proc or TCP transport).
    ///
    /// # Errors
    ///
    /// Bind or registration failures.
    pub fn build(
        cfg: JiffyConfig,
        num_servers: usize,
        blocks_per_server: u32,
        clock: SharedClock,
        persistent: Arc<dyn ObjectStore>,
        run_expiry_worker: bool,
        tcp: bool,
    ) -> Result<Self> {
        let fabric = Fabric::new();
        let controller = Controller::new(
            cfg.clone(),
            clock.clone(),
            Arc::new(RpcDataPlane::new(fabric.clone())),
            persistent.clone(),
        )?;
        // Services are registered behind a replay cache so that clients
        // retrying a timed-out request (same request id) never execute a
        // mutation twice.
        let controller_svc = Deduplicated::shared(controller.clone());
        let mut controller_tcp = None;
        let controller_addr = if tcp {
            let handle = serve_tcp("127.0.0.1:0", controller_svc)?;
            let addr = handle.addr().to_string();
            controller_tcp = Some(handle);
            addr
        } else {
            fabric.hub().register(controller_svc)
        };
        let inner = Arc::new(ClusterInner {
            fabric,
            cfg,
            controller_addr,
            servers: RwLock::new(Vec::new()),
            tcp,
            tcp_handles: Mutex::new(Vec::new()),
            blocks_per_server,
        });
        for _ in 0..num_servers {
            inner.spawn_server(blocks_per_server)?;
        }
        let expiry = run_expiry_worker.then(|| controller.start_expiry_worker());
        Ok(Self {
            controller: RwLock::new(controller),
            persistent,
            inner,
            clock,
            run_expiry: run_expiry_worker,
            expiry: Mutex::new(expiry),
            elastic: Mutex::new(None),
            autoscaler_policy: Mutex::new(None),
            controller_tcp: Mutex::new(controller_tcp),
        })
    }

    /// A client connected to this cluster's controller.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn client(&self) -> Result<JiffyClient> {
        JiffyClient::connect(self.inner.fabric.clone(), &self.inner.controller_addr)
    }

    /// A client whose requests are accounted to (and admission-controlled
    /// as) `tenant`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn tenant_client(&self, tenant: TenantId) -> Result<JiffyClient> {
        Ok(self.client()?.with_tenant(tenant))
    }

    /// Like [`Self::tenant_client`], but on a private transport fabric
    /// with its own connections — how real tenants (separate processes)
    /// reach the cluster, so one tenant's traffic never queues behind
    /// another's on a shared session. Only available on TCP clusters:
    /// in-process service names live in the shared fabric's hub.
    ///
    /// # Errors
    ///
    /// Transport failures, or the cluster is in-process.
    pub fn isolated_tenant_client(&self, tenant: TenantId) -> Result<JiffyClient> {
        if !self.inner.tcp {
            return Err(JiffyError::Rpc(
                "isolated_tenant_client requires a TCP cluster".into(),
            ));
        }
        let client = JiffyClient::connect(Fabric::new(), &self.inner.controller_addr)?;
        Ok(client.with_tenant(tenant))
    }

    /// Sets a tenant's fair-share weight, memory quota, and data-plane
    /// rate limits (0 = unlimited / config default for each limit). The
    /// change is journaled on the controller and pushed to every live
    /// memory server immediately (heartbeats keep refreshing it
    /// afterwards, covering servers that join later).
    ///
    /// # Errors
    ///
    /// Controller dispatch failures.
    pub fn set_tenant_share(
        &self,
        tenant: TenantId,
        share: u32,
        quota_bytes: u64,
        ops_per_sec: u64,
        bytes_per_sec: u64,
    ) -> Result<()> {
        let controller = self.controller();
        controller.dispatch(ControlRequest::SetTenantShare {
            tenant,
            share,
            quota_bytes,
            ops_per_sec,
            bytes_per_sec,
        })?;
        let limits = controller.tenant_limits();
        for server in self.inner.servers.read().iter() {
            server.install_tenant_limits(&limits);
        }
        Ok(())
    }

    /// Per-tenant usage and load accounting, aggregated across the
    /// controller's allocation metadata and the servers' heartbeat
    /// reports.
    ///
    /// # Errors
    ///
    /// Controller dispatch failures.
    pub fn tenant_stats(&self) -> Result<Vec<jiffy_proto::TenantStatsEntry>> {
        match self.controller().dispatch(ControlRequest::TenantStats)? {
            ControlResponse::TenantStatsReport(entries) => Ok(entries),
            other => Err(JiffyError::Rpc(format!(
                "unexpected tenant-stats reply: {other:?}"
            ))),
        }
    }

    /// The shared connection fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The current controller instance (for stats and direct dispatch
    /// in tests/benches). Owned, because a crash/restart cycle swaps
    /// the instance out from under the cluster.
    pub fn controller(&self) -> Arc<Controller> {
        self.controller.read().clone()
    }

    /// The controller's transport address.
    pub fn controller_addr(&self) -> &str {
        &self.inner.controller_addr
    }

    /// A snapshot of the live memory servers (usage sampling).
    pub fn servers(&self) -> Vec<Arc<MemoryServer>> {
        self.inner.servers.read().clone()
    }

    /// The persistent tier backing flush/load and expiry.
    pub fn persistent(&self) -> &Arc<dyn ObjectStore> {
        &self.persistent
    }

    /// Total bytes of intermediate data resident in DRAM right now
    /// (the quantity Fig. 11a / Fig. 14 sample over time).
    pub fn used_bytes(&self) -> u64 {
        self.inner
            .servers
            .read()
            .iter()
            .map(|s| s.used_bytes())
            .sum()
    }

    /// Blocks currently allocated to data structures, across servers.
    pub fn allocated_blocks(&self) -> usize {
        self.inner
            .servers
            .read()
            .iter()
            .map(|s| s.allocated_blocks())
            .sum()
    }

    /// Adds one memory server (with `blocks` blocks) to the running
    /// cluster: it registers with the controller, starts heartbeating,
    /// and its blocks join the free pool immediately.
    ///
    /// # Errors
    ///
    /// Transport or registration failures.
    pub fn add_server(&self, blocks: u32) -> Result<ServerId> {
        self.inner.spawn_server(blocks)
    }

    /// Gracefully decommissions a server: the controller marks it
    /// draining, live-migrates every chain it hosts (client ops keep
    /// flowing — at worst they see retryable errors during a move),
    /// deregisters it, and this side tears the endpoint down. Returns
    /// how many physical blocks were migrated off it.
    ///
    /// # Errors
    ///
    /// Unknown server, or a migration failure (e.g. no capacity left on
    /// the remaining servers).
    pub fn drain_server(&self, server: ServerId) -> Result<u32> {
        match self
            .controller()
            .dispatch(ControlRequest::LeaveServer { server })?
        {
            ControlResponse::Drained {
                blocks_migrated, ..
            } => {
                self.inner.remove_server(server);
                Ok(blocks_migrated)
            }
            other => Err(JiffyError::Rpc(format!(
                "unexpected drain reply: {other:?}"
            ))),
        }
    }

    /// Kills a server abruptly (crash injection): its endpoint vanishes
    /// first — in-flight requests fail with `Unavailable` — and the
    /// controller then re-routes its blocks (replica promotion where a
    /// chain survives, persistent-tier reload where one was flushed).
    ///
    /// # Errors
    ///
    /// Unknown server.
    pub fn kill_server(&self, server: ServerId) -> Result<()> {
        self.inner.remove_server(server);
        self.controller().handle_server_failure(server)
    }

    /// Installs the autoscaler (policy + cluster-backed provider) and
    /// starts the elasticity worker: every `cfg.elasticity_interval` it
    /// sweeps the failure detector and takes one scaling decision.
    pub fn start_elasticity(&mut self, policy: AutoscalerPolicy) {
        let provider = Arc::new(ClusterProvider {
            inner: self.inner.clone(),
        });
        let controller = self.controller();
        controller.set_autoscaler(policy, provider);
        *self.autoscaler_policy.lock() = Some(policy);
        *self.elastic.lock() = Some(controller.start_elasticity_worker());
    }

    /// Stops the elasticity worker (the autoscaler hooks stay installed;
    /// `Controller::run_autoscaler_once` still works manually).
    pub fn stop_elasticity(&mut self) {
        *self.elastic.lock() = None;
        *self.autoscaler_policy.lock() = None;
    }

    /// Crashes the controller: its transport endpoint vanishes (in-flight
    /// and subsequent requests fail with transport errors until a
    /// restart), its background workers stop, and its in-memory state is
    /// abandoned — exactly what a process crash loses. The metadata
    /// journal in the persistent tier is untouched; pair with
    /// [`JiffyCluster::restart_controller`].
    pub fn crash_controller(&self) {
        // Stop the workers first so nothing dispatches mid-teardown.
        *self.expiry.lock() = None;
        *self.elastic.lock() = None;
        if self.inner.tcp {
            // Dropping the handle closes the listener; session threads
            // die as clients evict their broken connections. Take it
            // out first and drop it after the guard: the handle's Drop
            // joins reactor threads, and that teardown must not run
            // while controller_tcp is held.
            let old = self.controller_tcp.lock().take();
            drop(old);
        } else {
            self.inner
                .fabric
                .hub()
                .deregister(&self.inner.controller_addr);
        }
    }

    /// Restarts the controller at the same address, recovering all
    /// metadata (jobs, hierarchies, leases, freelist, placement) from
    /// the journal + snapshots the crashed instance wrote. Leases are
    /// re-armed and the failure detector is re-seeded at the restart
    /// instant; servers keep heartbeating into the new instance and
    /// clients retry through the restart window transparently.
    ///
    /// # Errors
    ///
    /// Journal decode/replay failures, or (TCP mode) failure to re-bind
    /// the controller's port.
    pub fn restart_controller(&self) -> Result<()> {
        let controller = Controller::recover(
            self.inner.cfg.clone(),
            self.clock.clone(),
            Arc::new(RpcDataPlane::new(self.inner.fabric.clone())),
            self.persistent.clone(),
        )?;
        // Same replay-cache wrapping as the original registration —
        // though the cache itself restarts empty, so exactly-once across
        // the crash leans on idempotent handlers (DESIGN.md §11).
        let controller_svc = Deduplicated::shared(controller.clone());
        if self.inner.tcp {
            let hostport = self
                .inner
                .controller_addr
                .strip_prefix("tcp:")
                .unwrap_or(&self.inner.controller_addr)
                .to_string();
            // The old listener's sockets may linger briefly; retry the
            // bind for a bounded window.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            let handle = loop {
                match serve_tcp(&hostport, controller_svc.clone()) {
                    Ok(h) => break h,
                    Err(e) => {
                        if std::time::Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                }
            };
            // Swap under the lock, drop any stale handle after: its
            // Drop joins reactor threads (see crash_controller).
            let old = (*self.controller_tcp.lock()).replace(handle);
            drop(old);
        } else {
            self.inner
                .fabric
                .hub()
                .register_at(&self.inner.controller_addr, controller_svc)?;
        }
        if let Some(policy) = *self.autoscaler_policy.lock() {
            let provider = Arc::new(ClusterProvider {
                inner: self.inner.clone(),
            });
            controller.set_autoscaler(policy, provider);
            *self.elastic.lock() = Some(controller.start_elasticity_worker());
        }
        if self.run_expiry {
            *self.expiry.lock() = Some(controller.start_expiry_worker());
        }
        *self.controller.write() = controller;
        Ok(())
    }
}

impl std::fmt::Debug for JiffyCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JiffyCluster({} servers, controller at {})",
            self.inner.servers.read().len(),
            self.inner.controller_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_cluster_serves_kv_traffic() {
        let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let kv = job.open_kv("s", &[], 2).unwrap();
        for i in 0..100 {
            kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..100 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        assert_eq!(kv.count().unwrap(), 100);
    }

    #[test]
    fn tcp_cluster_serves_traffic() {
        let cluster = JiffyCluster::over_tcp(JiffyConfig::for_testing(), 1, 4).unwrap();
        assert!(cluster.controller_addr().starts_with("tcp:"));
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let q = job.open_queue("q", &[]).unwrap();
        q.enqueue(b"over tcp").unwrap();
        assert_eq!(q.dequeue().unwrap(), Some(b"over tcp".to_vec()));
    }

    #[test]
    fn tenant_quota_denies_over_quota_allocation() {
        let mut cfg = JiffyConfig::for_testing();
        cfg.qos.enabled = true;
        let cluster = JiffyCluster::in_process(cfg, 2, 8).unwrap();
        let tenant = TenantId(7);
        // Quota of exactly two 64 KiB test blocks.
        cluster
            .set_tenant_share(tenant, 1, 2 * 64 * 1024, 0, 0)
            .unwrap();
        let job = cluster
            .tenant_client(tenant)
            .unwrap()
            .register_job("quota")
            .unwrap();
        job.open_kv("small", &[], 2).unwrap();
        // A third block would exceed the cap.
        let err = job.open_kv("big", &[], 1).unwrap_err();
        assert!(matches!(err, JiffyError::QuotaExceeded { .. }), "{err:?}");
        // Untenanted traffic is exempt and unaffected.
        let other = cluster.client().unwrap().register_job("free").unwrap();
        other.open_kv("s", &[], 4).unwrap();
        // The denial is visible in the stats report.
        let stats = cluster.tenant_stats().unwrap();
        let entry = stats
            .iter()
            .find(|e| e.tenant == tenant)
            .expect("configured tenant missing from stats");
        assert_eq!(entry.allocated_blocks, 2);
        assert_eq!(entry.quota_bytes, 2 * 64 * 1024);
    }

    #[test]
    fn tenant_rate_limit_throttles_but_ops_still_succeed() {
        let mut cfg = JiffyConfig::for_testing();
        // 100 ops/s with a 2x burst: 250 back-to-back puts must hit the
        // limiter, and the client's backoff retry must absorb it.
        cfg.qos = jiffy_common::QosConfig::enabled_with_rates(100, 0);
        let cluster = JiffyCluster::in_process(cfg, 1, 8).unwrap();
        let tenant = TenantId(9);
        let job = cluster
            .tenant_client(tenant)
            .unwrap()
            .register_job("rl")
            .unwrap();
        let kv = job.open_kv("s", &[], 2).unwrap();
        // Throttle backoff stretches the put loop past the 1 s test
        // lease, so keep the lease alive the way a real app would.
        let _renewer =
            job.start_lease_renewer(vec!["s".into()], std::time::Duration::from_millis(200));
        for i in 0..250u32 {
            kv.put(format!("k{i}").as_bytes(), b"v".as_slice()).unwrap();
        }
        // Every acked put is durable despite the throttling. (Read back
        // before polling stats: the job lease lapses once we stop
        // touching the data structure.)
        for i in 0..250u32 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec())
            );
        }
        // Tenant loads travel controller-ward on the next heartbeat.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = cluster.tenant_stats().unwrap();
            let throttled = stats
                .iter()
                .find(|e| e.tenant == tenant)
                .map_or(0, |e| e.ops_throttled);
            if throttled > 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no throttle ever reported: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    #[test]
    fn add_and_drain_server_round_trip() {
        let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
        assert_eq!(cluster.controller().stats().servers, 2);

        let added = cluster.add_server(4).unwrap();
        assert_eq!(cluster.controller().stats().servers, 3);
        assert_eq!(cluster.controller().stats().total_blocks, 12);

        // Data written before the drain survives it.
        let job = cluster.client().unwrap().register_job("t").unwrap();
        let kv = job.open_kv("s", &[], 4).unwrap();
        for i in 0..50 {
            kv.put(format!("k{i}").as_bytes(), b"v".as_slice()).unwrap();
        }

        cluster.drain_server(added).unwrap();
        assert_eq!(cluster.controller().stats().servers, 2);
        assert_eq!(cluster.servers().len(), 2);
        for i in 0..50 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(b"v".to_vec()),
                "key k{i} lost by the drain"
            );
        }
    }
}
