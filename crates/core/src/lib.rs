//! # Jiffy — elastic far-memory for stateful serverless analytics
//!
//! A from-scratch Rust reproduction of *Jiffy: Elastic Far-Memory for
//! Stateful Serverless Analytics* (EuroSys 2022). Jiffy stores the
//! intermediate data of serverless analytics jobs in a pool of memory
//! servers and — unlike job-granularity allocators such as Pocket —
//! allocates that memory in small fixed-size **blocks**, multiplexing
//! capacity across concurrent jobs at seconds timescales.
//!
//! The three mechanisms from the paper:
//!
//! 1. **Hierarchical addressing** (§3.1) — each job's intermediate data
//!    lives in a DAG-shaped address space mirroring its execution plan;
//!    prefixes give task-level isolation.
//! 2. **Lease-based lifetime management** (§3.2) — prefixes stay in
//!    memory while leased; renewal propagates to direct parents and all
//!    descendants; expiry flushes to the persistent tier, then reclaims.
//! 3. **Partition-function shipping** (§3.3) — the built-in File,
//!    Queue and KV structures repartition *inside* the memory tier when
//!    blocks cross usage thresholds, off the application's data path.
//!
//! ## Quickstart
//!
//! ```
//! use jiffy::cluster::JiffyCluster;
//! use jiffy_common::JiffyConfig;
//!
//! // One controller + 2 memory servers with 8 blocks each, in-process.
//! let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 8).unwrap();
//! let job = cluster.client().unwrap().register_job("quickstart").unwrap();
//!
//! let kv = job.open_kv("state", &[], 1).unwrap();
//! kv.put(b"answer", b"42").unwrap();
//! assert_eq!(kv.get(b"answer").unwrap(), Some(b"42".to_vec()));
//!
//! let q = job.open_queue("events", &[]).unwrap();
//! q.enqueue(b"hello").unwrap();
//! assert_eq!(q.dequeue().unwrap(), Some(b"hello".to_vec()));
//! ```

pub mod cluster;

pub use cluster::JiffyCluster;
pub use jiffy_client::{FileClient, JiffyClient, JobClient, KvClient, LeaseRenewer, QueueClient};
pub use jiffy_common::{BlockId, Clock, JiffyConfig, JiffyError, JobId, Result, ServerId};
pub use jiffy_elastic::{AutoscalerPolicy, ScaleDecision, ServerProvider, ServerState};
pub use jiffy_proto::{DagNodeSpec, DsType, Notification, OpKind};
