//! The per-memory-server block store.

use jiffy_sync::Arc;
use std::collections::HashMap;

use jiffy_common::{BlockId, JiffyError, Result};
use jiffy_sync::{Mutex, RwLock};

use crate::block::Block;

/// Maps block IDs to blocks on one memory server.
///
/// Each block carries its own mutex so operations on different blocks
/// proceed in parallel; the outer map is only write-locked when blocks
/// are added or removed (server registration / decommission).
#[derive(Default)]
pub struct BlockStore {
    blocks: RwLock<HashMap<BlockId, Arc<Mutex<Block>>>>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block to the store.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] if the ID is already present.
    pub fn add(&self, block: Block) -> Result<()> {
        let id = block.id();
        let mut map = self.blocks.write();
        if map.contains_key(&id) {
            return Err(JiffyError::Internal(format!("duplicate block {id}")));
        }
        // Named so lock-order tracking reports one `block` class for
        // every per-block mutex instead of a class per insertion site.
        map.insert(id, Arc::new(Mutex::new_named(block, "block")));
        Ok(())
    }

    /// Removes a block entirely (decommission).
    pub fn remove(&self, id: BlockId) -> Option<Arc<Mutex<Block>>> {
        self.blocks.write().remove(&id)
    }

    /// Fetches a block handle.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if absent.
    pub fn get(&self, id: BlockId) -> Result<Arc<Mutex<Block>>> {
        self.blocks
            .read()
            .get(&id)
            .cloned()
            .ok_or(JiffyError::UnknownBlock(id.raw()))
    }

    /// Number of blocks hosted.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// IDs of all hosted blocks.
    pub fn ids(&self) -> Vec<BlockId> {
        self.blocks.read().keys().copied().collect()
    }

    /// Total bytes used across all blocks (metric for utilization plots).
    pub fn total_used_bytes(&self) -> u64 {
        let handles: Vec<_> = self.blocks.read().values().cloned().collect();
        handles
            .iter()
            .map(|block| block.lock().used_bytes() as u64)
            .sum()
    }

    /// Number of allocated (partition-carrying) blocks.
    pub fn allocated_count(&self) -> usize {
        let handles: Vec<_> = self.blocks.read().values().cloned().collect();
        handles
            .iter()
            .filter(|block| block.lock().is_allocated())
            .count()
    }
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BlockStore({} blocks)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(id: u64) -> Block {
        Block::new(BlockId(id), 1024, 51, 973)
    }

    #[test]
    fn add_get_remove() {
        let store = BlockStore::new();
        store.add(block(1)).unwrap();
        store.add(block(2)).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(BlockId(1)).is_ok());
        assert!(store.get(BlockId(3)).is_err());
        assert!(store.remove(BlockId(1)).is_some());
        assert!(store.get(BlockId(1)).is_err());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn duplicate_add_is_rejected() {
        let store = BlockStore::new();
        store.add(block(1)).unwrap();
        assert!(store.add(block(1)).is_err());
    }

    #[test]
    fn ids_lists_all_blocks() {
        let store = BlockStore::new();
        for i in 0..5 {
            store.add(block(i)).unwrap();
        }
        let mut ids = store.ids();
        ids.sort_unstable();
        assert_eq!(ids, (0..5).map(BlockId).collect::<Vec<_>>());
    }

    #[test]
    fn usage_metrics_start_at_zero() {
        let store = BlockStore::new();
        store.add(block(1)).unwrap();
        assert_eq!(store.total_used_bytes(), 0);
        assert_eq!(store.allocated_count(), 0);
    }

    #[test]
    fn concurrent_access_to_distinct_blocks() {
        let store = Arc::new(BlockStore::new());
        for i in 0..8 {
            store.add(block(i)).unwrap();
        }
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let block = s.get(BlockId(i)).unwrap();
                    let _guard = block.lock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
