//! A fixed-capacity block with usage-threshold detection.

use jiffy_common::{BlockId, JiffyError, Result};
use jiffy_proto::{DsOp, DsResult, Notification, OpKind, Replica};
use jiffy_rpc::ReplayWindow;

use crate::partition::Partition;

/// Entries one block's replay window retains. Sized far above the
/// number of in-flight client requests a single block sees, so a live
/// retry always lands inside the window.
pub const REPLAY_WINDOW_ENTRIES: usize = 512;

/// Byte budget for cached results in one block's replay window (weights
/// are result payload bytes plus [`REPLAY_ENTRY_OVERHEAD`]).
pub const REPLAY_WINDOW_BYTES: u64 = 1 << 20;

/// Fixed per-entry weight charged on top of a result's payload bytes,
/// approximating the map/index bookkeeping an entry costs.
const REPLAY_ENTRY_OVERHEAD: u64 = 48;

/// Emitted by [`Block::execute`] when the block's usage crosses a
/// repartition threshold (paper §3.3). The memory server forwards these
/// to the controller as `ReportOverload`/`ReportUnderload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdEvent {
    /// Usage rose above the high watermark.
    Overloaded {
        /// Bytes in use at the crossing.
        used: u64,
    },
    /// Usage fell below the low watermark.
    Underloaded {
        /// Bytes in use at the crossing.
        used: u64,
    },
}

/// One memory block: identity, capacity, thresholds, an optional
/// partition (present once the block is allocated to a data structure),
/// and a per-block operation sequence number used for notifications and
/// the paper's atomic-operator guarantee.
pub struct Block {
    id: BlockId,
    capacity: usize,
    high_watermark: usize,
    low_watermark: usize,
    partition: Option<Box<dyn Partition>>,
    seq: u64,
    /// Hysteresis latches so a block signals each crossing once rather
    /// than on every op while above/below the watermark.
    high_signaled: bool,
    low_signaled: bool,
    /// While a repartition is in flight the block suppresses further
    /// threshold events for itself.
    repartition_in_flight: bool,
    /// Sealed for live migration: the image is frozen — mutations bounce
    /// with `StaleMetadata` while reads keep serving (paper §3.3).
    sealed: bool,
    /// Redirect tombstone left behind after a migration: every op gets
    /// `BlockMoved` pointing at the new home until the block is reused.
    moved_to: Option<Replica>,
    /// Recently executed `(request id → result)` entries, consulted on
    /// the replicate path before execution so a retried mutation —
    /// including one retried against a freshly promoted replica — is
    /// answered instead of re-executed. Guarded by the same mutex as the
    /// partition (the per-block lock in `BlockStore`), which is what
    /// makes execute + record atomic with respect to a concurrent retry.
    replay: ReplayWindow<DsResult>,
}

impl Block {
    /// Creates an unallocated (free) block.
    pub fn new(id: BlockId, capacity: usize, low_watermark: usize, high_watermark: usize) -> Self {
        Self {
            id,
            capacity,
            high_watermark,
            low_watermark,
            partition: None,
            seq: 0,
            high_signaled: false,
            low_signaled: false,
            repartition_in_flight: false,
            sealed: false,
            moved_to: None,
            replay: ReplayWindow::new(REPLAY_WINDOW_ENTRIES, REPLAY_WINDOW_BYTES),
        }
    }

    /// The block's cluster-unique ID.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes in use (0 when unallocated).
    pub fn used_bytes(&self) -> usize {
        self.partition.as_ref().map_or(0, |p| p.used_bytes())
    }

    /// Whether a partition is installed.
    pub fn is_allocated(&self) -> bool {
        self.partition.is_some()
    }

    /// Installs a partition, making the block serve a data structure.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] if the block is already allocated.
    pub fn install(&mut self, partition: Box<dyn Partition>) -> Result<()> {
        if self.partition.is_some() {
            return Err(JiffyError::Internal(format!(
                "block {} already allocated",
                self.id
            )));
        }
        self.partition = Some(partition);
        self.high_signaled = false;
        self.low_signaled = false;
        self.repartition_in_flight = false;
        self.sealed = false;
        self.moved_to = None;
        self.replay.clear();
        Ok(())
    }

    /// Clears the block back to the free state, dropping all data.
    pub fn reset(&mut self) {
        self.partition = None;
        self.seq = 0;
        self.high_signaled = false;
        self.low_signaled = false;
        self.repartition_in_flight = false;
        self.sealed = false;
        self.moved_to = None;
        self.replay.clear();
    }

    /// Seals (or unseals) the block for live migration. Sealed blocks
    /// reject mutations with [`JiffyError::StaleMetadata`] — the client
    /// refreshes its view and retries at the new home — while reads keep
    /// serving the frozen image.
    pub fn set_sealed(&mut self, sealed: bool) {
        self.sealed = sealed;
    }

    /// Whether the block is currently sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Retires the block after its contents migrated to `moved_to`:
    /// drops the partition (freeing the memory) but leaves a redirect
    /// tombstone so every subsequent op gets [`JiffyError::BlockMoved`]
    /// until the block is reused via [`Block::install`] or
    /// [`Block::reset`].
    pub fn retire(&mut self, moved_to: Replica) {
        self.partition = None;
        self.seq = 0;
        self.high_signaled = false;
        self.low_signaled = false;
        self.repartition_in_flight = false;
        self.sealed = false;
        self.moved_to = Some(moved_to);
        // The window travelled with the migration payload (export under
        // the same lock); a retry bouncing off the tombstone re-resolves
        // to the new home, whose imported window answers it.
        self.replay.clear();
    }

    /// The redirect tombstone, if the block was retired.
    pub fn moved_to(&self) -> Option<&Replica> {
        self.moved_to.as_ref()
    }

    /// Direct access to the partition (repartitioning, export).
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the block is unallocated.
    pub fn partition_mut(&mut self) -> Result<&mut (dyn Partition + 'static)> {
        self.partition
            .as_deref_mut()
            .ok_or(JiffyError::UnknownBlock(self.id.raw()))
    }

    /// Immutable access to the partition.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the block is unallocated.
    pub fn partition_ref(&self) -> Result<&(dyn Partition + 'static)> {
        self.partition
            .as_deref()
            .ok_or(JiffyError::UnknownBlock(self.id.raw()))
    }

    /// Marks a repartition as started (threshold events suppressed).
    pub fn set_repartition_in_flight(&mut self, in_flight: bool) {
        self.repartition_in_flight = in_flight;
        if !in_flight {
            // Allow a fresh signal if the block is still outside its
            // comfort band after the repartition.
            self.high_signaled = false;
            self.low_signaled = false;
        }
    }

    /// Finishes a repartition. When `data_moved` is false (file-append
    /// and queue-link splits move no bytes), the high latch stays set:
    /// this block is full *by design* and signalling again would spawn
    /// an endless chain of empty siblings. Data-moving repartitions
    /// clear both latches so a still-hot block can split again.
    pub fn finish_repartition(&mut self, data_moved: bool) {
        self.repartition_in_flight = false;
        self.high_signaled = !data_moved;
        self.low_signaled = false;
    }

    /// Whether a repartition is currently in flight for this block.
    pub fn repartition_in_flight(&self) -> bool {
        self.repartition_in_flight
    }

    /// Executes one operator, returning the result, an optional
    /// notification to fan out to subscribers, and an optional threshold
    /// event for the controller.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (wrong structure, capacity, range).
    pub fn execute(
        &mut self,
        op: &DsOp,
    ) -> Result<(DsResult, Option<Notification>, Option<ThresholdEvent>)> {
        if let Some(new_home) = &self.moved_to {
            return Err(JiffyError::BlockMoved {
                block: new_home.block.raw(),
                server: new_home.server.raw(),
                addr: new_home.addr.clone(),
            });
        }
        if self.sealed && op.kind().is_some() {
            return Err(JiffyError::StaleMetadata);
        }
        let partition = self
            .partition
            .as_deref_mut()
            .ok_or(JiffyError::UnknownBlock(self.id.raw()))?;
        let result = partition.execute(op)?;
        let notification = op.kind().map(|kind| {
            self.seq += 1;
            Notification {
                block: self.id,
                op: kind,
                size: op_payload_size(op),
                seq: self.seq,
            }
        });
        let event = self.check_thresholds();
        Ok((result, notification, event))
    }

    /// Re-evaluates thresholds after out-of-band mutations (absorb,
    /// split_out) and returns a crossing event if one fired.
    pub fn check_thresholds(&mut self) -> Option<ThresholdEvent> {
        if self.repartition_in_flight {
            return None;
        }
        let used = self.used_bytes();
        if used >= self.high_watermark {
            if !self.high_signaled {
                self.high_signaled = true;
                return Some(ThresholdEvent::Overloaded { used: used as u64 });
            }
        } else {
            self.high_signaled = false;
        }
        if used <= self.low_watermark {
            if !self.low_signaled {
                self.low_signaled = true;
                return Some(ThresholdEvent::Underloaded { used: used as u64 });
            }
        } else {
            self.low_signaled = false;
        }
        None
    }

    /// Current per-block operation sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Consults the replay window for a previously executed request.
    /// Checked *before* [`Block::execute`]'s tombstone and seal gates: a
    /// cached result reflects an execution that already took effect (and
    /// whose data is part of any frozen/migrated image), so it is valid
    /// to replay even while the block is sealed.
    pub fn replay_lookup(&mut self, rid: u64) -> Option<DsResult> {
        self.replay.lookup(rid).cloned()
    }

    /// Records an executed request's result in the replay window,
    /// weighted by its egress payload size.
    pub fn replay_record(&mut self, rid: u64, result: &DsResult) {
        self.replay.insert(
            rid,
            result.clone(),
            result.egress_bytes() + REPLAY_ENTRY_OVERHEAD,
        );
    }

    /// Serializes the replay window (shipped with every exported or
    /// repartitioned payload so the destination keeps answering retries).
    ///
    /// # Errors
    ///
    /// Serialization failures.
    pub fn export_replay(&self) -> Result<Vec<u8>> {
        self.replay.export_bytes()
    }

    /// Absorbs a shipped replay window: exact restore into an untouched
    /// window, merge otherwise. Empty input (e.g. a payload reloaded
    /// from the persistent tier, whose images predate any retry window)
    /// is a no-op.
    ///
    /// # Errors
    ///
    /// Malformed bytes.
    pub fn import_replay(&mut self, bytes: &[u8]) -> Result<()> {
        self.replay.import_bytes(bytes)
    }

    /// Number of resident replay-window entries.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Block({}, {}/{} bytes, allocated={})",
            self.id,
            self.used_bytes(),
            self.capacity,
            self.is_allocated()
        )
    }
}

/// Size of the mutation payload, reported in notifications.
fn op_payload_size(op: &DsOp) -> u64 {
    match op {
        DsOp::FileWrite { data, .. } | DsOp::FileAppend { data } => data.len() as u64,
        DsOp::Enqueue { item } => item.len() as u64,
        DsOp::Put { key, value } => (key.len() + value.len()) as u64,
        DsOp::Delete { key } => key.len() as u64,
        _ => 0,
    }
}

/// Convenience: classify a notification-worthy op kind (re-exported for
/// the server's subscription map).
pub fn op_kind(op: &DsOp) -> Option<OpKind> {
    op.kind()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::testutil::BytePile;

    fn pile_block(capacity: usize, low: usize, high: usize) -> Block {
        let mut b = Block::new(BlockId(1), capacity, low, high);
        b.install(Box::new(BytePile {
            capacity,
            data: Vec::new(),
        }))
        .unwrap();
        b
    }

    fn write(n: usize) -> DsOp {
        DsOp::FileWrite {
            offset: 0,
            data: vec![0u8; n].into(),
        }
    }

    #[test]
    fn unallocated_block_rejects_ops() {
        let mut b = Block::new(BlockId(1), 100, 5, 95);
        assert!(b.execute(&write(1)).is_err());
        assert!(!b.is_allocated());
        assert_eq!(b.used_bytes(), 0);
    }

    #[test]
    fn double_install_is_an_error() {
        let mut b = pile_block(100, 5, 95);
        assert!(b
            .install(Box::new(BytePile {
                capacity: 100,
                data: Vec::new()
            }))
            .is_err());
    }

    #[test]
    fn mutations_produce_notifications_with_increasing_seq() {
        let mut b = pile_block(100, 0, 95);
        let (_, n1, _) = b.execute(&write(10)).unwrap();
        let (_, n2, _) = b.execute(&write(10)).unwrap();
        let n1 = n1.unwrap();
        let n2 = n2.unwrap();
        assert_eq!(n1.seq, 1);
        assert_eq!(n2.seq, 2);
        assert_eq!(n1.op, OpKind::Write);
        assert_eq!(n1.size, 10);
        // Reads produce no notification.
        let (_, n3, _) = b.execute(&DsOp::FileRead { offset: 0, len: 1 }).unwrap();
        assert!(n3.is_none());
    }

    #[test]
    fn overload_fires_once_at_high_watermark() {
        let mut b = pile_block(100, 0, 50);
        let (_, _, e1) = b.execute(&write(40)).unwrap();
        assert_eq!(e1, None);
        let (_, _, e2) = b.execute(&write(20)).unwrap();
        assert_eq!(e2, Some(ThresholdEvent::Overloaded { used: 60 }));
        // Still above: no repeat signal.
        let (_, _, e3) = b.execute(&write(10)).unwrap();
        assert_eq!(e3, None);
    }

    #[test]
    fn underload_fires_after_draining() {
        let mut b = pile_block(100, 10, 90);
        // Note: a fresh block starts at 0 bytes which is below the low
        // watermark; the first check latches it without an event only if
        // the first op keeps it below. Write above low first.
        let (_, _, e0) = b.execute(&write(30)).unwrap();
        assert_eq!(e0, None);
        // Truncate (the pile treats Delete as truncate).
        let (_, _, _e) = b.execute(&DsOp::Delete { key: "x".into() }).unwrap();
        let ev = b.check_thresholds();
        // Either the execute or the explicit check reported it, exactly
        // one of them.
        let fired = matches!(_e, Some(ThresholdEvent::Underloaded { .. }))
            ^ matches!(ev, Some(ThresholdEvent::Underloaded { .. }));
        assert!(fired, "exactly one underload event expected");
    }

    #[test]
    fn repartition_in_flight_suppresses_events() {
        let mut b = pile_block(100, 0, 50);
        b.set_repartition_in_flight(true);
        let (_, _, e) = b.execute(&write(80)).unwrap();
        assert_eq!(e, None);
        // Finishing the repartition re-arms the latch.
        b.set_repartition_in_flight(false);
        assert_eq!(
            b.check_thresholds(),
            Some(ThresholdEvent::Overloaded { used: 80 })
        );
    }

    #[test]
    fn reset_returns_block_to_free_state() {
        let mut b = pile_block(100, 0, 50);
        b.execute(&write(30)).unwrap();
        b.reset();
        assert!(!b.is_allocated());
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.seq(), 0);
        // Can be reallocated afterwards.
        b.install(Box::new(BytePile {
            capacity: 100,
            data: Vec::new(),
        }))
        .unwrap();
        assert!(b.is_allocated());
    }

    #[test]
    fn sealed_block_rejects_mutations_but_serves_reads() {
        let mut b = pile_block(100, 0, 95);
        b.execute(&write(10)).unwrap();
        b.set_sealed(true);
        assert!(matches!(
            b.execute(&write(1)),
            Err(JiffyError::StaleMetadata)
        ));
        // Reads still serve the frozen image.
        assert!(b.execute(&DsOp::FileRead { offset: 0, len: 5 }).is_ok());
        // Unsealing restores writes.
        b.set_sealed(false);
        assert!(b.execute(&write(1)).is_ok());
    }

    #[test]
    fn retired_block_redirects_every_op_until_reuse() {
        let mut b = pile_block(100, 0, 95);
        b.execute(&write(10)).unwrap();
        let new_home = Replica {
            block: BlockId(42),
            server: jiffy_common::ServerId(7),
            addr: "inproc:7".into(),
        };
        b.retire(new_home.clone());
        assert!(!b.is_allocated());
        match b.execute(&DsOp::FileRead { offset: 0, len: 1 }) {
            Err(JiffyError::BlockMoved {
                block,
                server,
                addr,
            }) => {
                assert_eq!(block, 42);
                assert_eq!(server, 7);
                assert_eq!(addr, "inproc:7");
            }
            other => panic!("expected BlockMoved, got {other:?}"),
        }
        assert!(matches!(
            b.execute(&write(1)),
            Err(JiffyError::BlockMoved { .. })
        ));
        // Reuse clears the tombstone.
        b.install(Box::new(BytePile {
            capacity: 100,
            data: Vec::new(),
        }))
        .unwrap();
        assert!(b.moved_to().is_none());
        assert!(b.execute(&write(1)).is_ok());
    }

    #[test]
    fn hysteresis_rearms_after_dropping_below_high() {
        let mut b = pile_block(100, 0, 50);
        let (_, _, e) = b.execute(&write(60)).unwrap();
        assert!(matches!(e, Some(ThresholdEvent::Overloaded { .. })));
        // Drain below the watermark.
        b.execute(&DsOp::Delete { key: "x".into() }).unwrap();
        // Cross again: should fire again.
        let (_, _, e2) = b.execute(&write(55)).unwrap();
        assert!(matches!(e2, Some(ThresholdEvent::Overloaded { .. })));
    }
}
