//! Data-plane block abstraction.
//!
//! Jiffy partitions memory-server capacity into fixed-size blocks — the
//! unit of allocation, lease accounting and repartitioning (§3). Each
//! block allocated to a data structure hosts one *partition* of that
//! structure and exposes the operator interface of the paper's Fig. 6
//! (`getBlock` routing happens client-side; `writeOp`/`readOp`/
//! `deleteOp` arrive here as [`jiffy_proto::DsOp`] values).
//!
//! - [`partition`] — the [`Partition`] trait implemented by every data
//!   structure, plus the registry for custom structures.
//! - [`block`] — a fixed-capacity [`Block`]: partition + usage
//!   accounting + high/low-threshold crossing detection with hysteresis.
//! - [`store`] — the per-memory-server [`BlockStore`] mapping block IDs
//!   to blocks.
//!
//! [`Partition`]: partition::Partition
//! [`Block`]: block::Block
//! [`BlockStore`]: store::BlockStore

pub mod block;
pub mod partition;
pub mod store;

pub use block::{Block, ThresholdEvent};
pub use partition::{Partition, PartitionFactory, PartitionRegistry};
pub use store::BlockStore;
