//! The partition operator interface (paper Fig. 6).
//!
//! Every data structure stores its per-block state in a type implementing
//! [`Partition`]. The memory server is completely generic over the
//! structure: it routes [`DsOp`]s to the partition, asks it for its byte
//! usage, and drives repartitioning through [`Partition::split_out`] /
//! [`Partition::absorb`] without knowing what the bytes mean.

use std::collections::HashMap;

use jiffy_common::Result;
use jiffy_proto::{DsOp, DsResult, DsType, SplitSpec};

/// One block's worth of a data structure.
///
/// Implementations enforce the block's byte capacity themselves (they are
/// constructed with it) and report usage through [`Partition::used_bytes`]
/// so the block can detect threshold crossings.
pub trait Partition: Send {
    /// The structure this partition belongs to.
    fn ds_type(&self) -> DsType;

    /// Executes one operator against this partition.
    ///
    /// # Errors
    ///
    /// Structure-specific: wrong operator kind, capacity exhaustion,
    /// out-of-range reads, etc.
    fn execute(&mut self, op: &DsOp) -> Result<DsResult>;

    /// Bytes of payload currently stored (data + per-item metadata).
    fn used_bytes(&self) -> usize;

    /// Serializes the partition's entire contents (for persistent-tier
    /// flush and chain-replica bootstrap).
    ///
    /// # Errors
    ///
    /// Serialization failures only.
    fn export(&self) -> Result<Vec<u8>>;

    /// Replaces or merges `payload` (produced by [`Partition::export`] or
    /// [`Partition::split_out`]) into this partition.
    ///
    /// # Errors
    ///
    /// Decode failures or capacity exhaustion.
    fn absorb(&mut self, payload: &[u8]) -> Result<()>;

    /// Extracts the portion of this partition described by `spec`,
    /// returning it as a payload for the receiving block to
    /// [`Partition::absorb`]. The extracted data is removed from this
    /// partition.
    ///
    /// # Errors
    ///
    /// If the spec does not apply to this structure.
    fn split_out(&mut self, spec: &SplitSpec) -> Result<Vec<u8>>;

    /// Extracts *everything* as absorbable payloads, leaving the
    /// partition empty — used when this block merges into a sibling on
    /// scale-down. Structures that never merge keep the default error.
    ///
    /// # Errors
    ///
    /// [`jiffy_common::JiffyError::Internal`] when the structure does
    /// not support merging.
    fn merge_out(&mut self) -> Result<Vec<Vec<u8>>> {
        Err(jiffy_common::JiffyError::Internal(format!(
            "{} partitions do not support merge_out",
            self.ds_type()
        )))
    }
}

/// Constructs partitions for one data-structure type.
///
/// `params` carries structure-specific initialization (e.g. the KV slot
/// range), wire-encoded by the controller.
pub type PartitionFactory = Box<dyn Fn(usize, &[u8]) -> Result<Box<dyn Partition>> + Send + Sync>;

/// Registry of partition factories, keyed by structure name.
///
/// The built-in structures register under their [`DsType`] display names
/// (`file`, `queue`, `kv_store`); custom structures register under any
/// unique name, which is how the paper's "custom data structures" row of
/// Table 2 is supported.
#[derive(Default)]
pub struct PartitionRegistry {
    factories: HashMap<String, PartitionFactory>,
}

impl PartitionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under `name`, replacing any previous one.
    pub fn register(&mut self, name: impl Into<String>, factory: PartitionFactory) {
        self.factories.insert(name.into(), factory);
    }

    /// Instantiates a partition of type `name` with the given block
    /// capacity and init parameters.
    ///
    /// # Errors
    ///
    /// [`jiffy_common::JiffyError::Internal`] if the name is unknown, or
    /// whatever the factory itself raises.
    pub fn create(&self, name: &str, capacity: usize, params: &[u8]) -> Result<Box<dyn Partition>> {
        let factory = self.factories.get(name).ok_or_else(|| {
            jiffy_common::JiffyError::Internal(format!("unknown data structure: {name}"))
        })?;
        factory(capacity, params)
    }

    /// Whether a factory is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

impl std::fmt::Debug for PartitionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "PartitionRegistry({names:?})")
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use jiffy_common::JiffyError;
    use jiffy_proto::Blob;

    /// Minimal partition used by block/store tests: stores raw bytes via
    /// `FileWrite`-shaped ops up to its capacity.
    pub struct BytePile {
        pub capacity: usize,
        pub data: Vec<u8>,
    }

    impl Partition for BytePile {
        fn ds_type(&self) -> DsType {
            DsType::File
        }

        fn execute(&mut self, op: &DsOp) -> Result<DsResult> {
            match op {
                DsOp::FileWrite { data, .. } => {
                    if self.data.len() + data.len() > self.capacity {
                        return Err(JiffyError::BlockFull {
                            capacity: self.capacity,
                            requested: data.len(),
                        });
                    }
                    self.data.extend_from_slice(data);
                    Ok(DsResult::Size(self.data.len() as u64))
                }
                DsOp::FileRead { offset, len } => {
                    let start = *offset as usize;
                    let end = (start + *len as usize).min(self.data.len());
                    if start > self.data.len() {
                        return Err(JiffyError::OutOfRange {
                            offset: *offset,
                            len: self.data.len() as u64,
                        });
                    }
                    Ok(DsResult::Data(Blob::new(self.data[start..end].to_vec())))
                }
                DsOp::FileSize => Ok(DsResult::Size(self.data.len() as u64)),
                DsOp::Delete { .. } => {
                    // Interpreted as "truncate" for the test pile.
                    self.data.clear();
                    Ok(DsResult::Ok)
                }
                other => Err(JiffyError::WrongDataStructure {
                    expected: "file-like".into(),
                    found: format!("{other:?}"),
                }),
            }
        }

        fn used_bytes(&self) -> usize {
            self.data.len()
        }

        fn export(&self) -> Result<Vec<u8>> {
            Ok(self.data.clone())
        }

        fn absorb(&mut self, payload: &[u8]) -> Result<()> {
            self.data.extend_from_slice(payload);
            Ok(())
        }

        fn split_out(&mut self, _spec: &SplitSpec) -> Result<Vec<u8>> {
            let half = self.data.len() / 2;
            Ok(self.data.split_off(half))
        }
    }

    /// Registers the [`BytePile`] factory under `"pile"`.
    pub fn registry_with_pile() -> PartitionRegistry {
        let mut reg = PartitionRegistry::new();
        reg.register(
            "pile",
            Box::new(|capacity, _params| {
                Ok(Box::new(BytePile {
                    capacity,
                    data: Vec::new(),
                }) as Box<dyn Partition>)
            }),
        );
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::registry_with_pile;
    use super::*;

    #[test]
    fn registry_creates_known_types() {
        let reg = registry_with_pile();
        assert!(reg.contains("pile"));
        let p = reg.create("pile", 100, &[]).unwrap();
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.ds_type(), DsType::File);
    }

    #[test]
    fn registry_rejects_unknown_types() {
        let reg = registry_with_pile();
        assert!(!reg.contains("btree"));
        assert!(reg.create("btree", 100, &[]).is_err());
    }

    #[test]
    fn pile_round_trips_data() {
        let reg = registry_with_pile();
        let mut p = reg.create("pile", 100, &[]).unwrap();
        p.execute(&DsOp::FileWrite {
            offset: 0,
            data: "hello".into(),
        })
        .unwrap();
        let r = p.execute(&DsOp::FileRead { offset: 0, len: 5 }).unwrap();
        assert_eq!(r, DsResult::Data("hello".into()));
        assert_eq!(p.used_bytes(), 5);
    }

    #[test]
    fn pile_enforces_capacity() {
        let reg = registry_with_pile();
        let mut p = reg.create("pile", 4, &[]).unwrap();
        let err = p
            .execute(&DsOp::FileWrite {
                offset: 0,
                data: "hello".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            jiffy_common::JiffyError::BlockFull { capacity: 4, .. }
        ));
    }
}
