//! Loom models for [`BlockStore`]: allocation / reclaim (lease expiry)
//! races on the two-level lock (outer map `RwLock`, per-block `Mutex`).
//!
//! Exhaustive model checking (bounded preemption, see `vendor/loom`):
//!
//! ```text
//! cargo test -p jiffy-block --features loom --test loom_store
//! ```
//!
//! Without the feature, `jiffy_sync::model` runs each body once with real
//! threads, so these double as plain smoke tests in ordinary `cargo test`
//! runs.

use jiffy_block::{Block, BlockStore};
use jiffy_common::{BlockId, JiffyError};
use jiffy_sync::{model, thread, Arc};

fn block(id: u64) -> Block {
    Block::new(BlockId(id), 1024, 51, 973)
}

#[test]
fn concurrent_add_of_one_id_exactly_one_wins() {
    model(|| {
        let store = Arc::new(BlockStore::new());
        let s1 = Arc::clone(&store);
        let s2 = Arc::clone(&store);
        let t1 = thread::spawn(move || s1.add(block(1)).is_ok());
        let t2 = thread::spawn(move || s2.add(block(1)).is_ok());
        let a = t1.join().unwrap();
        let b = t2.join().unwrap();
        assert!(a ^ b, "duplicate-id adds must resolve to exactly one owner");
        assert_eq!(store.len(), 1);
    });
}

#[test]
fn lease_expiry_races_a_reader_without_dangling() {
    model(|| {
        let store = Arc::new(BlockStore::new());
        store.add(block(1)).unwrap();
        // Data-path reader: fetch the handle, then lock the block.
        let sr = Arc::clone(&store);
        let reader = thread::spawn(move || match sr.get(BlockId(1)) {
            Ok(handle) => {
                // The Arc keeps the block alive even if expiry removed it
                // from the map between our get and this lock.
                let guard = handle.lock();
                Some(guard.id())
            }
            Err(e) => {
                assert!(matches!(e, JiffyError::UnknownBlock(1)), "{e:?}");
                None
            }
        });
        // Lease expiry: reclaim the block and inspect it one last time.
        let sx = Arc::clone(&store);
        let expiry = thread::spawn(move || {
            let handle = sx.remove(BlockId(1)).expect("sole remover");
            assert_eq!(handle.lock().id(), BlockId(1));
        });
        let seen = reader.join().unwrap();
        expiry.join().unwrap();
        if let Some(id) = seen {
            assert_eq!(id, BlockId(1));
        }
        assert_eq!(store.len(), 0);
        assert!(store.get(BlockId(1)).is_err());
    });
}

#[test]
fn expiry_vs_reallocation_of_the_same_id_is_consistent() {
    model(|| {
        let store = Arc::new(BlockStore::new());
        store.add(block(1)).unwrap();
        let sx = Arc::clone(&store);
        let expiry = thread::spawn(move || {
            sx.remove(BlockId(1));
        });
        // The controller re-issues the id while expiry is reclaiming it.
        let res = store.add(block(1));
        expiry.join().unwrap();
        match res {
            // Remove came first: the re-add owns the id.
            Ok(()) => assert_eq!(store.len(), 1),
            // Re-add hit the still-present original, which expiry then
            // reclaimed.
            Err(JiffyError::Internal(_)) => assert_eq!(store.len(), 0),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    });
}
