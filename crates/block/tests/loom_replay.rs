//! Loom models for the per-block replay window: the execute-under-lock
//! and window-insert step racing a concurrent retry of the same request
//! id (PR 10's exactly-once core — see DESIGN.md par.16).
//!
//! Exhaustive model checking (bounded preemption, see `vendor/loom`):
//!
//! ```text
//! cargo test -p jiffy-block --features loom --test loom_replay
//! ```
//!
//! Without the feature, `jiffy_sync::model` runs each body once with real
//! threads, so these double as plain smoke tests in ordinary `cargo test`
//! runs.

// Model helpers expect on rig construction; the workspace `expect_used`
// lint is aimed at production data-path code, not test scaffolding.
#![allow(clippy::expect_used)]

use jiffy_block::{Block, BlockStore};
use jiffy_common::BlockId;
use jiffy_proto::DsResult;
use jiffy_sync::atomic::{AtomicUsize, Ordering};
use jiffy_sync::{model, thread, Arc};

fn store_with_block() -> Arc<BlockStore> {
    let store = Arc::new(BlockStore::new());
    store
        .add(Block::new(BlockId(1), 1024, 51, 973))
        .expect("fresh store");
    store
}

/// The server's write path, modelled faithfully: take the block mutex,
/// consult the window, execute only on a miss, record the result before
/// releasing the lock. "Execution" stamps a shared counter so a replayed
/// answer is distinguishable from a re-execution.
fn apply(store: &BlockStore, rid: u64, executed: &AtomicUsize) -> DsResult {
    let handle = store.get(BlockId(1)).expect("block exists");
    let mut guard = handle.lock();
    if let Some(hit) = guard.replay_lookup(rid) {
        return hit;
    }
    let stamp = executed.fetch_add(1, Ordering::SeqCst) as u64;
    let result = DsResult::Size(stamp);
    guard.replay_record(rid, &result);
    result
}

#[test]
fn concurrent_retries_of_one_rid_execute_exactly_once() {
    model(|| {
        let store = store_with_block();
        let executed = Arc::new(AtomicUsize::new(0));
        // A timed-out client fires two concurrent retries of the same
        // logical write (same rid) — e.g. one still in flight to the old
        // head while the re-routed one lands on the promoted replica's
        // window. Both must observe one execution.
        let (s1, e1) = (Arc::clone(&store), Arc::clone(&executed));
        let t1 = thread::spawn(move || apply(&s1, 7, &e1));
        let (s2, e2) = (Arc::clone(&store), Arc::clone(&executed));
        let t2 = thread::spawn(move || apply(&s2, 7, &e2));
        let a = t1.join().expect("no panic");
        let b = t2.join().expect("no panic");
        assert_eq!(a, b, "retry observed a different result than the original");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            1,
            "same-rid retry re-executed the op"
        );
    });
}

#[test]
fn distinct_rids_race_without_cross_talk() {
    model(|| {
        let store = store_with_block();
        let executed = Arc::new(AtomicUsize::new(0));
        let (s1, e1) = (Arc::clone(&store), Arc::clone(&executed));
        let t1 = thread::spawn(move || apply(&s1, 7, &e1));
        let (s2, e2) = (Arc::clone(&store), Arc::clone(&executed));
        let t2 = thread::spawn(move || apply(&s2, 8, &e2));
        let a = t1.join().expect("no panic");
        let b = t2.join().expect("no panic");
        assert_ne!(a, b, "distinct rids must not share a cached result");
        assert_eq!(executed.load(Ordering::SeqCst), 2);
        // Both entries are resident afterwards: a late retry of either
        // rid replays instead of executing a third time.
        assert_eq!(apply(&store, 7, &executed), a);
        assert_eq!(apply(&store, 8, &executed), b);
        assert_eq!(executed.load(Ordering::SeqCst), 2);
    });
}

/// A retry racing the window's migration export (split/merge ships the
/// image while writes continue on the source until the repartition
/// gate closes). Whatever interleaving the checker picks, the exported
/// image must contain the rid's entry iff the retry's answer was
/// recorded before the export — never a torn or half-written entry.
#[test]
fn export_races_a_recording_write_consistently() {
    model(|| {
        let store = store_with_block();
        let executed = Arc::new(AtomicUsize::new(0));
        let (s1, e1) = (Arc::clone(&store), Arc::clone(&executed));
        let writer = thread::spawn(move || apply(&s1, 7, &e1));
        let s2 = Arc::clone(&store);
        let exporter = thread::spawn(move || {
            let handle = s2.get(BlockId(1)).expect("block exists");
            let guard = handle.lock();
            (guard.replay_len(), guard.export_replay().expect("export"))
        });
        let written = writer.join().expect("no panic");
        let (len_at_export, image) = exporter.join().expect("no panic");
        // Import the image into a fresh block: it must round-trip and
        // reflect exactly the entries visible at export time.
        let target = store_with_block();
        let handle = target.get(BlockId(1)).expect("block exists");
        let mut guard = handle.lock();
        guard.import_replay(&image).expect("import");
        assert_eq!(guard.replay_len(), len_at_export);
        if len_at_export == 1 {
            assert_eq!(guard.replay_lookup(7), Some(written));
        } else {
            assert_eq!(guard.replay_lookup(7), None);
        }
    });
}
