//! Loom models for [`ShardedCuckoo`]: insert/lookup/migration races.
//!
//! Exhaustive model checking (bounded preemption, see `vendor/loom`):
//!
//! ```text
//! cargo test -p jiffy-cuckoo --features loom --test loom_sharded
//! ```
//!
//! Without the feature, `jiffy_sync::model` runs each body once with real
//! threads, so these double as plain smoke tests in ordinary `cargo test`
//! runs.
//!
//! All models use an identity router so shard placement is deterministic
//! across schedule replays: key `k` lands in shard `k & (shards - 1)`.

use std::hash::{BuildHasher, Hasher};

use jiffy_cuckoo::ShardedCuckoo;
use jiffy_sync::{model, thread, Arc};

/// Routes key `k` to shard `k & mask` — deterministic, unlike the
/// default `RandomState`, which would make schedule replay diverge.
#[derive(Clone, Default)]
struct IdentityRouter;

struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl BuildHasher for IdentityRouter {
    type Hasher = IdentityHasher;

    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

fn map(shards: usize) -> ShardedCuckoo<u64, u64, IdentityRouter> {
    ShardedCuckoo::with_router(shards, IdentityRouter)
}

#[test]
fn concurrent_same_shard_inserts_do_not_lose_entries() {
    model(|| {
        let m = Arc::new(map(1)); // one shard: both writers contend
        let m1 = Arc::clone(&m);
        let m2 = Arc::clone(&m);
        let t1 = thread::spawn(move || m1.insert(1, 10));
        let t2 = thread::spawn(move || m2.insert(2, 20));
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(m.get(&1), Some(10));
        assert_eq!(m.get(&2), Some(20));
        assert_eq!(m.len(), 2);
    });
}

#[test]
fn concurrent_insert_of_one_key_linearizes() {
    model(|| {
        let m = Arc::new(map(2));
        let m1 = Arc::clone(&m);
        let m2 = Arc::clone(&m);
        let t1 = thread::spawn(move || m1.insert(7, 1));
        let t2 = thread::spawn(move || m2.insert(7, 2));
        let a = t1.join().unwrap();
        let b = t2.join().unwrap();
        // One insert saw the empty slot; the other saw its rival's value,
        // and the final value belongs to whichever ran second.
        match (a, b) {
            (None, Some(1)) => assert_eq!(m.get(&7), Some(2)),
            (Some(2), None) => assert_eq!(m.get(&7), Some(1)),
            other => panic!("non-linearizable insert outcome: {other:?}"),
        }
        assert_eq!(m.len(), 1);
    });
}

#[test]
fn cross_shard_migration_never_shows_the_value_twice() {
    model(|| {
        let m = Arc::new(map(2));
        m.insert(0, 42); // shard 0
        let mv = Arc::clone(&m);
        let migrator = thread::spawn(move || {
            // Repartitioning-style migration: the entry is removed from
            // its old home before it appears at the new one.
            let v = mv.remove(&0).expect("migration source present");
            mv.insert(1, v); // shard 1
        });
        // Concurrent reader. Reading the NEW home first makes "visible in
        // both" impossible to observe legitimately: a populated new home
        // implies the remove already completed, so the subsequent read of
        // the old home must miss.
        let new = m.get(&1);
        let old = m.get(&0);
        assert!(
            !(new.is_some() && old.is_some()),
            "migration exposed the value in both shards"
        );
        for v in [new, old].into_iter().flatten() {
            assert_eq!(v, 42, "reader saw a torn value");
        }
        migrator.join().unwrap();
        assert_eq!(m.get(&0), None);
        assert_eq!(m.get(&1), Some(42));
        assert_eq!(m.len(), 1);
    });
}
