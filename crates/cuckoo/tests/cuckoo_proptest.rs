//! Property tests: [`CuckooMap`] behaves exactly like a model `HashMap`
//! under arbitrary operation sequences, and [`ShardedCuckoo`] stays
//! linearizable under concurrent access from multiple threads.

use jiffy_cuckoo::{CuckooMap, ShardedCuckoo};
use jiffy_sync::Arc;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u16>().prop_map(Op::Remove),
        any::<u16>().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 0..2000)) {
        let mut cuckoo = CuckooMap::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(cuckoo.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(cuckoo.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(cuckoo.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(cuckoo.len(), model.len());
        }
        // Final full-state comparison.
        let mut got: Vec<(u16, u32)> = cuckoo.iter().map(|(k, v)| (*k, *v)).collect();
        let mut want: Vec<(u16, u32)> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dense_keyspace_forces_evictions(keys in proptest::collection::hash_set(0u16..256, 64..256)) {
        // Small keyspace + small initial capacity = heavy eviction and
        // growth activity.
        let mut cuckoo = CuckooMap::with_capacity(4);
        for &k in &keys {
            cuckoo.insert(k, u32::from(k) * 3);
        }
        prop_assert_eq!(cuckoo.len(), keys.len());
        for &k in &keys {
            prop_assert_eq!(cuckoo.get(&k), Some(&(u32::from(k) * 3)));
        }
    }

    #[test]
    fn drain_returns_exact_contents(pairs in proptest::collection::hash_map(any::<u16>(), any::<u32>(), 0..300)) {
        let mut cuckoo = CuckooMap::new();
        for (&k, &v) in &pairs {
            cuckoo.insert(k, v);
        }
        let mut drained = cuckoo.drain();
        drained.sort_unstable();
        let mut want: Vec<(u16, u32)> = pairs.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(drained, want);
        prop_assert!(cuckoo.is_empty());
    }

    #[test]
    fn sharded_concurrent_access_matches_model(
        per_thread_ops in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..400),
            2..5,
        ),
        shards in 1usize..8,
    ) {
        // Each thread owns a disjoint slice of the key space (keys are
        // tagged with the thread index in the high bits), so although the
        // threads interleave arbitrarily inside the shared map, every
        // thread's view of *its own* keys must match a sequential
        // HashMap model — any cross-thread interference (a lost insert,
        // a remove leaking into another shard, a len torn mid-update)
        // shows up as a model divergence.
        let sharded: Arc<ShardedCuckoo<u32, u32>> = Arc::new(ShardedCuckoo::new(shards));
        let mut joins = Vec::new();
        for (t, ops) in per_thread_ops.into_iter().enumerate() {
            let sharded = Arc::clone(&sharded);
            joins.push(std::thread::spawn(move || {
                let tag = (t as u32) << 16;
                let mut model: HashMap<u32, u32> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Insert(k, v) => {
                            let k = tag | u32::from(k);
                            assert_eq!(sharded.insert(k, v), model.insert(k, v));
                        }
                        Op::Remove(k) => {
                            let k = tag | u32::from(k);
                            assert_eq!(sharded.remove(&k), model.remove(&k));
                        }
                        Op::Get(k) => {
                            let k = tag | u32::from(k);
                            assert_eq!(sharded.get(&k), model.get(&k).copied());
                        }
                    }
                }
                model
            }));
        }
        let models: Vec<HashMap<u32, u32>> = joins
            .into_iter()
            .map(|j| j.join().expect("worker thread panicked"))
            .collect();
        // Quiescent state: the union of the per-thread models is exactly
        // the sharded map's contents.
        let want: usize = models.iter().map(HashMap::len).sum();
        prop_assert_eq!(sharded.len(), want);
        for model in &models {
            for (k, v) in model {
                prop_assert_eq!(sharded.get(k), Some(*v));
            }
        }
    }
}
