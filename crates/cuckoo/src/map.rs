//! The core cuckoo hash table.

use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hash};

/// Slots per bucket (4-way set associative, like libcuckoo's default).
const SLOTS: usize = 4;

/// Maximum bucket-chain length explored by the BFS eviction search before
/// the table gives up and grows.
const MAX_BFS_DEPTH: usize = 5;

/// Upper bound on BFS queue size; derived from `SLOTS^MAX_BFS_DEPTH` but
/// capped to keep worst-case insert latency bounded.
const MAX_BFS_NODES: usize = 2048;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
}

type Bucket<K, V> = [Option<Entry<K, V>>; SLOTS];

fn empty_bucket<K, V>() -> Bucket<K, V> {
    [None, None, None, None]
}

/// A cuckoo hash map with two hash functions and 4-way buckets.
///
/// Every key lives in one of exactly two candidate buckets, so `get`,
/// `remove` and `contains` probe at most eight slots. `insert` may
/// relocate existing entries along a BFS-discovered path; if no path of
/// length ≤ 5 exists the table doubles and rehashes.
///
/// # Examples
///
/// ```
/// use jiffy_cuckoo::CuckooMap;
///
/// let mut m = CuckooMap::new();
/// assert_eq!(m.insert("k", 1), None);
/// assert_eq!(m.insert("k", 2), Some(1));
/// assert_eq!(m.get(&"k"), Some(&2));
/// assert_eq!(m.remove(&"k"), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CuckooMap<K, V, S = RandomState> {
    buckets: Vec<Bucket<K, V>>,
    len: usize,
    hasher_a: S,
    hasher_b: S,
}

impl<K: Hash + Eq, V> CuckooMap<K, V, RandomState> {
    /// Creates an empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates an empty map sized for at least `cap` entries without
    /// growing.
    pub fn with_capacity(cap: usize) -> Self {
        // Target a load factor of ~0.8 at `cap` entries.
        let buckets = ((cap as f64 / (SLOTS as f64 * 0.8)).ceil() as usize)
            .next_power_of_two()
            .max(2);
        Self {
            buckets: (0..buckets).map(|_| empty_bucket()).collect(),
            len: 0,
            hasher_a: RandomState::new(),
            hasher_b: RandomState::new(),
        }
    }
}

impl<K: Hash + Eq, V> Default for CuckooMap<K, V, RandomState> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V, S: BuildHasher + Clone> CuckooMap<K, V, S> {
    /// Creates an empty map using the two provided hasher factories.
    pub fn with_hashers(hasher_a: S, hasher_b: S) -> Self {
        Self {
            buckets: (0..2).map(|_| empty_bucket()).collect(),
            len: 0,
            hasher_a,
            hasher_b,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity (buckets × 4).
    pub fn capacity(&self) -> usize {
        self.buckets.len() * SLOTS
    }

    /// Current load factor in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    fn index_a(&self, key: &K) -> usize {
        (self.hasher_a.hash_one(key) as usize) & (self.buckets.len() - 1)
    }

    fn index_b(&self, key: &K) -> usize {
        // Mix so that index_b differs from index_a for almost all keys
        // even with identical hasher seeds.
        let h = self.hasher_b.hash_one(key);
        ((h ^ (h >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize) & (self.buckets.len() - 1)
    }

    fn find_in_bucket(bucket: &Bucket<K, V>, key: &K) -> Option<usize> {
        bucket
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| &e.key == key))
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        for idx in [self.index_a(key), self.index_b(key)] {
            if let Some(slot) = Self::find_in_bucket(&self.buckets[idx], key) {
                return self.buckets[idx][slot].as_ref().map(|e| &e.value);
            }
        }
        None
    }

    /// Looks up a key, returning a mutable value reference.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        for idx in [self.index_a(key), self.index_b(key)] {
            if let Some(slot) = Self::find_in_bucket(&self.buckets[idx], key) {
                return self.buckets[idx][slot].as_mut().map(|e| &mut e.value);
            }
        }
        None
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts a key-value pair, returning the previous value if the key
    /// was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        // Update in place if present.
        for idx in [self.index_a(&key), self.index_b(&key)] {
            if let Some(slot) = Self::find_in_bucket(&self.buckets[idx], &key) {
                #[allow(clippy::expect_used)] // invariant documented in the message
                let entry = self.buckets[idx][slot]
                    .as_mut()
                    .expect("invariant: find_in_bucket returned an occupied slot");
                return Some(std::mem::replace(&mut entry.value, value));
            }
        }
        let mut pending = Entry { key, value };
        loop {
            match self.place(pending) {
                Ok(()) => {
                    self.len += 1;
                    return None;
                }
                Err(e) => {
                    self.grow();
                    pending = e;
                }
            }
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        for idx in [self.index_a(key), self.index_b(key)] {
            if let Some(slot) = Self::find_in_bucket(&self.buckets[idx], key) {
                #[allow(clippy::expect_used)] // invariant documented in the message
                let entry = self.buckets[idx][slot]
                    .take()
                    .expect("invariant: find_in_bucket returned an occupied slot");
                self.len -= 1;
                return Some(entry.value);
            }
        }
        None
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets
            .iter()
            .flatten()
            .filter_map(|e| e.as_ref().map(|e| (&e.key, &e.value)))
    }

    /// Removes and returns all entries, leaving the map empty but with
    /// its capacity intact.
    pub fn drain(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            for slot in bucket.iter_mut() {
                if let Some(e) = slot.take() {
                    out.push((e.key, e.value));
                }
            }
        }
        self.len = 0;
        out
    }

    /// Removes entries for which `pred` returns `true`, returning them.
    pub fn extract_if(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for bucket in &mut self.buckets {
            for slot in bucket.iter_mut() {
                if slot.as_ref().is_some_and(|e| pred(&e.key, &e.value)) {
                    #[allow(clippy::expect_used)] // invariant documented in the message
                    let e = slot.take().expect("invariant: is_some_and guard above");
                    out.push((e.key, e.value));
                }
            }
        }
        self.len -= out.len();
        out
    }

    /// Attempts to place `entry` without growing. On failure returns the
    /// entry back so the caller can grow and retry.
    fn place(&mut self, entry: Entry<K, V>) -> Result<(), Entry<K, V>> {
        let a = self.index_a(&entry.key);
        let b = self.index_b(&entry.key);
        for idx in [a, b] {
            if let Some(slot) = self.buckets[idx].iter().position(Option::is_none) {
                self.buckets[idx][slot] = Some(entry);
                return Ok(());
            }
        }
        // Both candidate buckets full: BFS for a chain of relocations
        // ending in a free slot.
        match self.find_eviction_path(a, b) {
            Some(path) => {
                self.apply_eviction_path(&path);
                // The first bucket on the path now has a free slot.
                let (bucket, _) = path[0];
                #[allow(clippy::expect_used)] // invariant documented in the message
                let slot = self.buckets[bucket]
                    .iter()
                    .position(Option::is_none)
                    .expect("invariant: apply_eviction_path vacated a slot in path[0]");
                self.buckets[bucket][slot] = Some(entry);
                Ok(())
            }
            None => Err(entry),
        }
    }

    /// BFS over (bucket, slot) displacement chains starting from the two
    /// candidate buckets. Returns a path of `(bucket, slot)` hops where
    /// moving each hop's entry to its alternate bucket frees the chain.
    fn find_eviction_path(&self, a: usize, b: usize) -> Option<Vec<(usize, usize)>> {
        #[derive(Clone)]
        struct Node {
            bucket: usize,
            slot: usize,
            parent: Option<usize>,
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new(); // (node idx, depth)
        for start in [a, b] {
            for slot in 0..SLOTS {
                nodes.push(Node {
                    bucket: start,
                    slot,
                    parent: None,
                });
                queue.push_back((nodes.len() - 1, 1));
            }
        }
        while let Some((node_idx, depth)) = queue.pop_front() {
            let (bucket, slot) = {
                let n = &nodes[node_idx];
                (n.bucket, n.slot)
            };
            let entry = match &self.buckets[bucket][slot] {
                Some(e) => e,
                // Shouldn't happen (we only enqueue occupied slots from
                // full buckets), but harmless.
                None => continue,
            };
            // Where would this entry go if displaced?
            let alt = {
                let ia = self.index_a(&entry.key);
                let ib = self.index_b(&entry.key);
                if ia == bucket {
                    ib
                } else {
                    ia
                }
            };
            if let Some(_free) = self.buckets[alt].iter().position(Option::is_none) {
                // Found a terminating bucket with space: reconstruct path.
                let mut path = Vec::new();
                let mut cur = Some(node_idx);
                while let Some(i) = cur {
                    path.push((nodes[i].bucket, nodes[i].slot));
                    cur = nodes[i].parent;
                }
                path.reverse();
                return Some(path);
            }
            if depth < MAX_BFS_DEPTH && nodes.len() < MAX_BFS_NODES {
                for next_slot in 0..SLOTS {
                    nodes.push(Node {
                        bucket: alt,
                        slot: next_slot,
                        parent: Some(node_idx),
                    });
                    queue.push_back((nodes.len() - 1, depth + 1));
                }
            }
        }
        None
    }

    /// Executes the displacement chain from the end backwards so each
    /// move lands in a free slot.
    fn apply_eviction_path(&mut self, path: &[(usize, usize)]) {
        for &(bucket, slot) in path.iter().rev() {
            #[allow(clippy::expect_used)] // invariant documented in the message
            let entry = self.buckets[bucket][slot]
                .take()
                .expect("invariant: the BFS only records occupied slots");
            let ia = self.index_a(&entry.key);
            let ib = self.index_b(&entry.key);
            let alt = if ia == bucket { ib } else { ia };
            #[allow(clippy::expect_used)] // invariant documented in the message
            let free = self.buckets[alt]
                .iter()
                .position(Option::is_none)
                .expect("invariant: later hops already vacated the alternate bucket");
            self.buckets[alt][free] = Some(entry);
        }
    }

    /// Doubles the bucket array and re-places every entry.
    fn grow(&mut self) {
        let new_buckets = self.buckets.len() * 2;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_buckets).map(|_| empty_bucket()).collect(),
        );
        let old_len = self.len;
        self.len = 0;
        let mut spill: Vec<Entry<K, V>> = Vec::new();
        for bucket in old {
            for entry in bucket.into_iter().flatten() {
                match self.place(entry) {
                    Ok(()) => self.len += 1,
                    Err(e) => spill.push(e),
                }
            }
        }
        // Extremely unlikely, but if rehash itself fails, grow again.
        while let Some(entry) = spill.pop() {
            match self.place(entry) {
                Ok(()) => self.len += 1,
                Err(e) => {
                    spill.push(e);
                    self.grow_inner(&mut spill);
                }
            }
        }
        debug_assert_eq!(self.len, old_len);
    }

    /// Helper for the pathological re-grow-during-grow case.
    fn grow_inner(&mut self, spill: &mut Vec<Entry<K, V>>) {
        let new_buckets = self.buckets.len() * 2;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_buckets).map(|_| empty_bucket()).collect(),
        );
        self.len = 0;
        for bucket in old {
            for entry in bucket.into_iter().flatten() {
                match self.place(entry) {
                    Ok(()) => self.len += 1,
                    Err(e) => spill.push(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_basics() {
        let mut m = CuckooMap::new();
        assert_eq!(m.insert(1u64, "one"), None);
        assert_eq!(m.insert(2, "two"), None);
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.insert(1, "uno"), Some("one"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&1), Some("uno"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn survives_many_inserts_with_growth() {
        let mut m = CuckooMap::with_capacity(4);
        for i in 0..10_000u64 {
            assert_eq!(m.insert(i, i * 2), None);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        // Load factor should be sane after growth.
        assert!(m.load_factor() > 0.1 && m.load_factor() <= 1.0);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = CuckooMap::new();
        m.insert("k".to_string(), vec![1, 2]);
        m.get_mut(&"k".to_string()).unwrap().push(3);
        assert_eq!(m.get(&"k".to_string()), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn drain_empties_but_keeps_capacity() {
        let mut m = CuckooMap::with_capacity(128);
        for i in 0..100u32 {
            m.insert(i, i);
        }
        let cap = m.capacity();
        let mut drained = m.drain();
        drained.sort_unstable();
        assert_eq!(drained.len(), 100);
        assert_eq!(drained[0], (0, 0));
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn extract_if_partitions_entries() {
        let mut m = CuckooMap::new();
        for i in 0..100u32 {
            m.insert(i, ());
        }
        let evens = m.extract_if(|k, _| k % 2 == 0);
        assert_eq!(evens.len(), 50);
        assert_eq!(m.len(), 50);
        assert!(m.iter().all(|(k, _)| k % 2 == 1));
    }

    #[test]
    fn iter_sees_every_entry_once() {
        let mut m = CuckooMap::new();
        for i in 0..500u32 {
            m.insert(i, i + 1);
        }
        let collected: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(collected.len(), 500);
        for i in 0..500 {
            assert_eq!(collected[&i], i + 1);
        }
    }

    #[test]
    fn interleaved_insert_remove_matches_model() {
        let mut m = CuckooMap::new();
        let mut model = HashMap::new();
        // Deterministic pseudo-random op sequence.
        let mut state = 0x12345678u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 512;
            match state % 3 {
                0 | 1 => {
                    assert_eq!(m.insert(key, state), model.insert(key, state));
                }
                _ => {
                    assert_eq!(m.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(m.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn string_keys_work() {
        let mut m = CuckooMap::new();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.get(&"key-437".to_string()), Some(&437));
        assert_eq!(m.len(), 1000);
    }
}
