//! Sharded concurrent wrapper over [`CuckooMap`].
//!
//! libcuckoo achieves concurrency with fine-grained bucket locks; we get
//! an equivalent effect by partitioning the key space across independent
//! shards, each guarded by its own lock. Operations on different shards
//! never contend.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};

use jiffy_sync::RwLock;

use crate::map::CuckooMap;

/// A thread-safe cuckoo map sharded by key hash.
///
/// The router hasher is pluggable (defaults to [`RandomState`]) so
/// deterministic tests — the loom models in `tests/loom_sharded.rs`
/// especially — can pin which shard each key lands in.
#[derive(Debug)]
pub struct ShardedCuckoo<K, V, S = RandomState> {
    shards: Vec<RwLock<CuckooMap<K, V>>>,
    router: S,
}

impl<K: Hash + Eq, V> ShardedCuckoo<K, V> {
    /// Creates a map with `shards` independent partitions (rounded up to
    /// a power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_router(shards, RandomState::new())
    }
}

impl<K: Hash + Eq, V, S: BuildHasher> ShardedCuckoo<K, V, S> {
    /// Creates a map routing keys to shards with `router`. Shard count is
    /// rounded up to a power of two, minimum 1.
    pub fn with_router(shards: usize, router: S) -> Self {
        let n = shards.next_power_of_two().max(1);
        Self {
            shards: (0..n).map(|_| RwLock::new(CuckooMap::new())).collect(),
            router,
        }
    }

    fn shard(&self, key: &K) -> &RwLock<CuckooMap<K, V>> {
        let idx = (self.router.hash_one(key) as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Inserts a pair, returning the previous value for the key.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    /// Removes a key, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).read().contains(key)
    }

    /// Total entries across shards (racy under concurrent mutation, exact
    /// when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Clone, S: BuildHasher> ShardedCuckoo<K, V, S> {
    /// Looks up a key, cloning the value out.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_sync::Arc;

    #[test]
    fn basic_operations() {
        let m = ShardedCuckoo::new(8);
        assert_eq!(m.insert(1u64, 10u64), None);
        assert_eq!(m.get(&1), Some(10));
        assert!(m.contains(&1));
        assert_eq!(m.remove(&1), Some(10));
        assert!(m.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedCuckoo<u64, u64> = ShardedCuckoo::new(5);
        assert_eq!(m.shards.len(), 8);
        let m1: ShardedCuckoo<u64, u64> = ShardedCuckoo::new(0);
        assert_eq!(m1.shards.len(), 1);
    }

    #[test]
    fn concurrent_writers_do_not_lose_entries() {
        let m = Arc::new(ShardedCuckoo::new(16));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    m.insert(t * 10_000 + i, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 8000);
        for t in 0..8u64 {
            for i in (0..1000).step_by(97) {
                assert_eq!(m.get(&(t * 10_000 + i)), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let m = Arc::new(ShardedCuckoo::new(4));
        for i in 0..1000u64 {
            m.insert(i, 0u64);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    if i % 2 == 0 {
                        m.remove(&i);
                    } else {
                        m.insert(i, 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All even keys removed, all odd keys present with value 1.
        for i in 0..1000u64 {
            if i % 2 == 0 {
                assert_eq!(m.get(&i), None);
            } else {
                assert_eq!(m.get(&i), Some(1));
            }
        }
    }
}
