//! Cuckoo hashing for Jiffy's KV-store blocks.
//!
//! The paper stores each block's key-value pairs in a cuckoo hash table
//! (libcuckoo) for highly concurrent KV operations (§5.3). This crate is
//! that substrate built from scratch:
//!
//! - [`CuckooMap`] — the core table: two hash functions, 4-way set
//!   associative buckets, breadth-first-search eviction paths, automatic
//!   doubling when an insert cannot find a path.
//! - [`ShardedCuckoo`] — a concurrency wrapper that partitions the key
//!   space over independently locked shards, libcuckoo-style.
//!
//! Lookups probe at most two buckets (eight slots) — constant worst-case
//! read cost, which is what makes cuckoo tables attractive for a memory
//! server's hot path.

pub mod map;
pub mod sharded;

pub use map::CuckooMap;
pub use sharded::ShardedCuckoo;
