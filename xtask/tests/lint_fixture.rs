//! The lint gate must (a) pass on the real repo and (b) fail on the
//! seeded negative fixture, catching every rule.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root")
        .to_path_buf()
}

#[test]
fn real_repo_is_clean() {
    let violations = xtask::lint(&repo_root());
    assert!(
        violations.is_empty(),
        "repo must pass its own lint:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn negative_fixture_trips_every_rule() {
    let fixture = repo_root().join("xtask/fixtures/lint-negative");
    let violations = xtask::lint(&fixture);
    let rules: std::collections::BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
    assert!(
        rules.contains("sync-facade")
            && rules.contains("no-unwrap")
            && rules.contains("error-taxonomy")
            && rules.contains("exhaustive-dispatch")
            && rules.contains("journal-before-ack")
            && rules.contains("internal-rid"),
        "fixture must trip all six rules, got {rules:?}: {violations:?}"
    );
    // The #[cfg(test)] block in the fixture must stay exempt.
    assert!(
        violations.iter().all(|v| v.line < 49),
        "no violations from the fixture's test module: {violations:?}"
    );
    // Exactly the eight seeded non-test violations.
    assert_eq!(violations.len(), 8, "{violations:?}");
}
