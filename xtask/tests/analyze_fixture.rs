//! The analyze gate must (a) pass on the real repo and (b) fail on the
//! seeded negative fixture at exactly the seeded lines, catching every
//! parser-based rule — including the runtime-dump cross-check.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits under the workspace root")
        .to_path_buf()
}

fn fixture_root() -> PathBuf {
    repo_root().join("xtask/fixtures/analyze-negative")
}

#[test]
fn real_repo_is_clean() {
    let violations = xtask::analyze(&repo_root(), None);
    assert!(
        violations.is_empty(),
        "repo must pass its own analyze gate:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn negative_fixture_trips_every_rule_at_seeded_lines() {
    let violations = xtask::analyze(&fixture_root(), None);
    let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
    let want = vec![
        (43, "no-guard-across-rpc"),     // guard live across direct .call(
        (50, "no-guard-across-rpc"),     // RPC one level down via call summary
        (56, "static-lock-order"),       // AB/BA inversion closes a cycle
        (83, "xtask-allow"),             // allow with empty reason
        (84, "no-guard-across-rpc"),     // ...which therefore does not suppress
        (89, "xtask-allow"),             // allow naming an unknown rule
        (146, "no-blocking-in-reactor"), // thread::sleep in EventHandler
        (147, "no-blocking-in-reactor"), // blocking .recv() in EventHandler
    ];
    assert_eq!(got, want, "full output:\n{}", render(&violations));
}

#[test]
fn dump_cross_check_flags_uncovered_and_unmappable_edges() {
    let dump = fixture_root().join("lock_order_dump.txt");
    let violations = xtask::analyze(&fixture_root(), Some(&dump));
    // The alpha -> beta edge is covered by `alpha_then_beta` and must
    // NOT appear; gamma -> delta has no static counterpart and the
    // `:999` endpoint resolves to nothing.
    assert!(
        !render(&violations).contains("app::alpha"),
        "covered edge must not be flagged:\n{}",
        render(&violations)
    );
    let extra: Vec<(usize, &str)> = violations
        .iter()
        .map(|v| (v.line, v.rule))
        .filter(|(l, _)| *l == 33 || *l == 999)
        .collect();
    assert_eq!(
        extra,
        vec![(33, "static-lock-order"), (999, "static-lock-order")],
        "full output:\n{}",
        render(&violations)
    );
    assert_eq!(
        violations.len(),
        10,
        "full output:\n{}",
        render(&violations)
    );
}

#[test]
fn clean_patterns_stay_clean() {
    // vetted_allow / drop_before_call / scoped_guard / deref_copy span
    // lines 93..=121; none of them may fire.
    let violations = xtask::analyze(&fixture_root(), None);
    assert!(
        violations.iter().all(|v| v.line < 93 || v.line > 121),
        "clean patterns fired:\n{}",
        render(&violations)
    );
}

fn render(violations: &[xtask::Violation]) -> String {
    violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}
