//! Brace-tree item parser on top of `lex`: finds functions (with their
//! enclosing `impl`/`trait` context and `#[cfg(test)]` shadowing) and
//! hands each body to `analysis` as a token range.
//!
//! This is deliberately not an expression parser — the analyses only
//! need (a) which tokens belong to which function, (b) whether the
//! function sits in an `impl <Trait> for <Type>` block, and (c) whether
//! it is test-only code. Everything else (guard tracking, receiver
//! chains) is done by scanning the token range with a scope stack in
//! `analysis.rs`.

use crate::lex::{Lexed, Tok, TokKind};
use std::ops::Range;

/// One `fn` item with its body token range (exclusive of the braces).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, inside the outer `{ }`.
    pub body: Range<usize>,
    /// `Some("EventHandler")` for `impl EventHandler for X { .. }`
    /// methods; also set for default methods in `trait Foo { .. }`.
    pub impl_trait: Option<String>,
    /// `Some("ListenerHandler")` for inherent/trait impl methods.
    pub impl_type: Option<String>,
    /// Inside `#[cfg(test)]` or carrying `#[test]`-like attributes.
    pub is_test: bool,
}

/// Extracts every function in the file.
pub fn parse_items(l: &Lexed) -> Vec<FnItem> {
    let mut out = Vec::new();
    let ctx = Ctx {
        impl_trait: None,
        impl_type: None,
        in_test: false,
    };
    scan(&l.toks, 0, l.toks.len(), &ctx, &mut out);
    out
}

#[derive(Clone)]
struct Ctx {
    impl_trait: Option<String>,
    impl_type: Option<String>,
    in_test: bool,
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

fn is_kw(t: &Tok, kw: &str) -> bool {
    t.kind == TokKind::Ident && t.text == kw
}

/// Skips a balanced token group starting at the opener at `i`; returns
/// the index just past the matching closer.
fn skip_group(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if is_punct(&toks[j], open) {
            depth += 1;
        } else if is_punct(&toks[j], close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Whether the attribute tokens (between `#[` and `]`) mark test code:
/// `cfg(test)`, `test`, `cfg(all(test, ..))`, `bench`.
fn attr_is_test(toks: &[Tok]) -> bool {
    let mut saw_cfg = false;
    for t in toks {
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "cfg" => saw_cfg = true,
                "test" => return true,
                "bench" => return true,
                _ => {}
            }
        }
    }
    // `cfg(loom)` and friends are not test regions; only cfg(test)
    // (caught above) counts.
    let _ = saw_cfg;
    false
}

/// Parses an `impl`/`trait` header starting just past the keyword;
/// returns (trait_name, type_name, index_of_body_open_brace).
/// For `impl Type { .. }` the trait is None and the type is the last
/// angle-depth-0 ident before `{`. For `impl Tr for Ty { .. }` the trait
/// is the last angle-depth-0 ident before `for`.
fn parse_impl_header(toks: &[Tok], start: usize) -> (Option<String>, Option<String>, usize) {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut trait_name: Option<String> = None;
    let mut type_name: Option<String> = None;
    // `where` clause idents must not clobber the resolved names.
    let mut frozen = false;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Punct('{') if angle <= 0 => {
                if !frozen {
                    type_name = last_ident.take().or(type_name);
                }
                return (trait_name, type_name, j);
            }
            TokKind::Punct(';') => return (trait_name, type_name, j), // malformed; bail
            TokKind::Ident if angle == 0 && !frozen => {
                if t.text == "for" {
                    trait_name = last_ident.take();
                } else if t.text == "where" {
                    type_name = last_ident.take().or(type_name);
                    frozen = true;
                } else if t.text != "dyn" && t.text != "mut" {
                    last_ident = Some(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (trait_name, type_name, j)
}

fn scan(toks: &[Tok], mut i: usize, end: usize, ctx: &Ctx, out: &mut Vec<FnItem>) {
    let mut pending_test = false;
    while i < end {
        let t = &toks[i];
        if is_punct(t, '#') {
            // Attribute: `#[..]` or inner `#![..]`.
            let mut j = i + 1;
            if j < end && is_punct(&toks[j], '!') {
                j += 1;
            }
            if j < end && is_punct(&toks[j], '[') {
                let close = skip_group(toks, j, '[', ']');
                if attr_is_test(&toks[j + 1..close.saturating_sub(1)]) {
                    pending_test = true;
                }
                i = close;
                continue;
            }
            i += 1;
            continue;
        }
        if is_kw(t, "impl") || is_kw(t, "trait") {
            let is_trait_def = t.text == "trait";
            let (mut tr, mut ty, brace) = parse_impl_header(toks, i + 1);
            if brace >= end || !is_punct(&toks[brace], '{') {
                i = brace.max(i + 1);
                pending_test = false;
                continue;
            }
            if is_trait_def {
                // `trait Foo { .. }`: default-method bodies belong to the
                // trait; record the trait name as the impl_trait so rules
                // scoped to trait impls can see defaults too.
                tr = ty.take();
            }
            let body_end = skip_group(toks, brace, '{', '}');
            let inner = Ctx {
                impl_trait: tr,
                impl_type: ty,
                in_test: ctx.in_test || pending_test,
            };
            scan(toks, brace + 1, body_end.saturating_sub(1), &inner, out);
            i = body_end;
            pending_test = false;
            continue;
        }
        if is_kw(t, "mod") {
            // `mod name { .. }` or `mod name;`
            let mut j = i + 1;
            while j < end && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
                j += 1;
            }
            if j < end && is_punct(&toks[j], '{') {
                let body_end = skip_group(toks, j, '{', '}');
                let inner = Ctx {
                    impl_trait: None,
                    impl_type: None,
                    in_test: ctx.in_test || pending_test,
                };
                scan(toks, j + 1, body_end.saturating_sub(1), &inner, out);
                i = body_end;
            } else {
                i = j + 1;
            }
            pending_test = false;
            continue;
        }
        if is_kw(t, "fn") {
            let name = match toks.get(i + 1) {
                Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let line = t.line;
            // Find the body `{` or a `;` (trait method signature),
            // skipping balanced parens/brackets so closure bodies in
            // default args can't fool us. Angle depth guards `->`
            // return types like `Fn() -> T`.
            let mut j = i + 2;
            let mut body_open = None;
            while j < end {
                let tj = &toks[j];
                if is_punct(tj, '(') {
                    j = skip_group(toks, j, '(', ')');
                    continue;
                }
                if is_punct(tj, '[') {
                    j = skip_group(toks, j, '[', ']');
                    continue;
                }
                if is_punct(tj, '{') {
                    body_open = Some(j);
                    break;
                }
                if is_punct(tj, ';') {
                    break;
                }
                j += 1;
            }
            let Some(open) = body_open else {
                i = j + 1;
                pending_test = false;
                continue;
            };
            let body_end = skip_group(toks, open, '{', '}');
            out.push(FnItem {
                name,
                line,
                body: (open + 1)..body_end.saturating_sub(1),
                impl_trait: ctx.impl_trait.clone(),
                impl_type: ctx.impl_type.clone(),
                is_test: ctx.in_test || pending_test,
            });
            // Nested fns (rare) still get their own entry.
            let inner = Ctx {
                impl_trait: None,
                impl_type: None,
                in_test: ctx.in_test || pending_test,
            };
            scan(toks, open + 1, body_end.saturating_sub(1), &inner, out);
            i = body_end;
            pending_test = false;
            continue;
        }
        // Any other balanced group at item level (static initializers,
        // use groups): skip it wholesale so stray braces can't desync
        // the item walk.
        if is_punct(t, '{') {
            i = skip_group(toks, i, '{', '}');
            pending_test = false;
            continue;
        }
        if t.kind == TokKind::Ident || !matches!(t.kind, TokKind::Punct(_)) {
            pending_test = pending_test && !is_item_terminator(t);
        }
        i += 1;
    }
}

/// Identifiers that end the influence of a pending `#[cfg(test)]`-style
/// attribute without opening a region we recurse into (e.g. `use`,
/// `static`, `const` items the attribute was attached to).
fn is_item_terminator(t: &Tok) -> bool {
    matches!(
        t.text.as_str(),
        "use" | "static" | "const" | "type" | "struct" | "enum"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn finds_plain_and_impl_fns() {
        let src = r#"
            fn top() { body(); }
            struct S;
            impl S {
                fn inherent(&self) -> u32 { 1 }
            }
            impl EventHandler for S {
                fn fd(&self) -> RawFd { 0 }
                fn on_ready(&self, r: bool, w: bool) -> bool { true }
            }
        "#;
        let fns = items(src);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "inherent", "fd", "on_ready"]);
        assert_eq!(fns[0].impl_trait, None);
        assert_eq!(fns[1].impl_trait, None);
        assert_eq!(fns[1].impl_type.as_deref(), Some("S"));
        assert_eq!(fns[2].impl_trait.as_deref(), Some("EventHandler"));
        assert_eq!(fns[3].impl_trait.as_deref(), Some("EventHandler"));
        assert_eq!(fns[3].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impl_headers_resolve() {
        let src =
            "impl<T: Clone + Send> Handler<T> for Wrapper<T> where T: Sized { fn go(&self) {} }";
        let fns = items(src);
        assert_eq!(fns[0].impl_trait.as_deref(), Some("Handler"));
        assert_eq!(fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn cfg_test_regions_mark_fns() {
        let src = r#"
            fn live() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
            #[test]
            fn toplevel_case() {}
            fn also_live() {}
        "#;
        let fns = items(src);
        let by_name: std::collections::HashMap<_, _> =
            fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert!(!by_name["live"]);
        assert!(by_name["helper"]);
        assert!(by_name["case"]);
        assert!(by_name["toplevel_case"]);
        assert!(!by_name["also_live"]);
    }

    #[test]
    fn trait_default_methods_carry_trait_name() {
        let src = "trait Conn { fn call(&self) -> u32 { self.raw() } fn raw(&self) -> u32; }";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "call");
        assert_eq!(fns[0].impl_trait.as_deref(), Some("Conn"));
    }

    #[test]
    fn signature_only_fns_are_skipped_and_bodies_ranged() {
        let src = "fn f(x: u32) -> u32 { let y = x; y }";
        let l = lex(src);
        let fns = parse_items(&l);
        assert_eq!(fns.len(), 1);
        let body: Vec<_> = l.toks[fns[0].body.clone()]
            .iter()
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(body, vec!["let", "y", "=", "x", ";", "y"]);
    }
}
