//! `cargo xtask <command>` — workspace automation.
//!
//! Commands:
//!   lint [ROOT]   run the repo-invariant static checks (default command;
//!                 ROOT defaults to the workspace root via
//!                 CARGO_MANIFEST_DIR). Exits 1 if any rule fires.
//!   bench-smoke   run every criterion bench in quick mode
//!                 (JIFFY_BENCH_QUICK=1: fixed low sample count) plus the
//!                 dataplane throughput bin — a compile-and-run gate, not
//!                 a measurement. Exits 1 if any bench fails to run.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "lint".to_string());
    match cmd.as_str() {
        "lint" => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(|| {
                // xtask/ lives directly under the workspace root.
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .parent()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("."))
            });
            let violations = xtask::lint(&root);
            if violations.is_empty() {
                eprintln!("xtask lint: ok ({} rules clean)", 5);
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        "bench-smoke" => bench_smoke(),
        other => {
            eprintln!("unknown xtask command `{other}` (expected: lint, bench-smoke)");
            ExitCode::FAILURE
        }
    }
}

/// Runs the criterion suite and the dataplane throughput bin in quick
/// mode. Proves the benches compile and complete; discards the numbers.
fn bench_smoke() -> ExitCode {
    let steps: [(&str, &[&str]); 2] = [
        ("criterion benches", &["bench", "-p", "jiffy-bench"]),
        (
            "dataplane throughput bin",
            &[
                "run",
                "--release",
                "-p",
                "jiffy-bench",
                "--bin",
                "dataplane_throughput",
            ],
        ),
    ];
    for (what, cargo_args) in steps {
        eprintln!("xtask bench-smoke: running {what}");
        let status = Command::new(env!("CARGO"))
            .args(cargo_args)
            .env("JIFFY_BENCH_QUICK", "1")
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask bench-smoke: {what} failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench-smoke: failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("xtask bench-smoke: ok");
    ExitCode::SUCCESS
}
