//! `cargo xtask <command>` — workspace automation.
//!
//! Commands:
//!   lint [ROOT] [--rule NAME] [--json]
//!                 run the repo-invariant line-based checks (default
//!                 command; ROOT defaults to the workspace root via
//!                 CARGO_MANIFEST_DIR). Exits 1 if any rule fires.
//!   analyze [ROOT] [--rule NAME] [--json] [--lock-order-dump PATH]
//!                 run the parser-based concurrency checks
//!                 (guard-liveness, reactor blocking, static lock
//!                 order). With --lock-order-dump, also cross-check the
//!                 static acquisition graph against a
//!                 JIFFY_LOCK_ORDER_DUMP capture from the debug test
//!                 suite. Exits 1 if any rule fires.
//!   bench-smoke   run every criterion bench in quick mode
//!                 (JIFFY_BENCH_QUICK=1: fixed low sample count) plus the
//!                 dataplane throughput and noisy neighbor bins — a
//!                 compile-and-run gate, not a measurement. Exits 1 if
//!                 any bench fails to run.
//!
//! `--json` prints one object per violation on stdout
//! (`{"file":..,"line":..,"rule":..,"message":..}` inside a top-level
//! array) so CI annotations and editor integrations don't parse the
//! human text.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use xtask::{RulePhase, Violation};

struct Opts {
    root: PathBuf,
    rule: Option<String>,
    json: bool,
    lock_order_dump: Option<PathBuf>,
}

fn parse_opts(args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut opts = Opts {
        root: default_root(),
        rule: None,
        json: false,
        lock_order_dump: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--rule" => {
                let name = args.next().ok_or("--rule requires a rule name")?;
                if !xtask::is_known_rule(&name) {
                    let known: Vec<&str> = xtask::RULES.iter().map(|r| r.name).collect();
                    return Err(format!(
                        "unknown rule `{name}` (known: {})",
                        known.join(", ")
                    ));
                }
                opts.rule = Some(name);
            }
            "--lock-order-dump" => {
                let p = args.next().ok_or("--lock-order-dump requires a path")?;
                opts.lock_order_dump = Some(PathBuf::from(p));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            root => opts.root = PathBuf::from(root),
        }
    }
    Ok(opts)
}

fn default_root() -> PathBuf {
    // xtask/ lives directly under the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "lint".to_string());
    match cmd.as_str() {
        "lint" | "analyze" => {
            let opts = match parse_opts(args) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("xtask {cmd}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (phase, mut violations) = if cmd == "lint" {
                (RulePhase::Lint, xtask::lint(&opts.root))
            } else {
                (
                    RulePhase::Analyze,
                    xtask::analyze(&opts.root, opts.lock_order_dump.as_deref()),
                )
            };
            if let Some(rule) = &opts.rule {
                violations.retain(|v| v.rule == rule.as_str());
            }
            report(&cmd, phase, &violations, &opts)
        }
        "bench-smoke" => bench_smoke(),
        other => {
            eprintln!("unknown xtask command `{other}` (expected: lint, analyze, bench-smoke)");
            ExitCode::FAILURE
        }
    }
}

fn report(cmd: &str, phase: RulePhase, violations: &[Violation], opts: &Opts) -> ExitCode {
    if opts.json {
        println!("{}", to_json(violations));
    } else {
        for v in violations {
            eprintln!("{v}");
        }
    }
    if violations.is_empty() {
        let scope = match &opts.rule {
            Some(rule) => format!("rule `{rule}` clean"),
            None => format!("{} rules clean", xtask::rule_count(phase)),
        };
        eprintln!("xtask {cmd}: ok ({scope})");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask {cmd}: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Manual JSON serialization — xtask is dependency-free by design.
fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&v.path.display().to_string()),
            v.line,
            json_escape(v.rule),
            json_escape(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the criterion suite and the dataplane throughput bin in quick
/// mode. Proves the benches compile and complete; discards the numbers.
fn bench_smoke() -> ExitCode {
    let steps: [(&str, &[&str]); 4] = [
        ("criterion benches", &["bench", "-p", "jiffy-bench"]),
        (
            "dataplane throughput bin",
            &[
                "run",
                "--release",
                "-p",
                "jiffy-bench",
                "--bin",
                "dataplane_throughput",
            ],
        ),
        (
            "noisy neighbor bin",
            &[
                "run",
                "--release",
                "-p",
                "jiffy-bench",
                "--bin",
                "noisy_neighbor",
            ],
        ),
        (
            "controller shards bin",
            &[
                "run",
                "--release",
                "-p",
                "jiffy-bench",
                "--bin",
                "controller_shards",
            ],
        ),
    ];
    for (what, cargo_args) in steps {
        eprintln!("xtask bench-smoke: running {what}");
        let status = Command::new(env!("CARGO"))
            .args(cargo_args)
            .env("JIFFY_BENCH_QUICK", "1")
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask bench-smoke: {what} failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench-smoke: failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("xtask bench-smoke: ok");
    ExitCode::SUCCESS
}
