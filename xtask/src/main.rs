//! `cargo xtask <command>` — workspace automation.
//!
//! Commands:
//!   lint [ROOT]   run the repo-invariant static checks (default command;
//!                 ROOT defaults to the workspace root via
//!                 CARGO_MANIFEST_DIR). Exits 1 if any rule fires.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "lint".to_string());
    match cmd.as_str() {
        "lint" => {
            let root = args.next().map(PathBuf::from).unwrap_or_else(|| {
                // xtask/ lives directly under the workspace root.
                PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .parent()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("."))
            });
            let violations = xtask::lint(&root);
            if violations.is_empty() {
                eprintln!("xtask lint: ok ({} rules clean)", 4);
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown xtask command `{other}` (expected: lint)");
            ExitCode::FAILURE
        }
    }
}
