//! `cargo xtask analyze` — parser-based concurrency rules.
//!
//! Built on `lex` (token stream) + `parse` (function items), this module
//! runs a per-function **guard-liveness** pass: every `let g = x.lock()` /
//! `.read()` / `.write()` binding is tracked from acquisition to scope
//! end, `drop(g)`, or shadowing; bare `.lock()` temporaries are live to
//! the end of their statement. On top of liveness sit three rules:
//!
//! * **no-guard-across-rpc** — no jiffy-sync guard may be live across a
//!   transport call (`.call(..)`), a journal write (`journal.append`,
//!   `journal_append`), or `ObjectStore` I/O (any method on a
//!   `persistent` receiver). Guards held across a call to a same-crate
//!   function that *directly* performs RPC are also caught (one level of
//!   call-summary propagation).
//! * **no-blocking-in-reactor** — methods of `impl EventHandler for ..`
//!   blocks may not call blocking primitives (`thread::sleep`/`park`,
//!   zero-arg `.join()`/`.recv()`, condvar/`recv_timeout` waits), nor
//!   same-crate functions that directly do.
//! * **static-lock-order** — nested-guard regions yield a static
//!   acquisition graph; a cycle is a latent deadlock. With
//!   `--lock-order-dump <file>` (a `JIFFY_LOCK_ORDER_DUMP` capture from
//!   the debug test suite) every runtime-observed edge must appear in
//!   the *reachability-closed* static graph — a missing edge means the
//!   analyzer lost track of a nesting and its cycle check has a blind
//!   spot.
//!
//! Vetted sites are suppressed with `// xtask-allow(<rule>): <reason>`
//! on the violation line, the line above it, or the guard's binding
//! line; an empty reason or unknown rule name is itself a violation
//! (rule **xtask-allow**).
//!
//! Known false negatives (documented in DESIGN.md §13): guards bound by
//! `if let Some(g) = x.try_lock()` patterns, calls routed through
//! non-`call` trait objects, and nesting deeper than one call level are
//! invisible to the *rule* passes (the reach graph used by the dump
//! cross-check closes calls transitively and catches regressions there).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use crate::lex::{self, Lexed, Tok, TokKind};
use crate::parse::{self, FnItem};
use crate::Violation;

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const TRY_LOCK_METHODS: &[&str] = &["try_lock", "try_read", "try_write"];
/// Condvar/channel waits that park the calling thread.
const BLOCKING_WAITS: &[&str] = &[
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_for",
];

// ---------------------------------------------------------------------
// Events: the guard-liveness walker's flat output per function.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Event {
    /// A lock acquisition. `binding: None` is a temporary (statement
    /// scope); `Some(name)` is a `let` guard (lexical scope).
    Acquire {
        class: String,
        line: usize,
        binding: Option<String>,
        depth: usize,
    },
    /// A `let` guard leaves scope (brace close, `drop(g)`, shadowing).
    Release { binding: String },
    /// End of statement/arm at `depth`: temporaries at >= depth die.
    TempFence { depth: usize },
    /// A (possibly method) call that may carry a summary.
    Call {
        name: String,
        line: usize,
        method: bool,
        recv_last: Option<String>,
        /// Whether bare-name call summaries may apply: free functions and
        /// methods rooted at `self` (`self.helper()`, `self.field.m()`).
        /// Methods on locals, guards, or call results share names too
        /// freely across types for name-keyed summaries to be sound.
        summary_ok: bool,
    },
    /// A directly blocking primitive (`thread::sleep`, `.join()`, ...).
    Blocking { what: String, line: usize },
}

/// Receiver-chain classification for `<chain>.method(..)`.
#[derive(Debug, Clone, PartialEq)]
enum Recv {
    /// `self.a.b` — field `b` of a type in this crate.
    SelfField(String),
    /// Plain local `g`.
    Local(String),
    /// `CLIENT_REACTORS` — a static, by ALL_CAPS convention.
    Static(String),
    /// `self.shard(i)` — the result of a call; resolved via the
    /// handle-alias table when the callee just returns a self-field.
    CallResult(String),
    Opaque,
}

impl Recv {
    fn last_ident(&self) -> Option<&str> {
        match self {
            Recv::SelfField(n) | Recv::Local(n) | Recv::Static(n) | Recv::CallResult(n) => Some(n),
            Recv::Opaque => None,
        }
    }
}

/// Walks a receiver chain backwards from token index `k` (the last
/// token of the receiver expression).
fn chain_recv(toks: &[Tok], mut k: usize) -> Recv {
    let mut names: Vec<String> = Vec::new();
    loop {
        match toks.get(k).map(|t| &t.kind) {
            Some(TokKind::Punct('?')) => {
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            Some(TokKind::Punct(')')) => {
                // Balanced call or group; only meaningful as the chain's
                // rightmost element (a method-result receiver).
                let open = balance_back(toks, k, '(', ')');
                if names.is_empty() {
                    if let (Some(o), Some(m)) = (open, open.and_then(|o| o.checked_sub(1))) {
                        let _ = o;
                        if toks[m].kind == TokKind::Ident {
                            return Recv::CallResult(toks[m].text.clone());
                        }
                    }
                    return Recv::Opaque;
                }
                break;
            }
            Some(TokKind::Punct(']')) => {
                // Indexing is transparent: `self.shards[i]` ~ `self.shards`.
                match balance_back(toks, k, '[', ']') {
                    Some(open) if open > 0 => k = open - 1,
                    _ => break,
                }
            }
            Some(TokKind::Ident) => {
                names.push(toks[k].text.clone());
                // Continue through `a.b` field chains and `mod::X` paths.
                if k >= 2 && toks[k - 1].kind == TokKind::Punct('.') {
                    k -= 2;
                } else if k >= 3
                    && toks[k - 1].kind == TokKind::Punct(':')
                    && toks[k - 2].kind == TokKind::Punct(':')
                {
                    k -= 3;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    // `names` is rightmost-first.
    match names.as_slice() {
        [] => Recv::Opaque,
        [one] => {
            if one
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            {
                Recv::Static(one.clone())
            } else {
                Recv::Local(one.clone())
            }
        }
        [right, .., left] => {
            if left == "self" {
                Recv::SelfField(right.clone())
            } else {
                // `module::STATIC.lock()` and friends: classify by the
                // rightmost ident.
                if right
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                {
                    Recv::Static(right.clone())
                } else {
                    Recv::Local(right.clone())
                }
            }
        }
    }
}

/// Finds the opener matching the closer at `k`, scanning backwards.
fn balance_back(toks: &[Tok], k: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = k;
    loop {
        match toks[j].kind {
            TokKind::Punct(c) if c == close => depth += 1,
            TokKind::Punct(c) if c == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

fn is_keyword_call(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "in"
            | "as"
            | "let"
            | "else"
            | "fn"
            | "impl"
            | "ref"
            | "mut"
            | "box"
            | "unsafe"
    )
}

fn starts_uppercase(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

// ---------------------------------------------------------------------
// The walker: fn body tokens -> events.
// ---------------------------------------------------------------------

struct PendingLet {
    depth: usize,
    ident: Option<String>,
}

fn walk_fn(toks: &[Tok], body: std::ops::Range<usize>) -> Vec<Event> {
    let mut events = Vec::new();
    let mut depth = 0usize;
    // Bindings declared per open scope (index = depth).
    let mut scopes: Vec<Vec<String>> = vec![Vec::new()];
    let mut pending: Vec<PendingLet> = Vec::new();
    // (event index, token index of the lock-method ident) of the most
    // recent acquisition, for upgrading statement-tail locks to guards.
    let mut last_acquire: Option<(usize, usize)> = None;

    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                scopes.push(Vec::new());
            }
            TokKind::Punct('}') => {
                if let Some(bindings) = scopes.pop() {
                    for b in bindings {
                        events.push(Event::Release { binding: b });
                    }
                }
                events.push(Event::TempFence { depth });
                pending.retain(|p| p.depth < depth);
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct(';') | TokKind::Punct(',') => {
                if t.kind == TokKind::Punct(';') {
                    // Finalize a pending `let` at this depth: if the
                    // statement ends in `.lock()` / `.read()` / `.write()`
                    // the acquisition becomes a scoped guard.
                    if let Some(pos) = pending.iter().rposition(|p| p.depth == depth) {
                        let p = pending.remove(pos);
                        if let (Some(ident), Some((ev_idx, lock_tok))) = (p.ident, last_acquire) {
                            let tail_matches = i >= 3
                                && lock_tok == i - 3
                                && toks[i - 1].kind == TokKind::Punct(')')
                                && toks[i - 2].kind == TokKind::Punct('(');
                            if tail_matches {
                                if let Event::Acquire { binding, .. } = &mut events[ev_idx] {
                                    *binding = Some(ident.clone());
                                }
                                if let Some(scope) = scopes.last_mut() {
                                    scope.push(ident);
                                }
                            }
                        }
                    }
                }
                events.push(Event::TempFence { depth });
            }
            TokKind::Ident if t.text == "let" => {
                // Extract a simple pattern ident: `let [mut] g [: T] = ..`.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                let mut ident = match toks.get(j) {
                    Some(n) if n.kind == TokKind::Ident && !starts_uppercase(&n.text) => {
                        Some(n.text.clone())
                    }
                    _ => None,
                };
                // `let v = *x.lock();` copies the value out — the binding
                // is data, not a guard; the guard is a temporary.
                let mut k = j;
                while k < body.end && k < j + 24 {
                    match toks[k].kind {
                        TokKind::Punct('=') => {
                            if toks
                                .get(k + 1)
                                .is_some_and(|n| n.kind == TokKind::Punct('*'))
                            {
                                ident = None;
                            }
                            break;
                        }
                        TokKind::Punct(';') | TokKind::Punct('{') => break,
                        _ => k += 1,
                    }
                }
                pending.push(PendingLet { depth, ident });
            }
            TokKind::Ident => {
                let name = &t.text;
                let next = toks.get(i + 1);
                let is_macro = next.is_some_and(|n| n.kind == TokKind::Punct('!'));
                let is_call = next.is_some_and(|n| n.kind == TokKind::Punct('('));
                let is_method = i > body.start && toks[i - 1].kind == TokKind::Punct('.');
                let zero_args = is_call
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.kind == TokKind::Punct(')'));

                if is_call && !is_macro {
                    // Lock acquisitions.
                    let is_lock = LOCK_METHODS.contains(&name.as_str());
                    let is_try = TRY_LOCK_METHODS.contains(&name.as_str());
                    if is_method && zero_args && (is_lock || is_try) {
                        let recv = if i >= 2 {
                            chain_recv(toks, i - 2)
                        } else {
                            Recv::Opaque
                        };
                        events.push(Event::Acquire {
                            class: String::new(), // resolved later w/ crate + aliases
                            line: t.line,
                            binding: None,
                            depth,
                        });
                        // Stash the receiver classification in the class
                        // slot via a sentinel encoding (resolved in
                        // `resolve_classes`).
                        if let Some(Event::Acquire { class, .. }) = events.last_mut() {
                            *class = encode_recv(&recv);
                        }
                        // try_* results are `Option`; they never match the
                        // statement-tail guard upgrade (good: the binding
                        // is the Option, not a guard).
                        if is_lock {
                            last_acquire = Some((events.len() - 1, i));
                        }
                        i += 1;
                        continue;
                    }

                    // Blocking primitives by path: thread::sleep / park.
                    let path_root = if i >= 3
                        && toks[i - 1].kind == TokKind::Punct(':')
                        && toks[i - 2].kind == TokKind::Punct(':')
                    {
                        Some(toks[i - 3].text.as_str())
                    } else {
                        None
                    };
                    if path_root == Some("thread")
                        && matches!(name.as_str(), "sleep" | "park" | "park_timeout")
                    {
                        events.push(Event::Blocking {
                            what: format!("thread::{name}"),
                            line: t.line,
                        });
                        i += 1;
                        continue;
                    }

                    // Blocking primitives by method shape.
                    let is_blocking_method = is_method
                        && ((zero_args && (name == "join" || name == "recv"))
                            || BLOCKING_WAITS.contains(&name.as_str()));
                    if is_blocking_method {
                        events.push(Event::Blocking {
                            what: format!(".{name}(..)"),
                            line: t.line,
                        });
                        i += 1;
                        continue;
                    }

                    // `drop(g)` releases a guard early.
                    if !is_method && name == "drop" {
                        if let (Some(arg), Some(close)) = (toks.get(i + 2), toks.get(i + 3)) {
                            if arg.kind == TokKind::Ident && close.kind == TokKind::Punct(')') {
                                events.push(Event::Release {
                                    binding: arg.text.clone(),
                                });
                            }
                        }
                    }

                    if !is_keyword_call(name) && !starts_uppercase(name) {
                        let recv = if is_method && i >= 2 {
                            Some(chain_recv(toks, i - 2))
                        } else {
                            None
                        };
                        let summary_ok = match &recv {
                            None => true,
                            Some(Recv::Local(n)) => n == "self",
                            Some(Recv::SelfField(_)) => true,
                            Some(_) => false,
                        };
                        events.push(Event::Call {
                            name: name.clone(),
                            line: t.line,
                            method: is_method,
                            recv_last: recv
                                .as_ref()
                                .and_then(|r| r.last_ident())
                                .map(str::to_string),
                            summary_ok,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Close the implicit function scope.
    if let Some(bindings) = scopes.pop() {
        for b in bindings {
            events.push(Event::Release { binding: b });
        }
    }
    events.push(Event::TempFence { depth: 0 });
    events
}

/// The walker stores the raw receiver classification inline; `resolve`
/// turns it into a class name once the crate and alias table are known.
fn encode_recv(r: &Recv) -> String {
    match r {
        Recv::SelfField(n) => format!("F:{n}"),
        Recv::Local(n) => format!("L:{n}"),
        Recv::Static(n) => format!("S:{n}"),
        Recv::CallResult(n) => format!("C:{n}"),
        Recv::Opaque => "O:".to_string(),
    }
}

fn resolve_class(
    encoded: &str,
    krate: &str,
    aliases: &HashMap<(String, String), String>,
) -> String {
    let (tag, name) = encoded.split_at(2.min(encoded.len()));
    match tag {
        "F:" | "S:" => format!("{krate}::{name}"),
        "L:" => name.to_string(),
        "C:" => aliases
            .get(&(krate.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_else(|| name.to_string()),
        _ => "?expr".to_string(),
    }
}

// ---------------------------------------------------------------------
// Per-function facts and workspace summaries.
// ---------------------------------------------------------------------

struct FnFacts {
    name: String,
    krate: String,
    rel: PathBuf,
    impl_trait: Option<String>,
    events: Vec<Event>,
    /// Classes acquired directly anywhere in the body.
    direct_classes: BTreeSet<String>,
    /// Direct RPC markers: (line, description).
    direct_rpc: Vec<(usize, String)>,
    /// Direct blocking markers: (line, description).
    direct_blocking: Vec<(usize, String)>,
    /// Names of everything this function calls.
    calls: BTreeSet<String>,
}

/// Describes why a call counts as a transport/IO boundary, if it does.
fn rpc_marker(name: &str, method: bool, recv_last: Option<&str>) -> Option<String> {
    if method && name == "call" {
        return Some("transport call `.call(..)`".to_string());
    }
    if name == "journal_append" {
        return Some("journal write (`journal_append` persists to the object store)".to_string());
    }
    // Handle plumbing on a store/journal handle is not I/O.
    if matches!(
        name,
        "clone" | "as_ref" | "is_some" | "is_none" | "len" | "is_empty" | "take"
    ) {
        return None;
    }
    match recv_last {
        Some("persistent") => Some(format!("`ObjectStore` I/O (`persistent.{name}(..)`)")),
        Some("journal") => Some(format!("journal I/O (`journal.{name}(..)`)")),
        _ => None,
    }
}

fn build_facts(
    rel: &Path,
    krate: &str,
    item: &FnItem,
    toks: &[Tok],
    aliases: &HashMap<(String, String), String>,
) -> FnFacts {
    let mut events = walk_fn(toks, item.body.clone());
    let mut direct_classes = BTreeSet::new();
    let mut direct_rpc = Vec::new();
    let mut direct_blocking = Vec::new();
    let mut calls = BTreeSet::new();
    for ev in &mut events {
        match ev {
            Event::Acquire { class, .. } => {
                *class = resolve_class(class, krate, aliases);
                direct_classes.insert(class.clone());
            }
            Event::Call {
                name,
                line,
                method,
                recv_last,
                ..
            } => {
                calls.insert(name.clone());
                if let Some(desc) = rpc_marker(name, *method, recv_last.as_deref()) {
                    direct_rpc.push((*line, desc));
                }
            }
            Event::Blocking { what, line } => {
                direct_blocking.push((*line, what.clone()));
            }
            _ => {}
        }
    }
    FnFacts {
        name: item.name.clone(),
        krate: krate.to_string(),
        rel: rel.to_path_buf(),
        impl_trait: item.impl_trait.clone(),
        events,
        direct_classes,
        direct_rpc,
        direct_blocking,
        calls,
    }
}

/// Name-keyed summaries. Same-crate maps power the one-level rule
/// propagation (precision); the workspace-wide fixpoint powers the
/// reach graph for the runtime cross-check (recall).
#[derive(Default)]
struct Summaries {
    /// (crate, fn name) -> directly-acquired classes.
    same_crate_classes: HashMap<(String, String), BTreeSet<String>>,
    /// (crate, fn name) -> first direct RPC marker description.
    same_crate_rpc: HashMap<(String, String), String>,
    /// (crate, fn name) -> first direct blocking marker description.
    same_crate_blocking: HashMap<(String, String), String>,
    /// fn name -> transitively-acquired classes (workspace fixpoint).
    full_classes: HashMap<String, BTreeSet<String>>,
}

fn build_summaries(fns: &[FnFacts]) -> Summaries {
    let mut s = Summaries::default();
    let mut direct: HashMap<String, BTreeSet<String>> = HashMap::new();
    let mut callees: HashMap<String, BTreeSet<String>> = HashMap::new();
    for f in fns {
        let key = (f.krate.clone(), f.name.clone());
        s.same_crate_classes
            .entry(key.clone())
            .or_default()
            .extend(f.direct_classes.iter().cloned());
        if let Some((_, desc)) = f.direct_rpc.first() {
            s.same_crate_rpc.entry(key.clone()).or_insert(desc.clone());
        }
        if let Some((_, desc)) = f.direct_blocking.first() {
            s.same_crate_blocking.entry(key).or_insert(desc.clone());
        }
        direct
            .entry(f.name.clone())
            .or_default()
            .extend(f.direct_classes.iter().cloned());
        callees
            .entry(f.name.clone())
            .or_default()
            .extend(f.calls.iter().cloned());
    }
    // Fixpoint: full(f) = direct(f) ∪ ⋃ full(callee). Monotone over a
    // finite class set, so plain iteration terminates.
    let mut full = direct.clone();
    loop {
        let mut changed = false;
        let names: Vec<String> = full.keys().cloned().collect();
        for name in names {
            let mut add: BTreeSet<String> = BTreeSet::new();
            if let Some(cs) = callees.get(&name) {
                for c in cs {
                    if let Some(set) = full.get(c) {
                        add.extend(set.iter().cloned());
                    }
                }
            }
            let cur = full.entry(name).or_default();
            let before = cur.len();
            cur.extend(add);
            if cur.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    s.full_classes = full;
    s
}

/// Handle-alias pass: `fn shard(&self, ..) -> &Mutex<..> { &self.shards[..] }`
/// means `self.shard(i).lock()` acquires the `shards` class. Only
/// functions whose body is a single self-field chain (no acquisitions,
/// no statements) qualify.
fn build_aliases(files: &[FileData]) -> HashMap<(String, String), String> {
    let mut aliases = HashMap::new();
    for fd in files {
        for item in &fd.fns {
            if item.is_test {
                continue;
            }
            let body = &fd.lexed.toks[item.body.clone()];
            if body.is_empty() || body.iter().any(|t| t.kind == TokKind::Punct(';')) {
                continue;
            }
            if body
                .iter()
                .any(|t| t.kind == TokKind::Ident && LOCK_METHODS.contains(&t.text.as_str()))
            {
                continue;
            }
            if let Recv::SelfField(field) = chain_recv(body, body.len() - 1) {
                aliases.insert(
                    (fd.krate.clone(), item.name.clone()),
                    format!("{}::{field}", fd.krate),
                );
            }
        }
    }
    aliases
}

// ---------------------------------------------------------------------
// File loading.
// ---------------------------------------------------------------------

struct FileData {
    rel: PathBuf,
    krate: String,
    lexed: Lexed,
    fns: Vec<FnItem>,
}

fn load_files(root: &Path) -> Vec<FileData> {
    let mut out = Vec::new();
    for abs in crate::rust_files(root) {
        let rel = abs.strip_prefix(root).unwrap_or(&abs).to_path_buf();
        let comps: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        // Analysis scope: crate sources only. Integration tests, benches
        // and examples may hold anything across anything.
        if comps.len() < 4 || comps[0] != "crates" || comps[2] != "src" {
            continue;
        }
        let krate = comps[1].clone();
        let Ok(text) = fs::read_to_string(&abs) else {
            continue;
        };
        let lexed = lex::lex(&text);
        let fns = parse::parse_items(&lexed);
        out.push(FileData {
            rel,
            krate,
            lexed,
            fns,
        });
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    out
}

// ---------------------------------------------------------------------
// The rule pass (replay).
// ---------------------------------------------------------------------

#[derive(Clone)]
struct LiveGuard {
    binding: Option<String>,
    class: String,
    line: usize,
    depth: usize,
}

/// A static acquisition-order edge with one example site.
#[derive(Clone)]
struct EdgeSite {
    rel: PathBuf,
    line: usize,
    guard_line: usize,
}

struct RulePassOutput {
    violations: Vec<PendingViolation>,
    /// Strict edges (direct nesting + one-level same-crate summaries).
    strict_edges: BTreeMap<(String, String), EdgeSite>,
    /// Reach edges (strict ∪ transitive call closure).
    reach_edges: BTreeSet<(String, String)>,
}

/// A violation plus the guard-binding line that may carry its allow.
struct PendingViolation {
    v: Violation,
    guard_line: Option<usize>,
}

fn run_rule_pass(fns: &[FnFacts], sums: &Summaries) -> RulePassOutput {
    let mut out = RulePassOutput {
        violations: Vec::new(),
        strict_edges: BTreeMap::new(),
        reach_edges: BTreeSet::new(),
    };
    for f in fns {
        let in_reactor = f.impl_trait.as_deref() == Some("EventHandler");
        let mut live: Vec<LiveGuard> = Vec::new();
        for ev in &f.events {
            match ev {
                Event::Acquire {
                    class,
                    line,
                    binding,
                    depth,
                } => {
                    for g in &live {
                        if g.class != *class {
                            out.strict_edges
                                .entry((g.class.clone(), class.clone()))
                                .or_insert(EdgeSite {
                                    rel: f.rel.clone(),
                                    line: *line,
                                    guard_line: g.line,
                                });
                            out.reach_edges.insert((g.class.clone(), class.clone()));
                        }
                    }
                    if let Some(b) = binding {
                        live.retain(|g| g.binding.as_deref() != Some(b.as_str()));
                    }
                    live.push(LiveGuard {
                        binding: binding.clone(),
                        class: class.clone(),
                        line: *line,
                        depth: *depth,
                    });
                }
                Event::Release { binding } => {
                    if let Some(pos) = live
                        .iter()
                        .rposition(|g| g.binding.as_deref() == Some(binding.as_str()))
                    {
                        live.remove(pos);
                    }
                }
                Event::TempFence { depth } => {
                    live.retain(|g| g.binding.is_some() || g.depth < *depth);
                    if *depth == 0 {
                        live.retain(|g| g.binding.is_some());
                    }
                }
                Event::Call {
                    name,
                    line,
                    method,
                    recv_last,
                    summary_ok,
                } => {
                    let key = (f.krate.clone(), name.clone());
                    if !live.is_empty() {
                        // Direct RPC marker under a live guard.
                        if let Some(desc) = rpc_marker(name, *method, recv_last.as_deref()) {
                            push_guard_violation(&mut out.violations, f, &live, *line, &desc);
                        } else if *summary_ok {
                            if let Some(desc) = sums.same_crate_rpc.get(&key) {
                                let desc = format!("call to `{name}`, which performs {desc}");
                                push_guard_violation(&mut out.violations, f, &live, *line, &desc);
                            }
                        }
                        // Lock-order edges through the callee.
                        if let Some(classes) =
                            sums.same_crate_classes.get(&key).filter(|_| *summary_ok)
                        {
                            for c in classes {
                                for g in &live {
                                    if g.class != *c {
                                        out.strict_edges
                                            .entry((g.class.clone(), c.clone()))
                                            .or_insert(EdgeSite {
                                                rel: f.rel.clone(),
                                                line: *line,
                                                guard_line: g.line,
                                            });
                                    }
                                }
                            }
                        }
                        if let Some(classes) = sums.full_classes.get(name) {
                            for c in classes {
                                for g in &live {
                                    if g.class != *c {
                                        out.reach_edges.insert((g.class.clone(), c.clone()));
                                    }
                                }
                            }
                        }
                    }
                    if in_reactor && *summary_ok {
                        if let Some(desc) = sums.same_crate_blocking.get(&key) {
                            out.violations.push(PendingViolation {
                                v: Violation {
                                    rule: "no-blocking-in-reactor",
                                    path: f.rel.clone(),
                                    line: *line,
                                    message: format!(
                                        "`{}::{}` (EventHandler) calls `{name}`, which blocks on {desc}; \
                                         reactor callbacks must only move bytes and schedule work",
                                        f.krate, f.name
                                    ),
                                },
                                guard_line: None,
                            });
                        }
                    }
                }
                Event::Blocking { what, line } => {
                    if in_reactor {
                        out.violations.push(PendingViolation {
                            v: Violation {
                                rule: "no-blocking-in-reactor",
                                path: f.rel.clone(),
                                line: *line,
                                message: format!(
                                    "`{}::{}` (EventHandler) blocks on {what}; a blocked reactor \
                                     thread stalls every connection it serves",
                                    f.krate, f.name
                                ),
                            },
                            guard_line: None,
                        });
                    }
                }
            }
        }
    }
    out
}

fn push_guard_violation(
    violations: &mut Vec<PendingViolation>,
    f: &FnFacts,
    live: &[LiveGuard],
    line: usize,
    desc: &str,
) {
    // Report against the earliest-acquired live guard: that is the one
    // whose hold spans the call.
    let g = &live[0];
    let held = match &g.binding {
        Some(b) => format!("guard `{b}` (class `{}`, bound line {})", g.class, g.line),
        None => format!("temporary guard of class `{}` (line {})", g.class, g.line),
    };
    violations.push(PendingViolation {
        v: Violation {
            rule: "no-guard-across-rpc",
            path: f.rel.clone(),
            line,
            message: format!(
                "{held} is live across {desc} in `{}`; a slow peer turns this lock into a \
                 stalled subsystem — copy out, drop the guard, call, re-lock (DESIGN.md §8)",
                f.name
            ),
        },
        guard_line: Some(g.line),
    });
}

// ---------------------------------------------------------------------
// static-lock-order: cycle check + runtime-dump cross-check.
// ---------------------------------------------------------------------

fn check_cycles(
    edges: &BTreeMap<(String, String), EdgeSite>,
    violations: &mut Vec<PendingViolation>,
) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    // Insert edges in deterministic order; an edge that closes a cycle
    // against the already-inserted set is reported and *not* inserted,
    // so one inversion yields one violation.
    for ((from, to), site) in edges {
        if reaches(&adj, to, from) {
            violations.push(PendingViolation {
                v: Violation {
                    rule: "static-lock-order",
                    path: site.rel.clone(),
                    line: site.line,
                    message: format!(
                        "acquiring `{to}` while holding `{from}` (guard bound line {}) closes a \
                         static lock-order cycle `{to}` -> .. -> `{from}` -> `{to}`; two threads \
                         taking these classes in opposite orders can deadlock",
                        site.guard_line
                    ),
                },
                guard_line: Some(site.guard_line),
            });
        } else {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
    }
}

fn reaches(adj: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&str> = [from].into_iter().collect();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        for &next in adj.get(n).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(next) {
                stack.push(next);
            }
        }
    }
    false
}

/// One endpoint of a runtime dump edge: `name@file:line:col`.
struct DumpSite {
    name: Option<String>,
    file: PathBuf,
    line: usize,
}

fn parse_dump_site(s: &str) -> Option<DumpSite> {
    let (name, loc) = s.split_once('@')?;
    // rsplit: the path itself contains `:` never, but line:col are the
    // last two segments.
    let mut parts = loc.rsplitn(3, ':');
    let _col = parts.next()?;
    let line: usize = parts.next()?.parse().ok()?;
    let file = normalize(Path::new(parts.next()?));
    Some(DumpSite {
        name: (name != "-").then(|| name.to_string()),
        file,
        line,
    })
}

/// Resolves `a/b/../c` without touching the filesystem.
fn normalize(p: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in p.components() {
        match c {
            std::path::Component::ParentDir => {
                out.pop();
            }
            std::path::Component::CurDir => {}
            other => out.push(other),
        }
    }
    out
}

fn is_test_path(p: &Path) -> bool {
    p.components().any(|c| {
        matches!(
            c.as_os_str().to_string_lossy().as_ref(),
            "tests" | "benches" | "examples" | "fixtures"
        )
    })
}

/// Whether `site` falls inside the file's trailing `#[cfg(test)]` mod.
/// Repo convention puts unit tests last, so everything at or after the
/// first `#[cfg(test)]` marker counts as test code.
fn in_test_mod(cache: &mut HashMap<PathBuf, usize>, root: &Path, site: &DumpSite) -> bool {
    let start = *cache.entry(site.file.clone()).or_insert_with(|| {
        fs::read_to_string(root.join(&site.file))
            .ok()
            .and_then(|text| {
                text.lines()
                    .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
                    .map(|i| i + 1)
            })
            .unwrap_or(usize::MAX)
    });
    site.line >= start
}

fn crate_of(p: &Path) -> Option<String> {
    let comps: Vec<String> = p
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    (comps.len() >= 2 && comps[0] == "crates").then(|| comps[1].clone())
}

/// Maps a runtime construction site to candidate static class names.
fn resolve_dump_site(root: &Path, site: &DumpSite) -> Vec<String> {
    if let Some(name) = &site.name {
        // An explicit `new_named` name matches either the bare class
        // (handoff locals like `block`) or the crate-qualified field.
        let mut c = vec![name.clone()];
        if let Some(krate) = crate_of(&site.file) {
            c.push(format!("{krate}::{name}"));
        }
        return c;
    }
    let Some(krate) = crate_of(&site.file) else {
        return Vec::new();
    };
    let Ok(text) = fs::read_to_string(root.join(&site.file)) else {
        return Vec::new();
    };
    let lines: Vec<&str> = text.lines().collect();
    // Derived `Default` reports the `#[track_caller]` Location on the
    // `#[derive(..)]` attribute line, not the struct itself; skip
    // attributes down to the item they decorate.
    let mut idx = site.line.saturating_sub(1);
    while lines
        .get(idx)
        .is_some_and(|l| l.trim_start().starts_with("#["))
    {
        idx += 1;
    }
    let Some(&line) = lines.get(idx) else {
        return Vec::new();
    };
    if let Some(c) = class_from_construction_line(line, &krate) {
        return vec![c];
    }
    // Derived `Default` puts the caller Location on the struct
    // definition; every lock-carrying field is a candidate.
    let trimmed = line.trim_start();
    let struct_decl = trimmed
        .strip_prefix("pub struct ")
        .or_else(|| trimmed.strip_prefix("struct "));
    if struct_decl.is_some() {
        let mut fields = Vec::new();
        for l in lines.iter().skip(idx + 1) {
            let lt = l.trim();
            if lt.starts_with('}') {
                break;
            }
            if (lt.contains("Mutex<") || lt.contains("RwLock<")) && lt.contains(':') {
                let field = lt
                    .trim_start_matches("pub ")
                    .split(':')
                    .next()
                    .unwrap_or("")
                    .trim();
                if !field.is_empty() && field.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    fields.push(format!("{krate}::{field}"));
                }
            }
        }
        return fields;
    }
    // Multiline construction (`shards: (0..N).map(|_| {\n Mutex::new(..`):
    // scan a few lines up for the binding the expression feeds.
    for back in 1..=8usize {
        let Some(idx) = site.line.checked_sub(1 + back) else {
            break;
        };
        let Some(&l) = lines.get(idx) else { break };
        if l.trim_end().ends_with(';') || l.contains("fn ") {
            break;
        }
        // The constructor call is on the *reported* line, so the
        // binding line a few rows up need not contain `::new(` itself
        // (`shards: (0..N)` / `.map(|_| {` / `Mutex::new(..)`).
        if let Some(c) = class_from_line(l, &krate, false) {
            return vec![c];
        }
    }
    Vec::new()
}

/// `state: Mutex::new(..)` / `let prefixes = ..` / `self.pool = ..` /
/// `static X: Mutex<..> = ..` -> a class name.
fn class_from_construction_line(line: &str, krate: &str) -> Option<String> {
    class_from_line(line, krate, true)
}

/// `need_ctor` requires a `::new(`/`::default(` call on the same line —
/// true for the reported line itself, false for the upward scan where
/// the constructor sits on a later line of a multiline expression.
fn class_from_line(line: &str, krate: &str, need_ctor: bool) -> Option<String> {
    let t = line.trim_start();
    if let Some(rest) = t.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() && (!need_ctor || line.contains("::new(")) {
            return Some(ident); // locals stay bare, like acquisition sites
        }
        return None;
    }
    if let Some(rest) = t.strip_prefix("static ") {
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            return Some(format!("{krate}::{ident}"));
        }
        return None;
    }
    // Field init `ident: ..::new(..)` or assignment `[self.]ident = ..`.
    let head = t
        .strip_prefix("pub ")
        .unwrap_or(t)
        .strip_prefix("self.")
        .unwrap_or(t);
    let ident: String = head
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    let after = &head[ident.len()..];
    let after = after.trim_start();
    let assigns = (after.starts_with(':') && !after.starts_with("::"))
        || (after.starts_with('=') && !after.starts_with("=>"));
    if assigns && (!need_ctor || line.contains("::new(") || line.contains("::default(")) {
        return Some(format!("{krate}::{ident}"));
    }
    None
}

fn cross_check_dump(
    root: &Path,
    dump: &Path,
    reach: &BTreeSet<(String, String)>,
    violations: &mut Vec<PendingViolation>,
) {
    let Ok(text) = fs::read_to_string(dump) else {
        violations.push(PendingViolation {
            v: Violation {
                rule: "static-lock-order",
                path: dump.to_path_buf(),
                line: 0,
                message: "lock-order dump file is unreadable".to_string(),
            },
            guard_line: None,
        });
        return;
    };
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut test_mod_start: HashMap<PathBuf, usize> = HashMap::new();
    for raw in text.lines() {
        let raw = raw.trim();
        if raw.is_empty() || !seen.insert(raw.to_string()) {
            continue;
        }
        let Some((a, b)) = raw.split_once(" -> ") else {
            continue;
        };
        let (Some(from), Some(to)) = (parse_dump_site(a), parse_dump_site(b)) else {
            continue;
        };
        if is_test_path(&from.file) || is_test_path(&to.file) {
            continue;
        }
        // Unit-test lock classes (trailing `#[cfg(test)] mod`) are not
        // part of the product lock hierarchy; the rule passes skip
        // test fns, so the cross-check skips their constructions too.
        if in_test_mod(&mut test_mod_start, root, &from)
            || in_test_mod(&mut test_mod_start, root, &to)
        {
            continue;
        }
        let from_classes = resolve_dump_site(root, &from);
        let to_classes = resolve_dump_site(root, &to);
        for (site, classes) in [(&from, &from_classes), (&to, &to_classes)] {
            if classes.is_empty() {
                violations.push(PendingViolation {
                    v: Violation {
                        rule: "static-lock-order",
                        path: site.file.clone(),
                        line: site.line,
                        message: format!(
                            "runtime lock class constructed here ({}) cannot be mapped to a \
                             static class — give it an explicit name with `new_named` so the \
                             runtime/static cross-check can see it",
                            raw
                        ),
                    },
                    guard_line: None,
                });
            }
        }
        if from_classes.is_empty() || to_classes.is_empty() {
            continue;
        }
        let covered = from_classes.iter().any(|f| {
            to_classes
                .iter()
                .any(|t| f == t || reach.contains(&(f.clone(), t.clone())))
        });
        if !covered {
            violations.push(PendingViolation {
                v: Violation {
                    rule: "static-lock-order",
                    path: from.file.clone(),
                    line: from.line,
                    message: format!(
                        "runtime-observed lock-order edge `{}` -> `{}` ({raw}) is absent from \
                         the static acquisition graph — the analyzer lost track of a nesting; \
                         teach it the pattern or name the locks",
                        from_classes.join("|"),
                        to_classes.join("|"),
                    ),
                },
                guard_line: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Allow suppression + entry point.
// ---------------------------------------------------------------------

/// Runs the parser-based concurrency rules over `root`. When
/// `lock_order_dump` is given, runtime-observed edges are checked
/// against the static reach graph.
pub fn analyze(root: &Path, lock_order_dump: Option<&Path>) -> Vec<Violation> {
    let files = load_files(root);
    let aliases = build_aliases(&files);
    let mut fns: Vec<FnFacts> = Vec::new();
    for fd in &files {
        for item in &fd.fns {
            if item.is_test {
                continue;
            }
            fns.push(build_facts(
                &fd.rel,
                &fd.krate,
                item,
                &fd.lexed.toks,
                &aliases,
            ));
        }
    }
    let sums = build_summaries(&fns);
    let mut pass = run_rule_pass(&fns, &sums);
    check_cycles(&pass.strict_edges, &mut pass.violations);
    if let Some(dump) = lock_order_dump {
        cross_check_dump(root, dump, &pass.reach_edges, &mut pass.violations);
    }

    // Allow-comment bookkeeping: suppress vetted sites, flag bad allows.
    let allows_by_file: HashMap<&Path, &Lexed> = files
        .iter()
        .map(|fd| (fd.rel.as_path(), &fd.lexed))
        .collect();
    let mut out: Vec<Violation> = Vec::new();
    for pv in pass.violations {
        let lexed = allows_by_file.get(pv.v.path.as_path());
        let suppressed = lexed.is_some_and(|l| {
            let mut lines = vec![pv.v.line, pv.v.line.saturating_sub(1)];
            if let Some(g) = pv.guard_line {
                lines.push(g);
                lines.push(g.saturating_sub(1));
            }
            lines.iter().any(|&ln| {
                l.allow_on(pv.v.rule, ln)
                    .is_some_and(|a| !a.reason.is_empty())
            })
        });
        if !suppressed {
            out.push(pv.v);
        }
    }
    for fd in &files {
        for a in &fd.lexed.allows {
            if !crate::is_known_rule(&a.rule) {
                out.push(Violation {
                    rule: "xtask-allow",
                    path: fd.rel.clone(),
                    line: a.line,
                    message: format!("xtask-allow names unknown rule `{}`", a.rule),
                });
            } else if a.reason.is_empty() {
                out.push(Violation {
                    rule: "xtask-allow",
                    path: fd.rel.clone(),
                    line: a.line,
                    message: format!(
                        "xtask-allow({}) has an empty reason — vetted suppressions must say why",
                        a.rule
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn facts_for(src: &str) -> Vec<FnFacts> {
        let lexed = lex(src);
        let items = parse::parse_items(&lexed);
        let aliases = HashMap::new();
        items
            .iter()
            .filter(|i| !i.is_test)
            .map(|i| {
                build_facts(
                    Path::new("crates/app/src/lib.rs"),
                    "app",
                    i,
                    &lexed.toks,
                    &aliases,
                )
            })
            .collect()
    }

    fn violations(src: &str) -> Vec<Violation> {
        let fns = facts_for(src);
        let sums = build_summaries(&fns);
        let mut pass = run_rule_pass(&fns, &sums);
        check_cycles(&pass.strict_edges, &mut pass.violations);
        pass.violations.into_iter().map(|p| p.v).collect()
    }

    #[test]
    fn guard_live_across_transport_call_fires() {
        let src = r#"
            fn bad(&self) {
                let st = self.state.lock();
                let _ = self.conn.call(req);
            }
        "#;
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-guard-across-rpc");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn guard_dropped_before_call_is_clean() {
        let src = r#"
            fn good(&self) {
                let payload = {
                    let st = self.state.lock();
                    st.payload()
                };
                let _ = self.conn.call(payload);
            }
            fn also_good(&self) {
                let st = self.state.lock();
                let x = st.copy_out();
                drop(st);
                let _ = self.conn.call(x);
            }
        "#;
        assert!(violations(src).is_empty());
    }

    #[test]
    fn one_level_summary_propagates() {
        let src = r#"
            fn helper(&self) { let _ = self.conn.call(req); }
            fn bad(&self) {
                let st = self.state.lock();
                self.helper();
            }
        "#;
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("helper"));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = r#"
            fn good(&self) {
                let n = self.map.lock().len();
                let _ = self.conn.call(n);
            }
        "#;
        assert!(violations(src).is_empty());
    }

    #[test]
    fn blocking_in_event_handler_fires() {
        let src = r#"
            impl EventHandler for Listener {
                fn on_ready(&self, r: bool, w: bool) -> bool {
                    thread::sleep(Duration::from_millis(1));
                    true
                }
            }
            impl Listener {
                fn elsewhere(&self) { thread::sleep(d); }
            }
        "#;
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-blocking-in-reactor");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn static_cycle_is_detected() {
        let src = r#"
            fn ab(&self) {
                let a = self.alpha.lock();
                let b = self.beta.lock();
            }
            fn ba(&self) {
                let b = self.beta.lock();
                let a = self.alpha.lock();
            }
        "#;
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "static-lock-order");
        assert!(v[0].message.contains("app::alpha") && v[0].message.contains("app::beta"));
    }

    #[test]
    fn map_to_element_handoff_is_clean() {
        let src = r#"
            fn get(&self) -> Arc<Mutex<Block>> {
                self.blocks.read().get(&id).cloned().unwrap()
            }
            fn op(&self) {
                let block = self.get();
                let g = block.lock();
            }
        "#;
        assert!(violations(src).is_empty());
    }

    #[test]
    fn construction_line_classes() {
        assert_eq!(
            class_from_construction_line("            state: Mutex::new(CtrlState {", "controller"),
            Some("controller::state".to_string())
        );
        assert_eq!(
            class_from_construction_line(
                "        let prefixes = Arc::new(Mutex::new(p));",
                "client"
            ),
            Some("prefixes".to_string())
        );
        assert_eq!(
            class_from_construction_line(
                "static CLIENT_REACTORS: Mutex<Option<R>> = Mutex::new(None);",
                "rpc"
            ),
            Some("rpc::CLIENT_REACTORS".to_string())
        );
        assert_eq!(
            class_from_construction_line(
                "        self.pool = Arc::new(Mutex::new(HashMap::new()));",
                "rpc"
            ),
            Some("rpc::pool".to_string())
        );
        assert_eq!(class_from_construction_line("    fn foo() {", "x"), None);
    }

    #[test]
    fn reach_graph_closes_call_chains() {
        let src = r#"
            fn call(&self) { self.svc.handle(req) }
            fn handle(&self) { self.dispatch() }
            fn dispatch(&self) { let g = self.inner.lock(); }
            fn top(&self) {
                let st = self.state.lock();
                let _ = self.conn.call(req);
            }
        "#;
        let fns = facts_for(src);
        let sums = build_summaries(&fns);
        let pass = run_rule_pass(&fns, &sums);
        assert!(
            pass.reach_edges
                .contains(&("app::state".to_string(), "app::inner".to_string())),
            "reach edges: {:?}",
            pass.reach_edges
        );
        // But the strict graph stays one level deep.
        assert!(!pass
            .strict_edges
            .contains_key(&("app::state".to_string(), "app::inner".to_string())));
    }
}
