//! Static invariant checks for the Jiffy workspace, run as
//! `cargo xtask lint` (aliased in `.cargo/config.toml`, gated in CI).
//!
//! The checks are deliberately line-based — this build environment has no
//! crates.io access, so a full `syn` parse is off the table — but they are
//! written to be conservative: comment text is stripped before matching,
//! `#[cfg(test)]` regions are tracked by brace counting, and the
//! `JiffyError` rule distinguishes construction from pattern matching.
//!
//! Rules (see DESIGN.md §8 for the rationale):
//!
//! 1. **sync-facade** — no `std::sync` / `parking_lot` imports or paths
//!    anywhere outside `crates/sync` (which wraps them) and `xtask`
//!    itself. Everything goes through `jiffy_sync` so the loom and
//!    lock-order backends see every acquisition.
//! 2. **no-unwrap** — no `.unwrap()` / `.expect(...)` in the data-path
//!    crates (`rpc`, `server`, `block`, `cuckoo`, `controller`) outside
//!    test code. The only escape hatch is `.expect("invariant: ...")`,
//!    which documents why the failure is truly unreachable.
//! 3. **error-taxonomy** — the transport-fault variants
//!    `JiffyError::Timeout` / `JiffyError::Unavailable` are constructed
//!    only inside `crates/rpc` and `crates/common` (and test code).
//!    They drive `is_transport()` retry semantics; minting them elsewhere
//!    would let non-transport code masquerade as safely-retryable.
//! 4. **exhaustive-dispatch** — in `crates/controller` and
//!    `crates/server`, a `match` whose arms dispatch on `ControlRequest::`
//!    or `DataRequest::` variants may not contain a bare `_` arm. New RPC
//!    variants (JoinServer, Heartbeat, ...) must fail compilation at every
//!    dispatch site rather than silently fall into a catch-all. Named
//!    catch-alls (`other =>`) are allowed — they show intent — and matches
//!    that bring variants in via `use ControlRequest::*` are out of scope
//!    for the literal-prefix heuristic by design.
//! 5. **journal-before-ack** — in a `ControlRequest` dispatch match, an
//!    arm for a metadata-mutating variant that constructs its own
//!    `Ok(ControlResponse::...)` ack must call `journal_append` first
//!    (DESIGN.md §11): a crash after the ack must never lose the
//!    mutation. Read-only arms (`ResolvePrefix`, `GetStats`, ...) and
//!    the liveness-only `Heartbeat` are exempt, as are pure routers
//!    (sharding) that forward the request without minting a response.
//! 6. **internal-rid** — an `Envelope::DataReq` construction may not
//!    carry a bare `id: 0` literal outside `crates/proto` and test code.
//!    Request id 0 is the "untracked internal traffic" sentinel that
//!    bypasses both replay caches (DESIGN.md §16); spelling it
//!    `INTERNAL_RID` keeps that bypass greppable and keeps a refactor
//!    from silently turning a client path into untracked traffic.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod analysis;
pub mod lex;
pub mod parse;

pub use analysis::analyze;

/// Which xtask subcommand a rule belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RulePhase {
    /// Line-based checks (`cargo xtask lint`).
    Lint,
    /// Parser-based concurrency checks (`cargo xtask analyze`).
    Analyze,
}

/// One registered rule. The registry is the single source of truth for
/// rule names and counts — `main.rs` derives its "ok (N rules clean)"
/// summary and `--rule` validation from here, and `analysis.rs` uses it
/// to reject `xtask-allow(..)` comments naming unknown rules.
pub struct RuleMeta {
    pub name: &'static str,
    pub phase: RulePhase,
    pub summary: &'static str,
}

/// Every rule xtask knows, lint and analyze alike.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        name: "sync-facade",
        phase: RulePhase::Lint,
        summary: "all sync primitives come from jiffy_sync",
    },
    RuleMeta {
        name: "no-unwrap",
        phase: RulePhase::Lint,
        summary: "no unwrap/undocumented expect in data-path crates",
    },
    RuleMeta {
        name: "error-taxonomy",
        phase: RulePhase::Lint,
        summary: "transport faults are minted only by the transport layer",
    },
    RuleMeta {
        name: "exhaustive-dispatch",
        phase: RulePhase::Lint,
        summary: "no bare `_` arms in RPC dispatch matches",
    },
    RuleMeta {
        name: "journal-before-ack",
        phase: RulePhase::Lint,
        summary: "mutating control arms journal before acking",
    },
    RuleMeta {
        name: "internal-rid",
        phase: RulePhase::Lint,
        summary: "internal data envelopes spell out INTERNAL_RID",
    },
    RuleMeta {
        name: "no-guard-across-rpc",
        phase: RulePhase::Analyze,
        summary: "no jiffy-sync guard live across a transport call",
    },
    RuleMeta {
        name: "no-blocking-in-reactor",
        phase: RulePhase::Analyze,
        summary: "EventHandler callbacks never block",
    },
    RuleMeta {
        name: "static-lock-order",
        phase: RulePhase::Analyze,
        summary: "static acquisition graph is acyclic and covers runtime edges",
    },
    RuleMeta {
        name: "xtask-allow",
        phase: RulePhase::Analyze,
        summary: "allow-comments name real rules and carry a reason",
    },
];

/// Number of rules in a phase (drives the CLI summary lines).
pub fn rule_count(phase: RulePhase) -> usize {
    RULES.iter().filter(|r| r.phase == phase).count()
}

/// Whether `name` is a registered rule (either phase).
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired: `"sync-facade"`, `"no-unwrap"`,
    /// `"error-taxonomy"`, `"exhaustive-dispatch"`,
    /// `"journal-before-ack"`, `"internal-rid"`.
    pub rule: &'static str,
    /// Path relative to the lint root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Crates whose `src/` is data-path code for the no-unwrap rule.
const DATA_PATH_CRATES: &[&str] = &["rpc", "server", "block", "cuckoo", "controller"];

/// Runs every lint rule over the workspace rooted at `root`.
///
/// `root` is normally the repo root; tests point it at a fixture tree
/// with the same `crates/<name>/src` shape.
pub fn lint(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for file in rust_files(root) {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        lint_file(&rel, &text, &mut violations);
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    violations
}

/// Lints one file's contents. Exposed for the fixture tests.
pub fn lint_file(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    let scope = Scope::of(rel);
    if scope.skip {
        return;
    }
    if scope.dispatch && !scope.test_only {
        check_exhaustive_dispatch(rel, text, out);
        check_journal_before_ack(rel, text, out);
    }
    if !scope.rid_exempt && !scope.test_only {
        check_internal_rid(rel, text, out);
    }
    let mut tests = TestRegionTracker::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw);
        let in_test = tests.observe(&code) || scope.test_only;

        if !scope.facade_exempt {
            check_sync_facade(rel, line_no, &code, out);
        }
        if !in_test {
            if scope.data_path {
                check_no_unwrap(rel, line_no, &code, out);
            }
            if !scope.taxonomy_exempt {
                check_error_taxonomy(rel, line_no, &code, out);
            }
        }
    }
}

/// Which rules apply to a file, derived from its path.
#[derive(Debug, Clone, Copy, Default)]
struct Scope {
    /// Not linted at all (vendor, target, fixtures, xtask itself).
    skip: bool,
    /// `crates/sync` IS the facade: exempt from the sync-facade rule.
    facade_exempt: bool,
    /// `src/` of a data-path crate: the no-unwrap rule applies.
    data_path: bool,
    /// `crates/rpc` + `crates/common`: legitimate transport-error mints.
    taxonomy_exempt: bool,
    /// `crates/controller` + `crates/server`: the exhaustive-dispatch
    /// rule applies (these hold the RPC dispatch `match`es).
    dispatch: bool,
    /// `crates/proto` defines `INTERNAL_RID` (and pins its wire value in
    /// examples): exempt from the internal-rid rule.
    rid_exempt: bool,
    /// Dedicated test trees (`tests/`, `benches/`, `examples/`): only the
    /// sync-facade rule applies.
    test_only: bool,
}

impl Scope {
    fn of(rel: &Path) -> Self {
        let parts: Vec<&str> = rel.iter().map(|c| c.to_str().unwrap_or_default()).collect();
        let mut scope = Scope::default();
        if matches!(
            parts.first().copied(),
            Some("vendor") | Some("target") | Some("xtask") | Some(".git")
        ) {
            scope.skip = true;
            return scope;
        }
        // Dedicated test/bench trees never run in production.
        if parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
        {
            scope.test_only = true;
            return scope;
        }
        if parts.first() == Some(&"crates") {
            match parts.get(1).copied() {
                Some("sync") => scope.facade_exempt = true,
                Some("common") => scope.taxonomy_exempt = true,
                Some("proto") => scope.rid_exempt = true,
                Some(name) if DATA_PATH_CRATES.contains(&name) => {
                    scope.data_path = true;
                    // rpc is both data-path (no-unwrap applies) and a
                    // legitimate minting site for transport errors.
                    scope.taxonomy_exempt = name == "rpc";
                    scope.dispatch = matches!(name, "controller" | "server");
                }
                _ => {}
            }
        }
        scope
    }
}

/// Rule 1: no direct `std::sync` / `parking_lot` use.
fn check_sync_facade(rel: &Path, line: usize, code: &str, out: &mut Vec<Violation>) {
    for needle in ["std::sync", "parking_lot"] {
        if code.contains(needle) {
            out.push(Violation {
                rule: "sync-facade",
                path: rel.to_path_buf(),
                line,
                message: format!(
                    "direct `{needle}` use — import from `jiffy_sync` instead so the loom \
                     and lock-order backends see this primitive"
                ),
            });
        }
    }
}

/// Rule 2: no `.unwrap()` / undocumented `.expect(` in data-path code.
fn check_no_unwrap(rel: &Path, line: usize, code: &str, out: &mut Vec<Violation>) {
    if code.contains(".unwrap()") {
        out.push(Violation {
            rule: "no-unwrap",
            path: rel.to_path_buf(),
            line,
            message: "`.unwrap()` in data-path code — return a `JiffyError` or use \
                      `.expect(\"invariant: ...\")` with a proof sketch"
                .into(),
        });
    }
    let mut rest = code;
    while let Some(pos) = rest.find(".expect(") {
        let after = &rest[pos + ".expect(".len()..];
        if !after.trim_start().starts_with("\"invariant: ") {
            out.push(Violation {
                rule: "no-unwrap",
                path: rel.to_path_buf(),
                line,
                message: "`.expect()` in data-path code without an `\"invariant: ...\"` \
                          justification — return a `JiffyError` instead"
                    .into(),
            });
        }
        rest = after;
    }
}

/// Rule 3: `JiffyError::Timeout` / `::Unavailable` constructed outside
/// the transport layer.
fn check_error_taxonomy(rel: &Path, line: usize, code: &str, out: &mut Vec<Violation>) {
    for variant in ["JiffyError::Timeout", "JiffyError::Unavailable"] {
        let mut search = code;
        let mut offset = 0usize;
        while let Some(pos) = search.find(variant) {
            let abs = offset + pos;
            let after = &search[pos + variant.len()..];
            if is_construction(code, abs, after) {
                out.push(Violation {
                    rule: "error-taxonomy",
                    path: rel.to_path_buf(),
                    line,
                    message: format!(
                        "`{variant}` constructed outside crates/rpc + crates/common — \
                         transport faults drive `is_transport()` retry semantics and may \
                         only be minted by the transport layer"
                    ),
                });
            }
            offset = abs + variant.len();
            search = &code[offset..];
        }
    }
}

/// Rule 4: no bare `_` catch-all arms in `ControlRequest` /
/// `DataRequest` dispatch matches.
///
/// Works on the whole file because the verdict for a `_ =>` arm depends
/// on sibling arms seen later: a `match` region is "dispatch" once any
/// arm at its level literally starts with `ControlRequest::` or
/// `DataRequest::`. Nested matches get their own region, so a wildcard
/// inside an arm's inner `match other_enum { ... }` is never attributed
/// to the outer dispatch.
fn check_exhaustive_dispatch(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    struct Region {
        /// Brace depth at which this match's arms sit.
        arm_depth: i32,
        /// Saw an arm literally starting with `ControlRequest::` /
        /// `DataRequest::`.
        dispatch: bool,
        /// Line numbers of bare `_` arms, flagged if `dispatch` ends up true.
        wildcards: Vec<usize>,
    }
    let mut depth = 0i32;
    let mut stack: Vec<Region> = Vec::new();
    let mut tests = TestRegionTracker::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw);
        // Test regions are brace-balanced, so skipping them whole keeps
        // the outer depth consistent.
        if tests.observe(&code) {
            continue;
        }
        let trimmed = code.trim();
        if let Some(region) = stack.last_mut() {
            if depth == region.arm_depth {
                if trimmed.starts_with("ControlRequest::") || trimmed.starts_with("DataRequest::") {
                    region.dispatch = true;
                }
                if trimmed.starts_with("_ =>") || trimmed.starts_with("_ |") {
                    region.wildcards.push(line_no);
                }
            }
        }
        let delta = brace_delta(&code);
        if delta > 0 && has_match_keyword(&code) {
            depth += delta;
            stack.push(Region {
                arm_depth: depth,
                dispatch: false,
                wildcards: Vec::new(),
            });
            continue;
        }
        depth += delta;
        while stack.last().is_some_and(|r| depth < r.arm_depth) {
            let region = stack.pop().expect("invariant: checked non-empty above");
            if region.dispatch {
                for line in region.wildcards {
                    out.push(Violation {
                        rule: "exhaustive-dispatch",
                        path: rel.to_path_buf(),
                        line,
                        message: "bare `_` arm in a ControlRequest/DataRequest dispatch match — \
                                  new RPC variants must fail compilation here, not fall into a \
                                  catch-all; name the arm (`other =>`) if a catch-all is truly \
                                  intended"
                            .into(),
                    });
                }
            }
        }
    }
}

/// `ControlRequest` variants that mutate controller metadata and must
/// therefore journal before acking (rule 5). Deliberately absent:
/// `ResolvePrefix`, `GetLeaseDuration`, `ListServers`, `GetStats`,
/// `ListPrefixes` and `CommitRepartition` are read-only, and `Heartbeat`
/// is liveness-only — liveness is re-learned from the wire after a
/// restart, never replayed from the journal (DESIGN.md §11).
const MUTATING_CONTROL_ARMS: &[&str] = &[
    "RegisterJob",
    "DeregisterJob",
    "CreatePrefix",
    "AddParent",
    "CreateHierarchy",
    "RemovePrefix",
    "RenewLease",
    "FlushPrefix",
    "LoadPrefix",
    "JoinServer",
    "LeaveServer",
    "ReportOverload",
    "ReportUnderload",
    "SetTenantShare",
    "AdoptJob",
];

/// Rule 5: a mutating `ControlRequest::` arm that mints its own
/// `Ok(ControlResponse::...)` ack must call `journal_append` first.
///
/// Same region machinery as rule 4: a `match` region tracks the brace
/// depth its arms sit at; an arm opens on a `ControlRequest::<Variant>`
/// pattern line and closes at the next same-depth arm (or when the
/// region does). Lines inside nested regions are still scanned into
/// every enclosing open arm, so a `journal_append` or an ack inside an
/// arm's inner `match` is attributed correctly. Routers that forward
/// the request (`shard.dispatch(req)`) never mint a response literal
/// and so are never flagged; a router arm that *does* mint a literal
/// (fan-outs, cross-shard replies) satisfies the rule by forwarding
/// through `dispatch_journaled`, which reaches a journaling shard and
/// counts the same as a direct `journal_append`.
fn check_journal_before_ack(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    struct Arm {
        /// Line of the `ControlRequest::<Variant>` pattern.
        start_line: usize,
        /// Any pattern in the (possibly `|`-joined) arm is mutating.
        mutating: bool,
        /// Saw `journal_append` already.
        journaled: bool,
        /// First `Ok(ControlResponse::` seen before any `journal_append`.
        unjournaled_ack: Option<usize>,
    }
    struct Region {
        arm_depth: i32,
        arm: Option<Arm>,
    }

    fn names_mutating_variant(code: &str) -> bool {
        let mut rest = code;
        while let Some(pos) = rest.find("ControlRequest::") {
            let after = &rest[pos + "ControlRequest::".len()..];
            let ident: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if MUTATING_CONTROL_ARMS.contains(&ident.as_str()) {
                return true;
            }
            rest = after;
        }
        false
    }

    fn scan_into(arm: &mut Arm, line_no: usize, code: &str) {
        // Per-shard routers journal by forwarding: `dispatch_journaled`
        // lands on a shard whose own dispatch journals before acking.
        let journal = match (code.find("journal_append"), code.find("dispatch_journaled")) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if !arm.journaled && arm.unjournaled_ack.is_none() {
            if let Some(ack) = code.find("Ok(ControlResponse::") {
                if journal.is_none_or(|j| j > ack) {
                    arm.unjournaled_ack = Some(line_no);
                }
            }
        }
        if journal.is_some() {
            arm.journaled = true;
        }
    }

    fn finish(rel: &Path, arm: Option<Arm>, out: &mut Vec<Violation>) {
        let Some(arm) = arm else { return };
        if !arm.mutating {
            return;
        }
        if let Some(line) = arm.unjournaled_ack {
            out.push(Violation {
                rule: "journal-before-ack",
                path: rel.to_path_buf(),
                line,
                message: format!(
                    "mutating ControlRequest arm (line {}) acks without a prior \
                     `journal_append` — a controller crash after this ack would lose the \
                     mutation; append the journal record first (DESIGN.md §11)",
                    arm.start_line
                ),
            });
        }
    }

    let mut depth = 0i32;
    let mut stack: Vec<Region> = Vec::new();
    let mut tests = TestRegionTracker::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw);
        if tests.observe(&code) {
            continue;
        }
        let trimmed = code.trim();
        if let Some(region) = stack.last_mut() {
            if depth == region.arm_depth {
                if trimmed.starts_with("ControlRequest::") {
                    finish(rel, region.arm.take(), out);
                    region.arm = Some(Arm {
                        start_line: line_no,
                        mutating: names_mutating_variant(trimmed),
                        journaled: false,
                        unjournaled_ack: None,
                    });
                } else if trimmed.starts_with('|') {
                    // Continuation of a multi-pattern arm.
                    if let Some(arm) = region.arm.as_mut() {
                        arm.mutating |= names_mutating_variant(trimmed);
                    }
                } else if trimmed.contains("=>") {
                    // Some other arm (named catch-all, other enum, `_`).
                    finish(rel, region.arm.take(), out);
                }
            }
        }
        for region in &mut stack {
            if let Some(arm) = region.arm.as_mut() {
                scan_into(arm, line_no, &code);
            }
        }
        let delta = brace_delta(&code);
        if delta > 0 && has_match_keyword(&code) {
            depth += delta;
            stack.push(Region {
                arm_depth: depth,
                arm: None,
            });
            continue;
        }
        depth += delta;
        while stack.last().is_some_and(|r| depth < r.arm_depth) {
            let region = stack.pop().expect("invariant: checked non-empty above");
            finish(rel, region.arm, out);
        }
    }
    while let Some(region) = stack.pop() {
        finish(rel, region.arm, out);
    }
}

/// Rule 6: a bare `id: 0` literal inside an `Envelope::DataReq`
/// construction (spell it `INTERNAL_RID`).
///
/// Same shape as rule 4's region machinery: a construction opens on a
/// line where `Envelope::DataReq` appears in construction position (per
/// [`is_construction`] — pattern matches and `..` wildcards are not
/// flagged) and stays open until its brace closes, so the `id:` field
/// is caught wherever rustfmt put it. `DataResp` / `ControlReq`
/// envelopes are out of scope: only data *requests* carry a request id
/// the replay window interprets.
fn check_internal_rid(rel: &Path, text: &str, out: &mut Vec<Violation>) {
    let mut depth = 0i32;
    // Body depths of open `Envelope::DataReq { ... }` literals.
    let mut regions: Vec<i32> = Vec::new();
    let mut tests = TestRegionTracker::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw);
        if tests.observe(&code) {
            continue;
        }
        let mut opened = false;
        if let Some(pos) = code.find("Envelope::DataReq") {
            let after = &code[pos + "Envelope::DataReq".len()..];
            opened = is_construction(&code, pos, after);
        }
        if (opened || !regions.is_empty()) && has_bare_zero_id(&code) {
            out.push(Violation {
                rule: "internal-rid",
                path: rel.to_path_buf(),
                line: line_no,
                message: "bare `id: 0` on a data envelope — write \
                          `jiffy_proto::INTERNAL_RID` so the replay-window bypass for \
                          internal traffic stays greppable (DESIGN.md §16)"
                    .into(),
            });
        }
        let delta = brace_delta(&code);
        if opened && delta > 0 {
            regions.push(depth + delta);
        }
        depth += delta;
        while regions.last().is_some_and(|&d| depth < d) {
            regions.pop();
        }
    }
}

/// Does the line contain `id: 0` as a whole field init (not `rid: 0`,
/// `id: 0x...`, an identifier suffix, ...)?
fn has_bare_zero_id(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find("id: 0") {
        let abs = start + pos;
        let before_ok = abs == 0 || {
            let b = bytes[abs - 1];
            !b.is_ascii_alphanumeric() && b != b'_'
        };
        let after_ok = !bytes
            .get(abs + "id: 0".len())
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_' || *b == b'.');
        if before_ok && after_ok {
            return true;
        }
        start = abs + "id: 0".len();
    }
    false
}

/// Is the `match` keyword (not `matches!`, `.match_indices`, an
/// identifier suffix, ...) present on this comment-stripped line?
fn has_match_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find("match") {
        let abs = start + pos;
        let before_ok = abs == 0 || {
            let b = bytes[abs - 1];
            !b.is_ascii_alphanumeric() && b != b'_' && b != b'.'
        };
        let after_ok = matches!(bytes.get(abs + 5), Some(b' ') | Some(b'\t') | Some(b'('));
        if before_ok && after_ok {
            return true;
        }
        start = abs + 5;
    }
    false
}

/// Heuristic: does this occurrence build the variant (vs. match on it)?
///
/// * `Variant(_...)` / `Variant { .. }` — wildcard pattern, not flagged.
/// * occurrence left of a `=>` on the same line — match-arm pattern.
/// * bare `Variant` with no `(`/`{` — path mention (docs, `use`), skipped.
fn is_construction(full_line: &str, abs_pos: usize, after: &str) -> bool {
    if let Some(arrow) = full_line.find("=>") {
        if abs_pos < arrow {
            return false;
        }
    }
    let trimmed = after.trim_start();
    if let Some(inner) = trimmed.strip_prefix('(') {
        let inner = inner.trim_start();
        return !inner.starts_with('_') && !inner.starts_with("..");
    }
    if let Some(inner) = trimmed.strip_prefix('{') {
        let close = inner.find('}').unwrap_or(inner.len());
        return !inner[..close].contains("..");
    }
    false
}

/// Tracks whether the current line is inside a `#[cfg(test)]` item, by
/// counting braces from the attribute's item to its closing brace.
struct TestRegionTracker {
    /// Saw `#[cfg(test)]`; waiting for the item body to open.
    pending: bool,
    /// Brace depth inside an open test region (0 = not in a region).
    depth: i32,
    in_region: bool,
}

impl TestRegionTracker {
    fn new() -> Self {
        Self {
            pending: false,
            depth: 0,
            in_region: false,
        }
    }

    /// Feeds one comment-stripped line; returns whether that line is test
    /// code (the attribute line itself counts as test code).
    fn observe(&mut self, code: &str) -> bool {
        if self.in_region {
            self.depth += brace_delta(code);
            if self.depth <= 0 {
                self.in_region = false;
                self.depth = 0;
            }
            return true;
        }
        if code.contains("cfg(test") || code.contains("cfg(all(test") {
            self.pending = true;
            return true;
        }
        if self.pending {
            let delta = brace_delta(code);
            if delta > 0 {
                self.in_region = true;
                self.depth = delta;
                self.pending = false;
            } else if code.trim_end().ends_with(';') {
                // Attribute applied to a braceless item (`use`, `static`).
                self.pending = false;
            }
            return true;
        }
        false
    }
}

/// Net `{`/`}` count, ignoring braces inside string literals well enough
/// for rustfmt-formatted code.
fn brace_delta(code: &str) -> i32 {
    let mut delta = 0i32;
    let mut in_str = false;
    let mut prev = '\0';
    for c in code.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' if !in_str && prev != '\'' => delta += 1,
            '}' if !in_str && prev != '\'' => delta -= 1,
            _ => {}
        }
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    delta
}

/// Strips `//` line comments (incl. doc comments), preserving `//`
/// inside string literals.
fn strip_comments(raw: &str) -> String {
    let mut in_str = false;
    let mut prev = '\0';
    let chars: Vec<char> = raw.chars().collect();
    for i in 0..chars.len() {
        let c = chars[i];
        if c == '"' && prev != '\\' && chars.get(i.wrapping_sub(1)) != Some(&'\'') {
            in_str = !in_str;
        }
        if !in_str && c == '/' && chars.get(i + 1) == Some(&'/') {
            return chars[..i].iter().collect();
        }
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    raw.to_string()
}

/// All `.rs` files under `root`, skipping vendor/target/fixture trees.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_str().unwrap_or_default();
            if path.is_dir() {
                if matches!(name, "vendor" | "target" | ".git" | "fixtures" | "xtask") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        lint_file(Path::new(rel), text, &mut out);
        out
    }

    #[test]
    fn flags_std_sync_outside_facade() {
        let v = lint_str("crates/server/src/lib.rs", "use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-facade");
    }

    #[test]
    fn sync_crate_is_exempt_from_facade_rule() {
        assert!(lint_str("crates/sync/src/plain.rs", "use std::sync::Mutex;\n").is_empty());
    }

    #[test]
    fn comments_do_not_trip_rules() {
        assert!(lint_str(
            "crates/server/src/lib.rs",
            "// std::sync is banned; so is x.unwrap()\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_unwrap_in_data_path_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_str("crates/rpc/src/tcp.rs", src).len(), 1);
        assert!(lint_str("crates/client/src/lib.rs", src).is_empty());
    }

    #[test]
    fn invariant_expect_is_allowed() {
        assert!(lint_str(
            "crates/block/src/store.rs",
            "let v = map.get(&k).expect(\"invariant: inserted above\");\n"
        )
        .is_empty());
        assert_eq!(
            lint_str(
                "crates/block/src/store.rs",
                "let v = map.get(&k).expect(\"present\");\n"
            )
            .len(),
            1
        );
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "\
fn real() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn real2() { z.unwrap(); }
";
        let v = lint_str("crates/cuckoo/src/map.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 6);
    }

    #[test]
    fn taxonomy_flags_construction_not_patterns() {
        // Construction outside rpc/common: flagged.
        let v = lint_str(
            "crates/client/src/lib.rs",
            "return Err(JiffyError::Unavailable(format!(\"srv-{id}\")));\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "error-taxonomy");
        // Patterns: exempt.
        for pat in [
            "if matches!(e, JiffyError::Timeout { .. }) {\n",
            "if let JiffyError::Unavailable(_) = e {\n",
            "Err(JiffyError::Unavailable(msg)) => retry(),\n",
        ] {
            assert!(
                lint_str("crates/client/src/lib.rs", pat).is_empty(),
                "{pat}"
            );
        }
        // Construction on the right of a match arm: flagged.
        let v = lint_str(
            "crates/client/src/lib.rs",
            "Fault::Drop => Err(JiffyError::Timeout { after_ms: 5 }),\n",
        );
        assert_eq!(v.len(), 1);
        // rpc/common may construct freely.
        assert!(lint_str(
            "crates/rpc/src/fault.rs",
            "Err(JiffyError::Timeout { after_ms: 5 })\n"
        )
        .is_empty());
    }

    #[test]
    fn internal_rid_flags_bare_zero_in_datareq_construction() {
        // Multi-line construction (the rustfmt shape).
        let src = "\
fn probe(conn: &Conn) -> Result<Envelope> {
    conn.call(Envelope::DataReq {
        id: 0,
        req: DataRequest::Ping,
        tenant: TenantId::ANONYMOUS,
    })
}
";
        let v = lint_str("crates/client/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "internal-rid");
        assert_eq!(v[0].line, 3);
        // The sanctioned spelling, patterns, other envelopes, other
        // zero-valued fields, and the proto crate itself: all exempt.
        for (rel, ok) in [
            (
                "crates/client/src/lib.rs",
                "Envelope::DataReq { id: INTERNAL_RID, req, tenant }\n",
            ),
            (
                "crates/client/src/lib.rs",
                "Envelope::DataReq { id: 0, .. } => replay(),\n",
            ),
            (
                "crates/client/src/lib.rs",
                "Envelope::DataResp { id: 0, resp }\n",
            ),
            (
                "crates/server/src/lib.rs",
                "Envelope::DataReq { id: rid, req, tenant }\n",
            ),
            (
                "crates/server/src/lib.rs",
                "let x = Thing { rid: 0, id: 7 };\n",
            ),
            (
                "crates/proto/src/messages.rs",
                "Envelope::DataReq { id: 0, req, tenant }\n",
            ),
        ] {
            assert!(lint_str(rel, ok).is_empty(), "{rel}: {ok}");
        }
    }

    #[test]
    fn dispatch_catch_all_is_flagged() {
        let src = "\
fn dispatch(req: ControlRequest) -> u32 {
    match req {
        ControlRequest::RegisterJob { .. } => 1,
        _ => 0,
    }
}
";
        let v = lint_str("crates/controller/src/controller.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "exhaustive-dispatch");
        assert_eq!(v[0].line, 4);
        // Same source in a crate outside controller/server: out of scope.
        assert!(lint_str("crates/client/src/lib.rs", src).is_empty());
    }

    #[test]
    fn named_catch_all_and_non_dispatch_matches_are_exempt() {
        // `other =>` shows intent (sharding fan-out does this): allowed.
        let named = "\
fn route(req: ControlRequest) -> u32 {
    match req {
        ControlRequest::RegisterJob { .. } => 1,
        other => job_of(&other),
    }
}
";
        assert!(lint_str("crates/controller/src/sharding.rs", named).is_empty());
        // `use ControlRequest::*` arms don't carry the literal prefix, so
        // helper matches like `job_of` stay out of the rule's scope.
        let glob = "\
fn job_of(req: &ControlRequest) -> Option<JobId> {
    use ControlRequest::*;
    match req {
        DeregisterJob { job } => Some(*job),
        _ => None,
    }
}
";
        assert!(lint_str("crates/controller/src/sharding.rs", glob).is_empty());
        // A match over some other enum is never a dispatch match.
        let other_enum = "\
fn f(s: &DsSkeleton) -> u32 {
    match s {
        DsSkeleton::Kv { .. } => 1,
        _ => 0,
    }
}
";
        assert!(lint_str("crates/server/src/server.rs", other_enum).is_empty());
    }

    #[test]
    fn nested_match_wildcard_not_attributed_to_dispatch() {
        let src = "\
fn dispatch(req: DataRequest) -> u32 {
    match req {
        DataRequest::Op { block, op } => {
            match op {
                DsOp::KvGet { .. } => 1,
                _ => 2,
            }
        }
        DataRequest::Subscribe { .. } => 3,
    }
}
";
        assert!(lint_str("crates/server/src/server.rs", src).is_empty());
        // And the inverse: a dispatch wildcard is still caught even when
        // a clean nested match sits inside one of its arms.
        let src = "\
fn dispatch(req: DataRequest) -> u32 {
    match req {
        DataRequest::Op { block, op } => {
            match op {
                DsOp::KvGet { .. } => 1,
                other => cost(other),
            }
        }
        _ => 3,
    }
}
";
        let v = lint_str("crates/server/src/server.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 9);
    }

    #[test]
    fn journal_before_ack_flags_unjournaled_mutating_arms() {
        let src = "\
fn dispatch(req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::RegisterJob { name } => {
            st.jobs.insert(job, entry);
            Ok(ControlResponse::JobRegistered { job })
        }
        ControlRequest::GetStats => Ok(ControlResponse::Stats(stats)),
    }
}
";
        let v = lint_str("crates/controller/src/controller.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "journal-before-ack");
        assert_eq!(v[0].line, 5, "the ack line is reported");
        // Same shape outside the dispatch crates: out of scope.
        assert!(lint_str("crates/client/src/lib.rs", src).is_empty());
    }

    #[test]
    fn journal_before_ack_accepts_journaled_arms_and_routers() {
        // The canonical shape: mutate, journal, ack.
        let good = "\
fn dispatch(req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::CreatePrefix { job, name } => {
            let ops = self.create_prefix(&mut st, job, &name)?;
            self.journal_append(&mut st, ops)?;
            Ok(ControlResponse::Created)
        }
        ControlRequest::Heartbeat { server, .. } => {
            st.detector.record(server, now);
            Ok(ControlResponse::Ack)
        }
    }
}
";
        assert!(lint_str("crates/controller/src/controller.rs", good).is_empty());
        // Journaling only *after* the ack was minted is still a bug.
        let late = "\
fn dispatch(req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::RenewLease { job, name } => {
            let resp = Ok(ControlResponse::Renewed(renewed));
            self.journal_append(&mut st, ops)?;
            resp
        }
    }
}
";
        let v = lint_str("crates/controller/src/controller.rs", late);
        assert_eq!(v.len(), 1, "{v:?}");
        // Routers forward without minting a response: exempt, including
        // multi-pattern arms.
        let router = "\
fn dispatch(&self, req: ControlRequest) -> Result<ControlResponse> {
    match &req {
        ControlRequest::RegisterJob { .. } => self.shards[0].dispatch(req),
        ControlRequest::JoinServer { .. }
        | ControlRequest::LeaveServer { .. }
        | ControlRequest::ListServers => self.shards[0].dispatch(req),
        other => self.route(other).dispatch(req),
    }
}
";
        assert!(lint_str("crates/controller/src/sharding.rs", router).is_empty());
    }

    #[test]
    fn journal_before_ack_sees_through_nested_matches() {
        // A journal call or ack inside an arm's nested match still
        // belongs to the arm.
        let src = "\
fn dispatch(req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::FlushPrefix { job, name, path } => {
            match self.flush(&mut st, job, &name, &path) {
                Ok(ops) => self.journal_append(&mut st, ops)?,
                Err(e) => return Err(e),
            }
            Ok(ControlResponse::Flushed)
        }
    }
}
";
        assert!(lint_str("crates/controller/src/controller.rs", src).is_empty());
    }

    #[test]
    fn journal_before_ack_recognizes_shard_forwarding() {
        // A shard router that mints its own response literal (fan-outs,
        // cross-shard replies) satisfies the rule by forwarding through
        // dispatch_journaled — the shard journals before acking.
        let good = "\
fn dispatch_as(&self, req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::AdoptJob { .. } => {
            for i in 0..n {
                self.dispatch_journaled(i, req.clone(), tenant)?;
            }
            Ok(ControlResponse::Ack)
        }
    }
}
";
        assert!(lint_str("crates/controller/src/sharding.rs", good).is_empty());
        // Acking before any forwarding is still a lost mutation.
        let bad = "\
fn dispatch_as(&self, req: ControlRequest) -> Result<ControlResponse> {
    match req {
        ControlRequest::AdoptJob { .. } => {
            if self.known(&req) {
                return Ok(ControlResponse::Ack);
            }
            self.dispatch_journaled(0, req, tenant)
        }
    }
}
";
        let v = lint_str("crates/controller/src/sharding.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "journal-before-ack");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn dispatch_rule_skips_test_regions_and_matches_macro() {
        let src = "\
fn f(e: &JiffyError) -> bool {
    matches!(e, JiffyError::Timeout { .. })
}
#[cfg(test)]
mod tests {
    fn t(req: ControlRequest) -> u32 {
        match req {
            ControlRequest::RegisterJob { .. } => 1,
            _ => 0,
        }
    }
}
";
        assert!(lint_str("crates/controller/src/controller.rs", src).is_empty());
    }
}
