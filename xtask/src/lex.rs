//! A minimal Rust token lexer for the static-analysis rules.
//!
//! Vendored on purpose (same constraint as the PR 2 lint rules: no
//! `syn`, no proc-macro machinery) — the analyses in `analysis.rs` need
//! token streams with line numbers, not a full AST. The lexer handles
//! the constructs that break naive line scanning: nested block
//! comments, string/char/raw-string literals, lifetimes vs. char
//! literals, and `r#ident` raw identifiers.
//!
//! Line comments are scanned for `xtask-allow(<rule>): <reason>`
//! suppression markers before being discarded; everything else that is
//! not a token (whitespace, comments, attributes' shebang) vanishes.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier / literal text; single-char punctuation stores itself.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    Char,
    Lifetime,
    Punct(char),
}

/// A `// xtask-allow(<rule>): <reason>` suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment appears on.
    pub line: usize,
    pub rule: String,
    /// Trimmed reason text; empty reasons are themselves a violation.
    pub reason: String,
}

/// Lexer output: the token stream plus any suppression comments seen.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// Returns the allow entry (if any) for `rule` on `line`.
    pub fn allow_on(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.line == line && a.rule == rule)
    }
}

/// Parses `xtask-allow(rule): reason` out of a comment body.
fn parse_allow(comment: &str, line: usize, out: &mut Vec<Allow>) {
    let Some(pos) = comment.find("xtask-allow(") else {
        return;
    };
    let rest = &comment[pos + "xtask-allow(".len()..];
    let Some(close) = rest.find(')') else { return };
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
    out.push(Allow { line, rule, reason });
}

/// Lexes `src` into tokens. Unterminated literals consume to EOF rather
/// than erroring: the linter must degrade gracefully on code that
/// rustc itself will reject.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: scan for an allow marker, then skip.
                let end = src[i..].find('\n').map(|p| i + p).unwrap_or(b.len());
                parse_allow(&src[i..end], line, &mut allows);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (ni, nl) = skip_raw_string(b, i, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'"' => {
                let (ni, nl) = skip_string(b, i, line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: 'x' / '\n' are
                // chars; 'ident (no closing quote) is a lifetime.
                if is_char_literal(b, i) {
                    let (ni, nl) = skip_char(b, i, line);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    i = ni;
                    line = nl;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..j].to_string(),
                        line,
                    });
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // `r#ident` raw identifiers: the `r` was consumed as part
                // of this ident only if no `#` follows; handle the prefix
                // case where we sit on `r` and `#ident` follows.
                if j == i + 1 && (c == b'r') && b.get(j) == Some(&b'#') {
                    let rstart = j + 1;
                    let mut k = rstart;
                    while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[rstart..k].to_string(),
                        line,
                    });
                    i = k;
                    continue;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                // Good enough for analysis: consume digits, `_`, `.`
                // (float), exponent letters and hex digits. A trailing
                // range `1..x` is protected by not eating a second dot.
                let mut seen_dot = false;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && !seen_dot
                        && b.get(j + 1).is_none_or(|n| n.is_ascii_digit())
                    {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { toks, allows }
}

/// Whether position `i` (at `r` or `b`) starts a raw string (`r"`,
/// `r#"`, `br"`, `br#"`).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) != Some(&b'r') {
            return false;
        }
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn skip_raw_string(b: &[u8], i: usize, mut line: usize) -> (usize, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < b.len() {
        if b[j] == b'\n' {
            line += 1;
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, line);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, line)
}

fn skip_string(b: &[u8], i: usize, mut line: usize) -> (usize, usize) {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => return (j + 1, line),
            _ => j += 1,
        }
    }
    (j, line)
}

/// `'` starts a char literal iff an (escaped) char followed by `'` comes
/// next; otherwise it is a lifetime.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c != b'\'' => b.get(i + 2) == Some(&b'\''),
        _ => false,
    }
}

fn skip_char(b: &[u8], i: usize, line: usize) -> (usize, usize) {
    let mut j = i + 1;
    if b.get(j) == Some(&b'\\') {
        j += 2;
        // Multi-char escapes (\x41, \u{..}) run to the closing quote.
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (j + 1, line);
    }
    (j + 2, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "fn fake() { .lock() }"; // .call( in comment
            /* nested /* block */ .write() */
            let b = r#"raw ".lock()" body"#;
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = 1;\n/* c\nc\nc */\nlet b = 2;\n";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
    }

    #[test]
    fn allow_comments_are_collected() {
        let src = "fn f() {\n  // xtask-allow(no-guard-across-rpc): journaling order\n  g();\n  // xtask-allow(no-blocking-in-reactor):\n}\n";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].rule, "no-guard-across-rpc");
        assert_eq!(l.allows[0].reason, "journaling order");
        assert_eq!(l.allows[0].line, 2);
        assert_eq!(l.allows[1].reason, "");
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
