//! Seeded negative fixture for `cargo xtask analyze`.
//!
//! Every `VIOLATION` marker below trips exactly one analyzer rule at a
//! known line (pinned by `xtask/tests/analyze_fixture.rs`); the
//! `CLEAN` blocks pin patterns that must *not* fire, so a regression
//! in either direction fails the fixture test.

use std::sync::mpsc::Receiver;

use jiffy_sync::Mutex;

pub struct Client;

pub struct App {
    meta: Mutex<u64>,
    ying: Mutex<u64>,
    yang: Mutex<u64>,
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
    gamma: Mutex<u64>,
    delta: Mutex<u64>,
    client: Client,
}

impl App {
    pub fn new(client: Client) -> Self {
        Self {
            meta: Mutex::new(0),
            ying: Mutex::new(0),
            yang: Mutex::new(0),
            alpha: Mutex::new(0),
            beta: Mutex::new(0),
            gamma: Mutex::new(0),
            delta: Mutex::new(0),
            client,
        }
    }

    /// VIOLATION(no-guard-across-rpc): guard live across a transport
    /// `.call(`.
    pub fn guard_across_call(&self) -> u64 {
        let g = self.meta.lock();
        self.client.call(*g)
    }

    /// VIOLATION(no-guard-across-rpc): the RPC hides one level down in
    /// a same-crate helper; the call summary propagates it.
    pub fn guard_across_helper(&self) {
        let g = self.meta.lock();
        ping(&self.client, *g);
    }

    /// First half of the AB/BA inversion (establishes ying -> yang).
    pub fn take_ying_then_yang(&self) {
        let a = self.ying.lock();
        let b = self.yang.lock();
        drop(b);
        drop(a);
    }

    /// VIOLATION(static-lock-order): closes the cycle against
    /// `take_ying_then_yang`.
    pub fn take_yang_then_ying(&self) {
        let b = self.yang.lock();
        let a = self.ying.lock();
        drop(a);
        drop(b);
    }

    /// Static edge alpha -> beta; the fixture runtime dump observes
    /// this same edge, so the cross-check counts it as covered.
    pub fn alpha_then_beta(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    /// VIOLATION(no-guard-across-rpc) + VIOLATION(xtask-allow): an
    /// allow with an empty reason neither suppresses nor passes vetting.
    pub fn empty_allow_reason(&self) -> u64 {
        let g = self.meta.lock();
        // xtask-allow(no-guard-across-rpc):
        self.client.call(*g)
    }

    /// VIOLATION(xtask-allow): the named rule does not exist.
    pub fn unknown_allow_rule(&self) -> u64 {
        // xtask-allow(not-a-rule): typo'd rule names must not silently vet
        *self.meta.lock()
    }

    /// CLEAN: a non-empty reason on a real rule suppresses the finding.
    pub fn vetted_allow(&self) -> u64 {
        let g = self.meta.lock();
        // xtask-allow(no-guard-across-rpc): fixture proves vetted suppressions work
        self.client.call(*g)
    }

    /// CLEAN: guard explicitly dropped before the RPC.
    pub fn drop_before_call(&self) -> u64 {
        let g = self.meta.lock();
        let v = *g;
        drop(g);
        self.client.call(v)
    }

    /// CLEAN: guard confined to an inner block that closes pre-RPC.
    pub fn scoped_guard(&self) -> u64 {
        let v = {
            let g = self.meta.lock();
            *g
        };
        self.client.call(v)
    }

    /// CLEAN: deref-copy makes the guard a same-statement temporary.
    pub fn deref_copy(&self) -> u64 {
        let v = *self.meta.lock();
        self.client.call(v)
    }
}

fn ping(client: &Client, v: u64) {
    client.call(v);
}

impl Client {
    pub fn call(&self, v: u64) -> u64 {
        v
    }
}

pub struct Widget {
    rx: Receiver<u64>,
}

pub trait EventHandler {
    fn on_ready(&self);
}

impl EventHandler for Widget {
    /// VIOLATION(no-blocking-in-reactor) x2: an event-loop callback
    /// must neither sleep nor block on a channel.
    fn on_ready(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = self.rx.recv();
    }
}
