//! Seeded negative fixture for `cargo xtask lint` — every rule must fire
//! on this file. Lives under `xtask/fixtures/`, which the main lint walk
//! skips; only the fixture test points the linter here.

use std::sync::Mutex; // rule: sync-facade

fn data_path(m: &Mutex<Vec<u8>>) -> Result<u8, jiffy_common::JiffyError> {
    let first = m.lock().unwrap().first().copied(); // rule: no-unwrap
    let v = first.expect("nonempty"); // rule: no-unwrap (undocumented expect)
    if v == 0 {
        // rule: error-taxonomy — a controller may not mint transport faults.
        return Err(jiffy_common::JiffyError::Unavailable("srv-0".into()));
    }
    Ok(v)
}

fn dispatch(req: ControlRequest) -> u32 {
    match req {
        ControlRequest::RegisterJob { .. } => 1,
        _ => 0, // rule: exhaustive-dispatch — bare catch-all hides new variants
    }
}

fn ack_without_journal(req: ControlRequest) -> Result<ControlResponse, ()> {
    match req {
        ControlRequest::CreatePrefix { .. } => {
            // rule: journal-before-ack — the mutation is acked with no
            // journal record; a crash here would lose it.
            Ok(ControlResponse::Ack)
        }
        ControlRequest::AdoptJob { .. } => {
            // rule: journal-before-ack — a router arm minting its own ack
            // must forward through dispatch_journaled (or journal) first.
            Ok(ControlResponse::Ack)
        }
        ControlRequest::GetStats => Ok(ControlResponse::Ack), // read-only: exempt
        other => forward(other),
    }
}

fn internal_probe(conn: &Conn) -> Result<Envelope, ()> {
    conn.call(Envelope::DataReq {
        id: 0, // rule: internal-rid — spell the sentinel INTERNAL_RID
        req: DataRequest::Ping,
        tenant: TenantId::ANONYMOUS,
    })
}

#[cfg(test)]
mod tests {
    // Exempt region: none of these may be reported.
    fn fine() {
        let x: Option<u8> = None;
        let _ = x.unwrap();
    }
}
