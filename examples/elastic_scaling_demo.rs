//! Elastic scaling demo: watch Jiffy allocate and reclaim blocks as a
//! job's intermediate data grows and shrinks — the behaviour behind
//! paper Fig. 11(a). Prints an allocated-vs-used timeline.
//!
//! Run with: `cargo run -p jiffy --example elastic_scaling_demo`

use std::time::Duration;

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn bar(bytes: u64, scale: u64) -> String {
    let width = (bytes * 40 / scale.max(1)) as usize;
    "█".repeat(width.min(60))
}

fn main() -> jiffy::Result<()> {
    // 16 KB blocks, short leases: elasticity visible within seconds.
    let cfg = JiffyConfig::for_testing()
        .with_block_size(16 * 1024)
        .with_lease_duration(Duration::from_millis(500));
    let block_size = cfg.block_size as u64;
    let cluster = JiffyCluster::in_process(cfg, 2, 64)?;
    let job = cluster.client()?.register_job("breathing")?;
    let kv = job.open_kv("intermediate", &[], 1)?;
    let renewer = job.start_lease_renewer(vec!["intermediate".into()], Duration::from_millis(100));

    let sample = |phase: &str, cluster: &JiffyCluster| {
        let used = cluster.used_bytes();
        let allocated = cluster.allocated_blocks() as u64 * block_size;
        println!(
            "{phase:<22} used {:>7} B  allocated {:>7} B ({:>2} blocks)  {}",
            used,
            allocated,
            cluster.allocated_blocks(),
            bar(allocated, 512 * 1024)
        );
    };

    println!("--- growth phase: task writes intermediate data ---");
    for wave in 0..6 {
        for i in 0..120 {
            kv.put(
                format!("w{wave}-k{i}").as_bytes(),
                vec![7u8; 256].as_slice(),
            )?;
        }
        std::thread::sleep(Duration::from_millis(30)); // let splits land
        sample(&format!("after wave {wave}"), &cluster);
    }

    println!("--- shrink phase: downstream consumed the data ---");
    for wave in 0..6 {
        for i in 0..120 {
            kv.delete(format!("w{wave}-k{i}").as_bytes())?;
        }
        std::thread::sleep(Duration::from_millis(60)); // let merges land
        sample(&format!("after consuming {wave}"), &cluster);
    }

    println!("--- lease expiry: the task stops renewing ---");
    drop(renewer);
    std::thread::sleep(Duration::from_millis(1200));
    sample("after lease expiry", &cluster);

    let stats = cluster.client()?.stats()?;
    println!(
        "\nsplits: {}, merges: {}, leases expired: {}, metadata bytes: {}",
        stats.splits, stats.merges, stats.leases_expired, stats.metadata_bytes
    );
    println!(
        "free blocks: {}/{} — capacity returned for other jobs to use",
        stats.free_blocks, stats.total_blocks
    );
    Ok(())
}
