//! MapReduce word count on Jiffy (paper §5.1) — the canonical stateful
//! serverless analytics job. Map tasks tokenize their input partition
//! and exchange intermediate pairs with reduce tasks through Jiffy
//! shuffle files (many concurrent appenders per file, atomic appends).
//!
//! Run with: `cargo run -p jiffy --example mapreduce_wordcount`

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_models::{MapReduceJob, Mapper, Reducer};

struct Tokenize;

impl Mapper for Tokenize {
    fn map(&self, _key: &[u8], value: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for word in String::from_utf8_lossy(value).split_whitespace() {
            let cleaned: String = word
                .chars()
                .filter(|c| c.is_alphanumeric())
                .flat_map(char::to_lowercase)
                .collect();
            if !cleaned.is_empty() {
                emit(cleaned.into_bytes(), b"1".to_vec());
            }
        }
    }
}

struct Count;

impl Reducer for Count {
    fn reduce(&self, _key: &[u8], values: &[Vec<u8>]) -> Vec<u8> {
        values.len().to_string().into_bytes()
    }
}

const CORPUS: &[&str] = &[
    "Serverless architectures offer on-demand elasticity of compute and storage",
    "The core idea in serverless analytics is a shared far-memory system",
    "Existing systems allocate storage resources at the job granularity",
    "Jiffy allocates memory resources at the granularity of fixed size blocks",
    "Multiplexing the available capacity at block granularity allows Jiffy",
    "to match instantaneous job demands at seconds timescales",
    "Jiffy does not require jobs to know intermediate data sizes a priori",
    "as tasks write and delete data Jiffy allocates and deallocates blocks",
];

fn main() -> jiffy::Result<()> {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 32)?;
    let job = cluster.client()?.register_job("wordcount")?;

    // 4 map tasks, 2 lines each; 3 reduce partitions.
    let inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = CORPUS
        .chunks(2)
        .enumerate()
        .map(|(i, lines)| {
            lines
                .iter()
                .enumerate()
                .map(|(j, l)| (format!("{i}-{j}").into_bytes(), l.as_bytes().to_vec()))
                .collect()
        })
        .collect();
    println!(
        "running {} map tasks -> 3 reduce partitions over Jiffy shuffle files",
        inputs.len()
    );

    let mr = MapReduceJob::new(Tokenize, Count, 3);
    let output = mr.run(&job, inputs)?;

    // Top words.
    let mut by_count: Vec<(&[u8], u32)> = output
        .iter()
        .map(|(k, v)| {
            (
                k.as_slice(),
                String::from_utf8_lossy(v).parse::<u32>().unwrap(),
            )
        })
        .collect();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("\n{} distinct words; top 10:", by_count.len());
    for (word, count) in by_count.iter().take(10) {
        println!("  {:>3}  {}", count, String::from_utf8_lossy(word));
    }

    let stats = cluster.client()?.stats()?;
    println!(
        "\nafter the job: {}/{} blocks free (shuffle state released eagerly)",
        stats.free_blocks, stats.total_blocks
    );
    Ok(())
}
