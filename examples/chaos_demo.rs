//! Chaos fabric demo: run real workloads while the transport drops,
//! duplicates, delays and fails RPCs — and watch the data structures
//! stay correct.
//!
//! Run with: `cargo run -p jiffy --example chaos_demo`

use jiffy_sync::Arc;
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::{JiffyClient, JiffyConfig};
use jiffy_harness::{run, HarnessConfig, WorkloadMix};
use jiffy_rpc::{FaultInjector, FaultRule};

fn main() -> jiffy::Result<()> {
    // --- 1. A cluster whose *client* sees a hostile network. -----------
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 16)?;
    let injector = Arc::new(FaultInjector::new(0xC0FFEE));
    injector.set_default_rule(
        FaultRule::none()
            .with_drop(0.05)
            .with_duplicate(0.05)
            .with_error(0.05)
            .with_delay(0.10, Duration::ZERO, Duration::from_micros(500)),
    );
    let chaos_fabric = cluster
        .fabric()
        .clone()
        .with_fault_injection(injector.clone());
    let client = JiffyClient::connect(chaos_fabric, cluster.controller_addr())?;
    let job = client.register_job("chaos-demo")?;

    let kv = job.open_kv("state", &[], 2)?;
    let queue = job.open_queue("events", &[])?;
    injector.set_enabled(true);

    for i in 0..200 {
        kv.put(
            format!("k{}", i % 10).as_bytes(),
            format!("v{i}").as_bytes(),
        )?;
        queue.enqueue(format!("event-{i}").as_bytes())?;
    }
    let mut dequeued = 0u32;
    while queue.dequeue()?.is_some() {
        dequeued += 1;
    }
    injector.set_enabled(false);

    println!("200 puts + 200 enqueues survived the chaos:");
    println!(
        "  kv get(k7)   = {:?}",
        kv.get(b"k7")?.map(String::from_utf8)
    );
    println!("  dequeued     = {dequeued} (exactly once each)");
    println!("  fault stats  = {:?}", injector.stats());
    assert_eq!(dequeued, 200, "queue must deliver every item exactly once");

    // --- 2. A full partition fails fast, then heals. -------------------
    let view = job.resolve("state")?;
    let addr = view.partition.unwrap().blocks()[0].head().addr.clone();
    injector.partition(&addr);
    injector.set_enabled(true);
    let t = Instant::now();
    let err = kv.get(b"k7").unwrap_err();
    println!("\npartitioned {addr}:");
    println!("  op failed in {:?} with: {err}", t.elapsed());
    injector.heal(&addr);
    println!(
        "  healed; get(k7) = {:?}",
        kv.get(b"k7")?.map(String::from_utf8)
    );
    injector.set_enabled(false);

    // --- 3. The harness: seeded, checked, replayable. -------------------
    let cfg = HarnessConfig {
        seed: 0xBEEF,
        ops_per_worker: 150,
        mix: WorkloadMix::all(),
        ..HarnessConfig::default()
    };
    let a = run(&cfg)?;
    let b = run(&cfg)?;
    a.assert_ok();
    b.assert_ok();
    println!(
        "\nharness seed {:#x}: {} events, faults {:?}",
        a.seed,
        a.history.events.len(),
        a.fault_stats
    );
    assert_eq!(
        a.fault_stats, b.fault_stats,
        "same seed, same fault schedule"
    );
    println!("replay with the same seed reproduced the identical schedule");
    Ok(())
}
