//! Quickstart: boot an in-process Jiffy cluster, register a job, and use
//! all three built-in data structures through the Table-1 API.
//!
//! Run with: `cargo run -p jiffy --example quickstart`

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn main() -> jiffy::Result<()> {
    // A cluster with 2 memory servers, 16 blocks each. The default
    // production block size is 128 MB; we use 64 KB here so the demo's
    // elastic behaviour is visible with kilobytes of data.
    let cfg = JiffyConfig::for_testing();
    let cluster = JiffyCluster::in_process(cfg, 2, 16)?;
    println!("cluster up: {cluster:?}");

    // connect() + register the job (paper Fig. 2, step 1).
    let client = cluster.client()?;
    let job = client.register_job("quickstart")?;
    println!("registered {:?}", job.id());

    // A key-value store for shared state (§5.3).
    let kv = job.open_kv("state", &[], 1)?;
    kv.put(b"answer", b"42")?;
    println!("kv get(answer) = {:?}", kv.get(b"answer")?);

    // A FIFO queue for task-to-task messaging (§5.2).
    let queue = job.open_queue("events", &[])?;
    for i in 0..5 {
        queue.enqueue(format!("event-{i}").as_bytes())?;
    }
    while let Some(item) = queue.dequeue()? {
        println!("dequeued {}", String::from_utf8_lossy(&item));
    }

    // A file for bulk intermediate data (§5.1).
    let file = job.open_file("scratch", &[])?;
    file.append(b"hello far memory\n")?;
    file.append(b"stored across fixed-size blocks\n")?;
    print!("{}", String::from_utf8_lossy(&file.read_all()?));

    // Address hierarchy: create a downstream task prefix whose lease
    // renewal also covers `state` (its parent, paper §3.2).
    job.create_addr_prefix("consumer", &["state"])?;
    let renewed = job.renew_lease("consumer")?;
    println!("renewing `consumer` also renewed: {renewed:?}");

    // Checkpoint the KV store to the persistent tier and show stats.
    let bytes = job.flush("state", "s3://demo/ckpt")?;
    println!("flushed {bytes} bytes to the persistent tier");
    let stats = client.stats()?;
    println!(
        "cluster stats: {}/{} blocks free, {} splits, {} merges",
        stats.free_blocks, stats.total_blocks, stats.splits, stats.merges
    );

    job.deregister()?;
    println!("job deregistered; all capacity returned");
    Ok(())
}
