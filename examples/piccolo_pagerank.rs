//! PageRank in the Piccolo model on Jiffy (paper §5.3): kernel tasks
//! share a distributed rank table through Jiffy's KV-store, resolve
//! concurrent rank contributions with a sum accumulator, and checkpoint
//! between supersteps by flushing the table.
//!
//! Run with: `cargo run -p jiffy --example piccolo_pagerank`

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_models::piccolo::{run_kernels, SumF64};
use jiffy_models::PiccoloTable;

const PAGES: u32 = 64;
const KERNELS: usize = 4;
const ITERATIONS: usize = 10;
const DAMPING: f64 = 0.85;

/// Deterministic synthetic link graph: page p links to 3 targets; low
/// page numbers collect disproportionately many in-links, so the rank
/// distribution is visibly skewed (hub pages).
fn links(p: u32) -> [u32; 3] {
    [(p * p + 1) % PAGES, p % 8, (p + 1) % PAGES]
}

fn main() -> jiffy::Result<()> {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 32)?;
    let job = cluster.client()?.register_job("pagerank")?;

    // Control function (master): create the rank tables.
    let ranks = PiccoloTable::create(&job, "ranks", SumF64, 2)?;
    for p in 0..PAGES {
        ranks.put(
            p.to_string().as_bytes(),
            &(1.0 / PAGES as f64).to_le_bytes(),
        )?;
    }

    for iter in 0..ITERATIONS {
        // Each superstep accumulates into a fresh table, then swaps.
        let next_name = format!("ranks-next-{iter}");
        let next = PiccoloTable::create(&job, &next_name, SumF64, 2)?;
        // Base rank from damping.
        for p in 0..PAGES {
            next.put(
                p.to_string().as_bytes(),
                &((1.0 - DAMPING) / PAGES as f64).to_le_bytes(),
            )?;
        }
        let job2 = job.clone();
        let next_name2 = next_name.clone();
        run_kernels(
            &job,
            vec!["ranks".to_string(), next_name.clone()],
            KERNELS,
            move |k| {
                let ranks = PiccoloTable::create(&job2, "ranks", SumF64, 1)?;
                let next = PiccoloTable::create(&job2, &next_name2, SumF64, 1)?;
                let per = PAGES / KERNELS as u32;
                // Local aggregation, then per-target updates — each
                // kernel applies its contributions; different kernels
                // may update the same target, resolved by the sum
                // accumulator semantics (serialized per superstep by the
                // partitioned update pattern below).
                let mut local: std::collections::HashMap<u32, f64> = Default::default();
                for p in (k as u32 * per)..((k as u32 + 1) * per) {
                    let rank = f64::from_le_bytes(
                        ranks
                            .get(p.to_string().as_bytes())?
                            .expect("rank present")
                            .try_into()
                            .unwrap(),
                    );
                    let share = DAMPING * rank / 3.0;
                    for t in links(p) {
                        *local.entry(t).or_insert(0.0) += share;
                    }
                }
                for (t, delta) in local {
                    // Route each target through the kernel that owns it
                    // to keep read-modify-write single-writer: target
                    // owner = t / per. Contributions for foreign targets
                    // go through a claim protocol in real Piccolo; here
                    // we rely on per-key accumulate with retry-free RMW
                    // guarded by the modulo ownership of this demo graph.
                    next.update(t.to_string().as_bytes(), &delta.to_le_bytes())?;
                }
                Ok(())
            },
        )?;
        // Swap: copy next into ranks (master-side, small table).
        for p in 0..PAGES {
            let v = next.get(p.to_string().as_bytes())?.expect("computed");
            ranks.put(p.to_string().as_bytes(), &v)?;
        }
        job.remove_addr_prefix(&next_name).ok();
        let total: f64 = (0..PAGES)
            .map(|p| {
                f64::from_le_bytes(
                    ranks
                        .get(p.to_string().as_bytes())
                        .unwrap()
                        .unwrap()
                        .try_into()
                        .unwrap(),
                )
            })
            .sum();
        println!("iteration {iter:>2}: total rank mass = {total:.6}");
    }

    // Checkpoint the converged ranks (Piccolo checkpoint == Jiffy flush).
    let bytes = ranks.checkpoint(&job, "s3://demo/pagerank-final")?;
    println!("checkpointed final ranks: {bytes} bytes");

    let mut top: Vec<(u32, f64)> = (0..PAGES)
        .map(|p| {
            let v = ranks.get(p.to_string().as_bytes()).unwrap().unwrap();
            (p, f64::from_le_bytes(v.try_into().unwrap()))
        })
        .collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top 5 pages by rank:");
    for (p, r) in top.iter().take(5) {
        println!("  page {p:>2}: {r:.5}");
    }
    Ok(())
}
