//! Streaming word count on a StreamScope-style pipeline (paper §5.2,
//! §6.5): partition tasks split sentences into words and route them by
//! hash to count tasks; Jiffy queues carry the streams and notifications
//! wake idle consumers.
//!
//! Run with: `cargo run -p jiffy --example streaming_dataflow`

use jiffy_sync::Mutex;
use std::collections::HashMap;
use std::time::Instant;

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_models::{StreamPipeline, StreamStage};

fn main() -> jiffy::Result<()> {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 64)?;
    let job = cluster.client()?.register_job("streaming-wc")?;

    // §6.5 topology, scaled to one machine: partition stage -> count
    // stage, connected by keyed queues.
    let pipeline = StreamPipeline::new()
        .stage(StreamStage::new("partition", 4, |_k, sentence, emit| {
            for w in String::from_utf8_lossy(sentence).split_whitespace() {
                emit(w.as_bytes().to_vec(), b"1".to_vec());
            }
        }))
        .stage(StreamStage::new("count", 4, {
            let counts = Mutex::new(HashMap::<Vec<u8>, u64>::new());
            move |word, _one, emit| {
                let mut c = counts.lock();
                let n = c.entry(word.to_vec()).or_insert(0);
                *n += 1;
                emit(word.to_vec(), n.to_le_bytes().to_vec());
            }
        }));

    let (input, collector) = pipeline.launch(&job)?;

    // Feed batches of synthetic sentences (the paper streams Wikipedia
    // sentences; we generate a skewed synthetic stream).
    let vocabulary = [
        "jiffy",
        "elastic",
        "far",
        "memory",
        "serverless",
        "analytics",
        "block",
        "lease",
    ];
    let t0 = Instant::now();
    let batches = 40;
    let per_batch = 16;
    for b in 0..batches {
        for s in 0..per_batch {
            // Zipf-flavoured sentence: early vocabulary words dominate.
            let sentence: Vec<&str> = (0..6)
                .map(|w| vocabulary[(b + s * s + w * w * w) % vocabulary.len()])
                .collect();
            input.send(
                format!("b{b}s{s}").as_bytes(),
                sentence.join(" ").as_bytes(),
            )?;
        }
    }
    input.close()?;
    let events = collector.join().expect("collector panicked")?;
    let elapsed = t0.elapsed();

    // The sink saw one running-count event per word instance.
    let total_words = events.len();
    let mut finals: HashMap<Vec<u8>, u64> = HashMap::new();
    for (word, count_le) in events {
        let count = u64::from_le_bytes(count_le.try_into().unwrap());
        let e = finals.entry(word).or_insert(0);
        *e = (*e).max(count);
    }
    println!(
        "processed {} sentences ({} word events) in {:.1?} ({:.0} events/s)",
        batches * per_batch,
        total_words,
        elapsed,
        total_words as f64 / elapsed.as_secs_f64()
    );
    let mut finals: Vec<(Vec<u8>, u64)> = finals.into_iter().collect();
    finals.sort_by_key(|e| std::cmp::Reverse(e.1));
    println!("final word counts:");
    for (word, count) in &finals {
        println!("  {:>5}  {}", count, String::from_utf8_lossy(word));
    }
    let check: u64 = finals.iter().map(|(_, c)| c).sum();
    assert_eq!(check as usize, total_words);
    Ok(())
}
