//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `boxed` / `prop_recursive`, [`any`] for scalars and
//! small tuples, regex-ish `".{A,B}"` string strategies, integer/float
//! range strategies, the [`collection`] module, `prop_oneof!`,
//! `proptest!`, `prop_assert!` and `prop_assert_eq!`.
//!
//! Differences from upstream proptest, by design:
//! - **No shrinking.** A failing case panics with the deterministic
//!   per-case seed; rerun with `PROPTEST_SEED=<seed>` to reproduce that
//!   exact input.
//! - Strategies are plain seeded generators (`generate(&mut TestRng)`),
//!   not value trees.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod collection;

// ---------------------------------------------------------------------------
// RNG + config + case errors
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies. Wraps the vendored `StdRng`.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on small
        // machines while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    /// Input rejected (e.g. a precondition failed); the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A seeded generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategy: after `depth` wrapping steps the innermost
    /// level bottoms out at `self` (the leaf strategy). The size-control
    /// parameters of upstream proptest are accepted but unused — depth
    /// alone bounds the structures here.
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Strategy backed by a plain function pointer (used for scalars).
pub struct FnStrategy<T>(pub fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

// Tuples of strategies are strategies over tuples of values.
macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}

// Integer / float ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// `&'static str` patterns of the form `".{A,B}"` generate strings of
/// `A..=B` characters (mostly printable ASCII with occasional multibyte
/// characters). Any other pattern is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_dot_repeat(self) {
            Some((lo, hi)) => {
                let len = rng.random_range(lo..=hi);
                let mut s = String::with_capacity(len);
                for _ in 0..len {
                    s.push(random_char(rng));
                }
                s
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

fn random_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', '\u{1F680}', 'ß', '→'];
    if rng.random_bool(0.06) {
        EXOTIC[rng.random_range(0..EXOTIC.len())]
    } else {
        char::from(rng.random_range(0x20u8..0x7f))
    }
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arb_scalar {
    ($($t:ty => $gen:expr),+ $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy($gen)
            }
        }
    )+};
}

arb_scalar! {
    bool => |rng| rng.random(),
    u8 => |rng| rng.random(),
    u16 => |rng| rng.random(),
    u32 => |rng| rng.random(),
    u64 => |rng| rng.random(),
    usize => |rng| rng.random(),
    i8 => |rng| rng.random::<u8>() as i8,
    i16 => |rng| rng.random::<u16>() as i16,
    i32 => |rng| rng.random(),
    i64 => |rng| rng.random(),
    isize => |rng| rng.random::<u64>() as isize,
    u128 => |rng| (u128::from(rng.random::<u64>()) << 64) | u128::from(rng.random::<u64>()),
    i128 => |rng| ((u128::from(rng.random::<u64>()) << 64) | u128::from(rng.random::<u64>())) as i128,
    // Any non-NaN bit pattern (NaN breaks round-trip equality checks).
    f64 => |rng| loop {
        let v = f64::from_bits(rng.random::<u64>());
        if !v.is_nan() {
            return v;
        }
    },
    f32 => |rng| loop {
        let v = f32::from_bits(rng.random::<u32>());
        if !v.is_nan() {
            return v;
        }
    },
    char => |rng| {
        if rng.random_bool(0.85) {
            char::from(rng.random_range(0x20u8..0x7f))
        } else {
            // Unpaired surrogates map to None; substitute the
            // replacement character to stay a valid char.
            char::from_u32(rng.random_range(0u32..=0x10FFFF)).unwrap_or('\u{FFFD}')
        }
    },
}

impl Arbitrary for String {
    type Strategy = &'static str;
    fn arbitrary() -> Self::Strategy {
        ".{0,64}"
    }
}

pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_bool(0.75) {
            Some(self.0.generate(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    type Strategy = OptionStrategy<T::Strategy>;
    fn arbitrary() -> Self::Strategy {
        OptionStrategy(T::arbitrary())
    }
}

macro_rules! arb_tuple {
    ($(($($T:ident),+))+) => {$(
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            type Strategy = ($($T::Strategy,)+);
            fn arbitrary() -> Self::Strategy {
                ($($T::arbitrary(),)+)
            }
        }
    )+};
}

arb_tuple! {
    (T0)
    (T0, T1)
    (T0, T1, T2)
    (T0, T1, T2, T3)
    (T0, T1, T2, T3, T4)
    (T0, T1, T2, T3, T4, T5)
    (T0, T1, T2, T3, T4, T5, T6)
    (T0, T1, T2, T3, T4, T5, T6, T7)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn render_input(dbg: &str) -> String {
    const LIMIT: usize = 1024;
    if dbg.len() > LIMIT {
        let mut cut = LIMIT;
        while !dbg.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}… ({} bytes elided)", &dbg[..cut], dbg.len() - cut)
    } else {
        dbg.to_string()
    }
}

/// Drives one `proptest!` test: `config.cases` deterministic cases, each
/// with its own seed derived from the test name (or `PROPTEST_SEED` to
/// replay a single reported case).
pub fn run_test<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let (base, cases) = match std::env::var("PROPTEST_SEED").ok().and_then(|s| {
        let s = s.trim();
        s.strip_prefix("0x")
            .map_or_else(|| s.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
    }) {
        Some(seed) => (seed, 1),
        None => (fnv1a(name), config.cases),
    };
    for case in 0..cases {
        let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.generate(&mut rng);
        let rendered = render_input(&format!("{value:?}"));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "[{name}] case {case}/{cases} failed: {msg}\n\
                 reproduce with: PROPTEST_SEED={seed:#x}\n\
                 input: {rendered}"
            ),
            Err(payload) => {
                eprintln!(
                    "[{name}] case {case}/{cases} panicked\n\
                     reproduce with: PROPTEST_SEED={seed:#x}\n\
                     input: {rendered}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __left
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    // Internal: no tests left.
    (@cfg ($cfg:expr)) => {};
    // Internal: expand one test fn, recurse on the rest.
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_test(&__config, stringify!($name), &__strategy, |__values| {
                let ($($pat,)+) = __values;
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Entry with explicit config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Entry with default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
        Union,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 0..32);
        let a: Vec<u64> = strat.generate(&mut TestRng::from_seed(42));
        let b: Vec<u64> = strat.generate(&mut TestRng::from_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = ".{2,5}".generate(&mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "len {n} out of bounds: {s:?}");
        }
    }

    #[test]
    fn f64_arbitrary_never_nan() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..10_000 {
            assert!(!any::<f64>().generate(&mut rng).is_nan());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in any::<u32>(), v in crate::collection::vec(0u8..9, 0..8)) {
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
            prop_assert!(v.iter().all(|&b| b < 9));
        }
    }
}
