//! Collection strategies: `vec`, `btree_map`, `hash_map`, `hash_set`.
//!
//! Sizes are `Range<usize>` (half-open, like upstream). For keyed
//! collections the generator draws extra candidates to compensate for
//! duplicate keys, giving up after a bounded number of attempts so a
//! small keyspace cannot loop forever.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

use crate::{Strategy, TestRng};
use rand::RngExt;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut map = BTreeMap::new();
        let target = rng.random_range(self.size.clone());
        let budget = 100 + target * 200;
        let mut attempts = 0usize;
        while map.len() < target && attempts < budget {
            let k = self.keys.generate(rng);
            let v = self.values.generate(rng);
            map.insert(k, v);
            attempts += 1;
        }
        map
    }
}

pub struct HashMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

pub fn hash_map<K, V>(keys: K, values: V, size: Range<usize>) -> HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Hash + Eq,
{
    HashMapStrategy { keys, values, size }
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Hash + Eq,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut map = HashMap::new();
        let target = rng.random_range(self.size.clone());
        let budget = 100 + target * 200;
        let mut attempts = 0usize;
        while map.len() < target && attempts < budget {
            let k = self.keys.generate(rng);
            let v = self.values.generate(rng);
            map.insert(k, v);
            attempts += 1;
        }
        map
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut set = HashSet::new();
        let target = rng.random_range(self.size.clone());
        let budget = 100 + target * 200;
        let mut attempts = 0usize;
        while set.len() < target && attempts < budget {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
