//! Deserialization half of the serde data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;
use std::time::Duration;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence or tuple had too few elements.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    /// An enum carried an out-of-range variant index.
    fn unknown_variant(index: u32, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant index {index}, expected one of {} variants",
            expected.len()
        ))
    }
}

/// A value that can be read from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reads one value from `deserializer`.
    ///
    /// # Errors
    ///
    /// Propagates whatever error the deserializer reports.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful construction of a value (the seed form of [`Deserialize`]).
pub trait DeserializeSeed<'de>: Sized {
    /// The type produced.
    type Value;

    /// Reads one value from `deserializer` using this seed.
    ///
    /// # Errors
    ///
    /// Propagates whatever error the deserializer reports.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can produce the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Receives values from a [`Deserializer`]; every method not overridden
/// reports a type mismatch.
pub trait Visitor<'de>: Sized {
    /// The value this visitor builds.
    type Value;

    /// Writes "what this visitor expects" into a formatter (used in error
    /// messages).
    fn expecting(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool {v}")))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v.into())
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}")))
    }
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected i128 {v}")))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v.into())
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected unsigned integer {v}")))
    }
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected u128 {v}")))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v.into())
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float {v}")))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected char {v:?}")))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected {} raw bytes", v.len())))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom("unexpected enum"))
    }
}

/// Element-by-element access to a sequence being deserialized.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>
    where
        Self: Sized,
    {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map being deserialized.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>
    where
        Self: Sized,
    {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>
    where
        Self: Sized,
    {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error>
    where
        Self: Sized,
    {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    /// Accessor for the variant payload once the tag is known.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`] (used by formats
/// to feed enum variant indices to identifier seeds).
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;

    /// Wraps the value in its deserializer.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Plain-value deserializers and a default error type.
pub mod value {
    use super::{Deserializer, IntoDeserializer, Visitor};
    use std::fmt;
    use std::marker::PhantomData;

    /// Default error type for plain-value deserializers.
    #[derive(Debug)]
    pub struct Error {
        msg: String,
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self {
                msg: msg.to_string(),
            }
        }
    }

    impl crate::ser::Error for Error {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            Self {
                msg: msg.to_string(),
            }
        }
    }

    /// Deserializer over a single `u32` (an enum variant index).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<'de, E: super::Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;

        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer {
                value: self,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_u32 {
        ($($method:ident)*) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*};
    }

    impl<'de, E: super::Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_u32! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
            deserialize_option deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! de_scalar {
    ($($ty:ty, $deserialize:ident, $visit:ident, $expect:literal);* $(;)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl Visitor<'_> for V {
                    type Value = $ty;

                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str($expect)
                    }

                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(V)
            }
        }
    )*};
}

de_scalar! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    i128, deserialize_i128, visit_i128, "an i128";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    u128, deserialize_u128, visit_u128, "a u128";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        v.try_into()
            .map_err(|_| Error::custom(format_args!("u64 {v} out of usize range")))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        v.try_into()
            .map_err(|_| Error::custom(format_args!("i64 {v} out of isize range")))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl Visitor<'_> for V {
            type Value = String;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl Visitor<'_> for V {
            type Value = ();

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("an option")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                // Cap the pre-allocation: a corrupt length prefix must not
                // OOM before element decoding fails.
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(v) = seq.next_element_seed(PhantomData)? {
                    out.push(v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some(k) = map.next_key_seed(PhantomData)? {
                    let v = map.next_value_seed(PhantomData)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some(k) = map.next_key_seed(PhantomData)? {
                    let v = map.next_value_seed(PhantomData)?;
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

/// `Result` deserializes as a two-variant enum: `Ok` = 0, `Err` = 1.
impl<'de, T: Deserialize<'de>, E2: Deserialize<'de>> Deserialize<'de> for Result<T, E2> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, E2>(PhantomData<(T, E2)>);
        impl<'de, T: Deserialize<'de>, E2: Deserialize<'de>> Visitor<'de> for V<T, E2> {
            type Value = Result<T, E2>;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a Result")
            }

            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant): (u32, _) = data.variant()?;
                match idx {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    other => Err(Error::unknown_variant(other, &["Ok", "Err"])),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = Duration;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a Duration")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Duration, A::Error> {
                let secs: u64 = seq
                    .next_element_seed(PhantomData)?
                    .ok_or_else(|| Error::invalid_length(0, &"2"))?;
                let nanos: u32 = seq
                    .next_element_seed(PhantomData)?
                    .ok_or_else(|| Error::invalid_length(1, &"2"))?;
                Ok(Duration::new(secs, nanos))
            }
        }
        deserializer.deserialize_struct("Duration", &["secs", "nanos"], V)
    }
}

macro_rules! de_tuple {
    ($(($len:expr => $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        f.write_str(concat!("a tuple of length ", stringify!($len)))
                    }

                    #[allow(non_snake_case)]
                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        let mut taken = 0usize;
                        $(
                            let $name: $name = match seq.next_element_seed(PhantomData)? {
                                Some(v) => { taken += 1; v }
                                None => return Err(Error::invalid_length(taken, &stringify!($len))),
                            };
                        )+
                        let _ = taken;
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )*};
}

de_tuple! {
    (1 => A)
    (2 => A, B)
    (3 => A, B, C)
    (4 => A, B, C, D)
    (5 => A, B, C, D, E)
    (6 => A, B, C, D, E, F)
    (7 => A, B, C, D, E, F, G)
    (8 => A, B, C, D, E, F, G, H)
    (9 => A, B, C, D, E, F, G, H, I)
    (10 => A, B, C, D, E, F, G, H, I, J)
    (11 => A, B, C, D, E, F, G, H, I, J, K)
    (12 => A, B, C, D, E, F, G, H, I, J, K, L)
}
