//! Serialization half of the serde data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;
use std::time::Duration;

/// Errors produced while serializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be written to any [`Serializer`].
pub trait Serialize {
    /// Feeds this value into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates whatever error the serializer reports.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can consume the serde data model.
pub trait Serializer: Sized {
    /// Value produced on success (usually `()` for writer-style formats).
    type Ok;
    /// Error type of the format.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Incremental serializer for sequence elements.
pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuple elements.
pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuple-struct fields.
pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuple-variant fields.
pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for map entries.
pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for struct fields.
pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for struct-variant fields.
pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_scalar {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

ser_scalar! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

/// `Result` serializes as a two-variant enum: `Ok` = 0, `Err` = 1.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

/// `Duration` serializes as a 2-field struct: whole seconds + subsecond
/// nanoseconds.
impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Duration", 2)?;
        st.serialize_field("secs", &self.as_secs())?;
        st.serialize_field("nanos", &self.subsec_nanos())?;
        st.end()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple(0 $(+ { let _ = stringify!($name); 1 })+)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    )*};
}

ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}
