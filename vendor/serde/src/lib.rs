//! Minimal in-repo stand-in for the `serde` crate.
//!
//! Implements the serde **data model** — the [`ser`] and [`de`] trait
//! families — together with `Serialize`/`Deserialize` impls for the std
//! types this workspace puts on the wire (scalars, strings, `Vec`,
//! `Option`, `Box`, tuples, maps, `Result`, `Duration`). The derive
//! macros are re-exported from the companion `serde_derive` crate.
//!
//! Formats in this workspace (`jiffy-proto::wire`) implement
//! `Serializer`/`Deserializer` against these traits exactly as they
//! would against upstream serde; the subset here is the full surface
//! those implementations touch.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
