//! Minimal in-repo stand-in for the `rand` crate.
//!
//! Deterministic pseudo-random number generation with the rand-0.10
//! trait vocabulary used by this workspace: [`Rng`], [`RngExt`]
//! (`random` / `random_range` / `random_bool`), [`SeedableRng`], and
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64). Not
//! cryptographically secure — statistical quality only.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniformly random value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A tiny, fast SplitMix64 generator (used where statistical quality
    /// matters less than speed and size).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        x: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                x: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(2..=8usize);
            assert!((2..=8).contains(&v));
            let w = r.random_range(5..10u32);
            assert!((5..10).contains(&w));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
