//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! Supports the API surface the workspace benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `throughput`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! timed over a bounded number of iterations and the mean per-iteration
//! wall-clock time is printed — no warm-up, statistics, or reports.
//!
//! Setting `JIFFY_BENCH_QUICK` (to anything but `0`) clamps every
//! benchmark to a fixed low sample count and short measurement window,
//! turning the whole suite into a compile-and-run smoke gate
//! (`cargo xtask bench-smoke`). Numbers from quick mode are not
//! comparable across runs — it exists to prove the benches still run.

use std::time::{Duration, Instant};

/// Fixed sample count in quick mode.
const QUICK_SAMPLES: usize = 2;
/// Per-benchmark measurement budget in quick mode.
const QUICK_MEASUREMENT: Duration = Duration::from_millis(50);

fn quick_mode() -> bool {
    std::env::var("JIFFY_BENCH_QUICK").is_ok_and(|v| v != "0")
}

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_bench(&name.into(), 10, Duration::from_secs(1), None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let (sample_size, measurement_time) = if quick_mode() {
        (QUICK_SAMPLES, QUICK_MEASUREMENT)
    } else {
        (sample_size, measurement_time)
    };
    // Calibrate: run one iteration to size the batch so the whole
    // benchmark stays within roughly `measurement_time`.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.max(Duration::from_millis(10));
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64
        / sample_size.max(1) as u64;
    let iters = iters.max(1);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = (bytes as f64 / (mean_ns / 1e9)) / (1024.0 * 1024.0 * 1024.0);
            println!("{name}: {mean_ns:.1} ns/iter ({gib_s:.3} GiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (mean_ns / 1e9);
            println!("{name}: {mean_ns:.1} ns/iter ({elem_s:.0} elem/s)");
        }
        None => println!("{name}: {mean_ns:.1} ns/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
