//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! Exposes the subset of the parking_lot API this workspace uses —
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards —
//! implemented on top of `std::sync`. Poisoning is handled by
//! propagating the inner value on a poisoned lock (a panicking thread
//! does not permanently wedge the lock, matching parking_lot semantics
//! closely enough for this workspace).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, WaitTimeoutResult};
use std::time::Duration;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can wait on
/// the guard in place (parking_lot's API) without unsafe code; it is
/// `None` only transiently inside a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable with the `parking_lot::Condvar` API (waits on a
/// [`MutexGuard`] in place instead of consuming and returning it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, r): (_, WaitTimeoutResult) = match self.inner.wait_timeout(g, timeout) {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        r.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                c.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        assert!(c.wait_for(&mut g, Duration::from_millis(5)));
    }
}
