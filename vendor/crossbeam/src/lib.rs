//! Minimal in-repo stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`] — MPMC bounded/unbounded channels with the
//! crossbeam-channel API subset this workspace uses — built on
//! `std::sync::{Mutex, Condvar}`.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        recv_cv: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        send_cv: Condvar,
        capacity: Option<usize>,
    }

    /// Sending half of a channel. Cloneable; the channel disconnects when
    /// every sender is dropped.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Timeout => f.write_str("channel recv timed out"),
                Self::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Self::Empty => f.write_str("channel empty"),
                Self::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl<T: Send> std::error::Error for SendError<T> where T: fmt::Debug {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}
    impl std::error::Error for TryRecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel with capacity `cap` (sends block while
    /// full; `cap` of 0 is treated as 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        match inner.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = match self.inner.send_cv.wait(st) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.inner.recv_cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Receives a message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on timeout,
        /// [`RecvTimeoutError::Disconnected`] when empty and disconnected.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, res) = match self.inner.recv_cv.wait_timeout(st, deadline - now) {
                    Ok(v) => v,
                    Err(p) => p.into_inner(),
                };
                st = g;
                if res.timed_out() && st.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a queued message if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.inner);
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.send_cv.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(1);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv(), Ok(i));
            }
            t.join().unwrap();
        }
    }
}
