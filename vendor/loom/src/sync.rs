//! Model-aware synchronization primitives.
//!
//! Inside a [`crate::model`] execution these participate in exhaustive
//! scheduling: acquisitions are model-level resources the scheduler
//! arbitrates, and every operation is a yield point. Outside a model
//! they degrade to plain `std::sync` behavior (upstream loom panics
//! instead; the passthrough lets a crate compiled with its loom feature
//! still run its ordinary tests).
//!
//! API note: unlike upstream loom (which mirrors `std::sync`'s poisoning
//! `LockResult` signatures), lock methods here return guards directly in
//! the `parking_lot` style — the only consumer is the `jiffy-sync`
//! facade, which uses that style on every backend.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self as stdsync, Mutex as StdMutex};
use std::time::Duration;

use crate::exec::{current_ctx, Execution, Resource};

pub use std::sync::Arc;

/// Lazily-registered model resource id, revalidated per execution so a
/// primitive created in one schedule replay is never confused with its
/// previous incarnation.
struct ResCell {
    cell: StdMutex<Option<(usize, usize)>>,
}

impl ResCell {
    const fn new() -> Self {
        Self {
            cell: StdMutex::new(None),
        }
    }

    fn id(&self, exec: &Arc<Execution>, make: impl FnOnce() -> Resource) -> usize {
        let key = Arc::as_ptr(exec) as usize;
        let mut c = match self.cell.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match *c {
            Some((k, id)) if k == key => id,
            _ => {
                let id = exec.register_resource(make());
                *c = Some((key, id));
                id
            }
        }
    }
}

/// A mutex arbitrated by the model scheduler.
pub struct Mutex<T: ?Sized> {
    res: ResCell,
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`]. The std guard lives in an `Option` so
/// [`Condvar`] can wait on the guard in place.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `(execution, resource id)` when acquired inside a model.
    model: Option<(Arc<Execution>, usize)>,
    inner: Option<stdsync::MutexGuard<'a, T>>,
}

fn std_lock<T: ?Sized>(m: &StdMutex<T>) -> stdsync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            res: ResCell::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Creates a new mutex with a lock-order class name (recorded by the
    /// instrumented `jiffy-sync` backend; ignored under the model, which
    /// finds deadlocks by exploration instead).
    pub const fn new_named(value: T, _name: &'static str) -> Self {
        Self::new(value)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn model_acquire(&self, exec: &Arc<Execution>, tid: usize) -> usize {
        let res = self.res.id(exec, || Resource::Mutex { held_by: None });
        exec.block_until(tid, res, |tid, r| match r {
            Resource::Mutex { held_by } => {
                if held_by.is_none() {
                    *held_by = Some(tid);
                    true
                } else {
                    false
                }
            }
            _ => unreachable!("mutex resource id maps to non-mutex"),
        });
        res
    }

    /// Acquires the mutex, blocking (model-level inside `model`) until
    /// available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_ctx() {
            Some((exec, tid)) => {
                let res = self.model_acquire(&exec, tid);
                MutexGuard {
                    lock: self,
                    model: Some((exec, res)),
                    inner: Some(std_lock(&self.inner)),
                }
            }
            None => MutexGuard {
                lock: self,
                model: None,
                inner: Some(std_lock(&self.inner)),
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match current_ctx() {
            Some((exec, tid)) => {
                exec.yield_point(tid);
                let res = self.res.id(&exec, || Resource::Mutex { held_by: None });
                let got = exec.with_resource(res, |r| match r {
                    Resource::Mutex { held_by } => {
                        if held_by.is_none() {
                            *held_by = Some(tid);
                            true
                        } else {
                            false
                        }
                    }
                    _ => unreachable!(),
                });
                got.then(|| MutexGuard {
                    lock: self,
                    model: Some((exec, res)),
                    inner: Some(std_lock(&self.inner)),
                })
            }
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    model: None,
                    inner: Some(g),
                }),
                Err(stdsync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    model: None,
                    inner: Some(p.into_inner()),
                }),
                Err(stdsync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::Mutex(..)")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the std guard first
        if let Some((exec, res)) = self.model.take() {
            exec.with_resource(res, |r| match r {
                Resource::Mutex { held_by } => *held_by = None,
                _ => unreachable!(),
            });
            exec.wake_blocked_on(res);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock arbitrated by the model scheduler.
pub struct RwLock<T: ?Sized> {
    res: ResCell,
    inner: stdsync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    model: Option<(Arc<Execution>, usize, usize)>,
    inner: Option<stdsync::RwLockReadGuard<'a, T>>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    model: Option<(Arc<Execution>, usize)>,
    inner: Option<stdsync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            res: ResCell::new(),
            inner: stdsync::RwLock::new(value),
        }
    }

    /// Creates a new reader-writer lock with a lock-order class name
    /// (recorded by the instrumented `jiffy-sync` backend; ignored under
    /// the model, which finds deadlocks by exploration instead).
    pub const fn new_named(value: T, _name: &'static str) -> Self {
        Self::new(value)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn res_id(&self, exec: &Arc<Execution>) -> usize {
        self.res.id(exec, || Resource::RwLock {
            writer: None,
            readers: Vec::new(),
        })
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match current_ctx() {
            Some((exec, tid)) => {
                let res = self.res_id(&exec);
                exec.block_until(tid, res, |tid, r| match r {
                    Resource::RwLock { writer, readers } => {
                        if writer.is_none() {
                            readers.push(tid);
                            true
                        } else {
                            false
                        }
                    }
                    _ => unreachable!(),
                });
                RwLockReadGuard {
                    model: Some((exec, res, tid)),
                    inner: Some(match self.inner.read() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    }),
                }
            }
            None => RwLockReadGuard {
                model: None,
                inner: Some(match self.inner.read() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }),
            },
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match current_ctx() {
            Some((exec, tid)) => {
                let res = self.res_id(&exec);
                exec.block_until(tid, res, |tid, r| match r {
                    Resource::RwLock { writer, readers } => {
                        if writer.is_none() && readers.is_empty() {
                            *writer = Some(tid);
                            true
                        } else {
                            false
                        }
                    }
                    _ => unreachable!(),
                });
                RwLockWriteGuard {
                    model: Some((exec, res)),
                    inner: Some(match self.inner.write() {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    }),
                }
            }
            None => RwLockWriteGuard {
                model: None,
                inner: Some(match self.inner.write() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                }),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::RwLock(..)")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((exec, res, tid)) = self.model.take() {
            exec.with_resource(res, |r| match r {
                Resource::RwLock { readers, .. } => {
                    if let Some(pos) = readers.iter().position(|&t| t == tid) {
                        readers.swap_remove(pos);
                    }
                }
                _ => unreachable!(),
            });
            exec.wake_blocked_on(res);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((exec, res)) = self.model.take() {
            exec.with_resource(res, |r| match r {
                Resource::RwLock { writer, .. } => *writer = None,
                _ => unreachable!(),
            });
            exec.wake_blocked_on(res);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// A condition variable arbitrated by the model scheduler.
pub struct Condvar {
    res: ResCell,
    inner: stdsync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            res: ResCell::new(),
            inner: stdsync::Condvar::new(),
        }
    }

    fn wait_model<T: ?Sized>(
        &self,
        exec: &Arc<Execution>,
        tid: usize,
        guard: &mut MutexGuard<'_, T>,
        timed: bool,
    ) -> bool {
        let cv = self.res.id(exec, || Resource::Condvar {
            waiters: std::collections::VecDeque::new(),
        });
        let (g_exec, mutex_res) = guard
            .model
            .clone()
            .expect("condvar wait with a guard acquired outside the model");
        debug_assert!(Arc::ptr_eq(&g_exec, exec));
        // Enqueue as waiter, then release the mutex. No yield happens in
        // between, so the enqueue+release pair is atomic model-side.
        exec.with_resource(cv, |r| match r {
            Resource::Condvar { waiters } => waiters.push_back(tid),
            _ => unreachable!(),
        });
        guard.inner = None; // drop the std guard
        exec.with_resource(mutex_res, |r| match r {
            Resource::Mutex { held_by } => *held_by = None,
            _ => unreachable!(),
        });
        exec.wake_blocked_on(mutex_res);
        let timed_out = exec.park_on_condvar(tid, cv, timed);
        // Reacquire the mutex before returning, std guard included.
        exec.block_until(tid, mutex_res, |tid, r| match r {
            Resource::Mutex { held_by } => {
                if held_by.is_none() {
                    *held_by = Some(tid);
                    true
                } else {
                    false
                }
            }
            _ => unreachable!(),
        });
        guard.inner = Some(std_lock(&guard.lock.inner));
        timed_out
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match current_ctx() {
            Some((exec, tid)) => {
                self.wait_model(&exec, tid, guard, false);
            }
            None => {
                let g = guard.inner.take().expect("guard present outside wait");
                guard.inner = Some(match self.inner.wait(g) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                });
            }
        }
    }

    /// Blocks until notified or `timeout` elapses (model: the timeout may
    /// fire at any schedule point). Returns `true` on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        match current_ctx() {
            Some((exec, tid)) => self.wait_model(&exec, tid, guard, true),
            None => {
                let g = guard.inner.take().expect("guard present outside wait");
                let (g, r) = match self.inner.wait_timeout(g, timeout) {
                    Ok(v) => v,
                    Err(p) => p.into_inner(),
                };
                guard.inner = Some(g);
                r.timed_out()
            }
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        match current_ctx() {
            Some((exec, tid)) => {
                exec.yield_point(tid);
                let cv = self.res.id(&exec, || Resource::Condvar {
                    waiters: std::collections::VecDeque::new(),
                });
                exec.notify_condvar(cv, 1);
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        match current_ctx() {
            Some((exec, tid)) => {
                exec.yield_point(tid);
                let cv = self.res.id(&exec, || Resource::Condvar {
                    waiters: std::collections::VecDeque::new(),
                });
                exec.notify_condvar(cv, usize::MAX);
            }
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("loom::Condvar")
    }
}

pub mod atomic {
    //! Model-aware atomics: every operation is a scheduler yield point;
    //! the value itself lives in the corresponding `std` atomic (the
    //! serialized scheduler makes all explored interleavings SeqCst).

    pub use std::sync::atomic::Ordering;

    use crate::exec::current_ctx;

    macro_rules! atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-aware atomic integer.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Creates a new atomic.
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                fn sync(&self) {
                    if let Some((exec, tid)) = current_ctx() {
                        exec.yield_point(tid);
                    }
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $ty {
                    self.sync();
                    self.0.load(order)
                }

                /// Stores a value.
                pub fn store(&self, v: $ty, order: Ordering) {
                    self.sync();
                    self.0.store(v, order)
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.swap(v, order)
                }

                /// Adds, returning the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_add(v, order)
                }

                /// Subtracts, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_sub(v, order)
                }

                /// Bitwise-ors, returning the previous value.
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_or(v, order)
                }

                /// Bitwise-ands, returning the previous value.
                pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_and(v, order)
                }

                /// Maximum, returning the previous value.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_max(v, order)
                }

                /// Minimum, returning the previous value.
                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    self.sync();
                    self.0.fetch_min(v, order)
                }

                /// Compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.sync();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Compare-and-exchange (weak form; never fails spuriously
                /// in the model).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Fetch-update loop.
                pub fn fetch_update(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: impl FnMut($ty) -> Option<$ty>,
                ) -> Result<$ty, $ty> {
                    self.sync();
                    self.0.fetch_update(set_order, fetch_order, f)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }

                /// Mutable access (requires exclusive borrow).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }
            }
        };
    }

    atomic_int!(AtomicUsize, AtomicUsize, usize);
    atomic_int!(AtomicU64, AtomicU64, u64);
    atomic_int!(AtomicU32, AtomicU32, u32);
    atomic_int!(AtomicU8, AtomicU8, u8);
    atomic_int!(AtomicI64, AtomicI64, i64);
    atomic_int!(AtomicI32, AtomicI32, i32);

    /// Model-aware atomic boolean.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Creates a new atomic bool.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        fn sync(&self) {
            if let Some((exec, tid)) = current_ctx() {
                exec.yield_point(tid);
            }
        }

        /// Loads the value.
        pub fn load(&self, order: Ordering) -> bool {
            self.sync();
            self.0.load(order)
        }

        /// Stores a value.
        pub fn store(&self, v: bool, order: Ordering) {
            self.sync();
            self.0.store(v, order)
        }

        /// Swaps the value, returning the previous one.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.sync();
            self.0.swap(v, order)
        }

        /// Compare-and-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.sync();
            self.0.compare_exchange(current, new, success, failure)
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }

    /// A fence is a pure yield point in the serialized model.
    pub fn fence(_order: Ordering) {
        if let Some((exec, tid)) = current_ctx() {
            exec.yield_point(tid);
        } else {
            std::sync::atomic::fence(_order)
        }
    }
}
