//! Model-aware threads.

use std::sync::{Arc, Mutex as StdMutex};

use crate::exec::{current_ctx, Execution};

enum Handle<T> {
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Join handle for a thread spawned with [`spawn`].
pub struct JoinHandle<T>(Handle<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result. Mirrors
    /// `std::thread::JoinHandle::join`'s signature; inside a model a
    /// panicking child aborts the whole execution before `join` can
    /// observe it, so the error arm is unreachable in practice.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Handle::Model { exec, tid, result } => {
                let (_, me) = current_ctx().expect("model join handle used outside the model");
                exec.join_thread(me, tid);
                let taken = match result.lock() {
                    Ok(mut g) => g.take(),
                    Err(p) => p.into_inner().take(),
                };
                match taken {
                    Some(v) => Ok(v),
                    None => Err(Box::new("loom model thread terminated without a result")),
                }
            }
            Handle::Real(h) => h.join(),
        }
    }
}

/// Spawns a thread: a model-scheduled thread inside [`crate::model`], a
/// plain OS thread otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        Some((exec, _)) => {
            let result = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            let tid = exec.spawn_model_thread(move || {
                let v = f();
                match slot.lock() {
                    Ok(mut g) => *g = Some(v),
                    Err(p) => *p.into_inner() = Some(v),
                }
            });
            JoinHandle(Handle::Model { exec, tid, result })
        }
        None => JoinHandle(Handle::Real(std::thread::spawn(f))),
    }
}

/// Cooperatively yields: a scheduler branch point inside a model.
pub fn yield_now() {
    match current_ctx() {
        Some((exec, tid)) => exec.yield_point(tid),
        None => std::thread::yield_now(),
    }
}
