//! Minimal in-repo stand-in for the `loom` concurrency model checker.
//!
//! Provides [`model`], which runs a closure under every schedule a
//! bounded-exhaustive cooperative scheduler can produce (sequentially
//! consistent interleavings, preemption-bounded depth-first enumeration),
//! plus model-aware [`sync`] primitives and [`thread`] spawning. See
//! `src/exec.rs` for the exploration strategy and its bounds, and
//! `vendor/README.md` for divergences from upstream loom.
//!
//! Unlike upstream, primitives used *outside* a [`model`] call degrade
//! to plain `std::sync` behavior instead of panicking, so a crate
//! compiled with its loom feature still runs its ordinary tests.

mod exec;
pub mod sync;
pub mod thread;

pub use exec::model;

pub mod hint {
    //! Spin-loop hint: a yield point inside a model.

    /// Emits a spin-loop hint (model: a scheduler yield point).
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex, RwLock};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_counter_is_race_free() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u64));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let n = n.clone();
                hs.push(super::thread::spawn(move || {
                    *n.lock() += 1;
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
    }

    #[test]
    fn model_finds_lost_update_on_unsynchronized_counter() {
        // load;add;store without a lock must lose an update under SOME
        // schedule — the model must find it.
        let r = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let mut hs = Vec::new();
                for _ in 0..2 {
                    let n = n.clone();
                    hs.push(super::thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    }));
                }
                for h in hs {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        assert!(r.is_err(), "model failed to find the lost-update schedule");
    }

    #[test]
    fn model_finds_ab_ba_deadlock() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let h = super::thread::spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let _gb = b.lock();
                let _ga = a.lock();
                drop((_ga, _gb));
                let _ = h.join();
            });
        }));
        let payload = r.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "expected deadlock, got: {msg}");
    }

    #[test]
    fn rwlock_allows_concurrent_readers_blocks_writer() {
        super::model(|| {
            let l = Arc::new(RwLock::new(1u32));
            let l2 = l.clone();
            let h = super::thread::spawn(move || *l2.read());
            let r = *l.read();
            assert_eq!(r, 1);
            assert_eq!(h.join().unwrap(), 1);
            *l.write() += 1;
            assert_eq!(*l.read(), 2);
        });
    }

    #[test]
    fn condvar_handoff() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let h = super::thread::spawn(move || {
                let (m, c) = &*p2;
                let mut ready = m.lock();
                while !*ready {
                    c.wait(&mut ready);
                }
            });
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
            h.join().unwrap();
        });
    }

    #[test]
    fn passthrough_outside_model() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        let a = AtomicUsize::new(0);
        a.fetch_add(2, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 2);
        let h = super::thread::spawn(|| 7);
        assert_eq!(h.join().unwrap(), 7);
    }
}
