//! The cooperative exhaustive scheduler behind [`crate::model`].
//!
//! Model threads are real OS threads, but execution is fully serialized:
//! exactly one thread holds the "turn" at any moment, and every
//! synchronization operation (lock acquire, atomic access, spawn, join,
//! condvar op) is a *yield point* where the scheduler may hand the turn
//! to a different runnable thread. Each run of the model closure follows
//! one schedule; schedules are enumerated depth-first over the recorded
//! branch points until the space is exhausted (or a bound is hit).
//!
//! Exploration is bounded two ways, mirroring loom's defaults:
//!
//! * **preemption bounding** — at most `LOOM_MAX_PREEMPTIONS` (default 2)
//!   involuntary context switches per schedule. The CHESS result shows
//!   almost all real concurrency bugs manifest within 2 preemptions.
//! * **iteration cap** — at most `LOOM_MAX_ITERS` (default 40 000)
//!   schedules; hitting the cap prints a warning rather than failing.
//!
//! Only sequentially-consistent interleavings are explored: the stand-in
//! serializes all memory operations, so weak-memory reorderings that real
//! hardware could exhibit are *not* modeled (upstream loom does model
//! them). For lock-protected state and SeqCst atomics this is exact.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind threads of an aborted execution quietly.
pub(crate) const ABORT_PAYLOAD: &str = "loom: execution aborted";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One recorded scheduling decision: which of the eligible threads was
/// picked. `options` is ordered (current-thread first) so `idx == 0` is
/// always the preemption-free default.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    options: Vec<usize>,
    idx: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Blocked on a resource (mutex / rwlock / condvar) or a join.
    Blocked,
    /// In a timed condvar wait: schedulable (scheduling it = the timeout
    /// fires), but also wakeable by a notify.
    TimedWait,
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockedOn {
    Resource(usize),
    Thread(usize),
    Nothing,
}

struct ThreadState {
    run: Run,
    blocked_on: BlockedOn,
    /// Set by the scheduler when it ends this thread's timed wait by
    /// firing the timeout (as opposed to a notify).
    timeout_fired: bool,
}

/// Scheduler-side state of one model-level sync primitive.
pub(crate) enum Resource {
    Mutex {
        held_by: Option<usize>,
    },
    RwLock {
        writer: Option<usize>,
        readers: Vec<usize>,
    },
    Condvar {
        /// FIFO of waiting thread ids not yet notified.
        waiters: VecDeque<usize>,
    },
}

struct Inner {
    threads: Vec<ThreadState>,
    resources: Vec<Resource>,
    /// Thread currently holding the turn (usize::MAX once all finished).
    current: usize,
    /// DFS schedule: prefix is replayed, suffix is recorded.
    path: Vec<Choice>,
    /// Next branch point index within `path`.
    step: usize,
    preemptions: usize,
    /// First panic payload observed (the model failure being reported).
    failure: Option<String>,
    aborting: bool,
}

pub(crate) struct Execution {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    max_preemptions: usize,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Returns the calling thread's execution context, if it is a model thread.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

impl Execution {
    fn new(path: Vec<Choice>, max_preemptions: usize) -> Self {
        Self {
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                resources: Vec::new(),
                current: 0,
                path,
                step: 0,
                preemptions: 0,
                failure: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
            max_preemptions,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Registers a model-level resource, returning its id.
    pub(crate) fn register_resource(&self, r: Resource) -> usize {
        let mut s = self.lock();
        s.resources.push(r);
        s.resources.len() - 1
    }

    /// Picks the next thread to run. Called with the state lock held by
    /// the thread that currently has the turn (or is finishing). Panics
    /// with [`ABORT_PAYLOAD`] after recording a failure on deadlock.
    fn schedule(&self, s: &mut Inner) {
        let eligible: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, Run::Runnable | Run::TimedWait))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            if s.threads.iter().all(|t| t.run == Run::Finished) {
                s.current = usize::MAX;
                return;
            }
            // Every live thread is blocked: genuine deadlock.
            let blocked: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.run == Run::Blocked)
                .map(|(i, t)| format!("thread {} on {:?}", i, t.blocked_on))
                .collect();
            self.fail(
                s,
                format!("deadlock: all live threads blocked [{}]", blocked.join(", ")),
            );
        }

        let cur_eligible = eligible.contains(&s.current);

        // Option set must be computed identically on replay and
        // exploration: ordered current-first, preemptive alternatives
        // dropped once the budget is spent.
        let options: Vec<usize> = if cur_eligible && s.preemptions >= self.max_preemptions {
            vec![s.current]
        } else if cur_eligible {
            let mut o = Vec::with_capacity(eligible.len());
            o.push(s.current);
            o.extend(eligible.iter().copied().filter(|&t| t != s.current));
            o
        } else {
            eligible
        };

        let chosen = if options.len() == 1 {
            options[0]
        } else if s.step < s.path.len() {
            // Replaying the DFS prefix.
            let c = &s.path[s.step];
            debug_assert_eq!(
                c.options, options,
                "loom internal: non-deterministic model (branch options diverged on replay)"
            );
            s.step += 1;
            c.options[c.idx]
        } else {
            s.path.push(Choice {
                options: options.clone(),
                idx: 0,
            });
            s.step += 1;
            options[0]
        };

        if chosen != s.current && cur_eligible {
            s.preemptions += 1;
        }
        s.current = chosen;
        // Scheduling a timed waiter = its timeout fires: it leaves the
        // condvar wait queue and resumes, reporting `timed_out`.
        if s.threads[chosen].run == Run::TimedWait {
            if let BlockedOn::Resource(cv) = s.threads[chosen].blocked_on {
                if let Resource::Condvar { waiters } = &mut s.resources[cv] {
                    waiters.retain(|&t| t != chosen);
                }
            }
            s.threads[chosen].run = Run::Runnable;
            s.threads[chosen].blocked_on = BlockedOn::Nothing;
            s.threads[chosen].timeout_fired = true;
        }
    }

    fn fail(&self, s: &mut Inner, msg: String) -> ! {
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
        s.aborting = true;
        self.cv.notify_all();
        panic!("{ABORT_PAYLOAD}");
    }

    /// Blocks until `tid` holds the turn.
    fn wait_for_turn<'a>(
        &'a self,
        mut s: std::sync::MutexGuard<'a, Inner>,
        tid: usize,
    ) -> std::sync::MutexGuard<'a, Inner> {
        while s.current != tid && !s.aborting {
            s = match self.cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if s.aborting {
            drop(s);
            panic!("{ABORT_PAYLOAD}");
        }
        s
    }

    /// A plain yield point: offer the scheduler a chance to switch.
    pub(crate) fn yield_point(self: &Arc<Self>, tid: usize) {
        let mut s = self.lock();
        if s.aborting {
            drop(s);
            panic!("{ABORT_PAYLOAD}");
        }
        debug_assert_eq!(s.current, tid, "yield from thread without the turn");
        self.schedule(&mut s);
        if s.current != tid {
            self.cv.notify_all();
            drop(self.wait_for_turn(s, tid));
        }
    }

    /// Blocks `tid` until `try_acquire` succeeds against resource `res`.
    /// `try_acquire` runs under the state lock and must either mutate the
    /// resource to record the acquisition and return `true`, or leave it
    /// untouched and return `false`.
    pub(crate) fn block_until(
        self: &Arc<Self>,
        tid: usize,
        res: usize,
        mut try_acquire: impl FnMut(usize, &mut Resource) -> bool,
    ) {
        // Yield before attempting: lets competitors get in front of us.
        self.yield_point(tid);
        loop {
            let mut s = self.lock();
            if s.aborting {
                drop(s);
                panic!("{ABORT_PAYLOAD}");
            }
            if try_acquire(tid, &mut s.resources[res]) {
                return;
            }
            s.threads[tid].run = Run::Blocked;
            s.threads[tid].blocked_on = BlockedOn::Resource(res);
            self.schedule(&mut s);
            self.cv.notify_all();
            drop(self.wait_for_turn(s, tid));
        }
    }

    /// Marks every thread blocked on resource `res` runnable again (they
    /// re-attempt their acquisition when next scheduled). Not a yield
    /// point: the next acquisition attempt yields first, which restores
    /// all interesting interleavings at half the branch count.
    pub(crate) fn wake_blocked_on(&self, res: usize) {
        let mut s = self.lock();
        for t in s.threads.iter_mut() {
            if t.run == Run::Blocked && t.blocked_on == BlockedOn::Resource(res) {
                t.run = Run::Runnable;
                t.blocked_on = BlockedOn::Nothing;
            }
        }
    }

    /// Runs `f` under the state lock with the resource table.
    pub(crate) fn with_resource<R>(&self, res: usize, f: impl FnOnce(&mut Resource) -> R) -> R {
        let mut s = self.lock();
        f(&mut s.resources[res])
    }

    /// Wakes up to `n` condvar waiters (moves them from the wait queue to
    /// Runnable; they then recontend for the mutex).
    pub(crate) fn notify_condvar(&self, cv: usize, n: usize) {
        let mut s = self.lock();
        for _ in 0..n {
            let waiter = match &mut s.resources[cv] {
                Resource::Condvar { waiters } => waiters.pop_front(),
                _ => unreachable!("notify on non-condvar resource"),
            };
            let Some(w) = waiter else { break };
            s.threads[w].run = Run::Runnable;
            s.threads[w].blocked_on = BlockedOn::Nothing;
            s.threads[w].timeout_fired = false;
        }
    }

    /// Parks `tid` on condvar resource `cv`, having already enqueued it
    /// in the wait queue and released the associated mutex. Returns
    /// `true` if a timed wait ended by timeout rather than notify.
    pub(crate) fn park_on_condvar(self: &Arc<Self>, tid: usize, cv: usize, timed: bool) -> bool {
        let mut s = self.lock();
        if s.aborting {
            drop(s);
            panic!("{ABORT_PAYLOAD}");
        }
        s.threads[tid].run = if timed { Run::TimedWait } else { Run::Blocked };
        s.threads[tid].blocked_on = BlockedOn::Resource(cv);
        s.threads[tid].timeout_fired = false;
        self.schedule(&mut s);
        self.cv.notify_all();
        let mut s = self.wait_for_turn(s, tid);
        let timed_out = std::mem::take(&mut s.threads[tid].timeout_fired);
        drop(s);
        timed_out
    }

    /// Blocks `tid` until model thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize) {
        self.yield_point(tid);
        let mut s = self.lock();
        while s.threads[target].run != Run::Finished {
            if s.aborting {
                drop(s);
                panic!("{ABORT_PAYLOAD}");
            }
            s.threads[tid].run = Run::Blocked;
            s.threads[tid].blocked_on = BlockedOn::Thread(target);
            self.schedule(&mut s);
            self.cv.notify_all();
            s = self.wait_for_turn(s, tid);
        }
    }

    /// Called by a model thread as it exits (normally or by panic).
    fn finish_thread(self: &Arc<Self>, tid: usize, panic_msg: Option<String>) {
        let mut s = self.lock();
        s.threads[tid].run = Run::Finished;
        s.threads[tid].blocked_on = BlockedOn::Nothing;
        for t in s.threads.iter_mut() {
            if t.run == Run::Blocked && t.blocked_on == BlockedOn::Thread(tid) {
                t.run = Run::Runnable;
                t.blocked_on = BlockedOn::Nothing;
            }
        }
        if let Some(msg) = panic_msg {
            if s.failure.is_none() {
                s.failure = Some(msg);
            }
            s.aborting = true;
            self.cv.notify_all();
            return;
        }
        if !s.aborting && s.current == tid {
            // Hand the turn onward. `schedule` may detect a deadlock among
            // the remaining threads and unwind; we are exiting anyway, so
            // swallow that unwind (failure/aborting are already recorded).
            let _ = panic::catch_unwind(AssertUnwindSafe(|| self.schedule(&mut s)));
        }
        self.cv.notify_all();
    }

    /// Spawns a real OS thread running `f` as a model thread, serialized
    /// by this execution. Returns the new model thread id.
    pub(crate) fn spawn_model_thread(self: &Arc<Self>, f: impl FnOnce() + Send + 'static) -> usize {
        let tid = {
            let mut s = self.lock();
            s.threads.push(ThreadState {
                run: Run::Runnable,
                blocked_on: BlockedOn::Nothing,
                timeout_fired: false,
            });
            s.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    // Wait to be scheduled for the first time, then run.
                    let s = exec.lock();
                    drop(exec.wait_for_turn(s, tid));
                    f();
                }));
                let panic_msg = match result {
                    Ok(()) => None,
                    Err(payload) => {
                        let msg = payload_to_string(&payload);
                        if msg == ABORT_PAYLOAD {
                            None // secondary unwind of an aborted run
                        } else {
                            Some(msg)
                        }
                    }
                };
                exec.finish_thread(tid, panic_msg);
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn loom model thread");
        match self.handles.lock() {
            Ok(mut h) => h.push(handle),
            Err(p) => p.into_inner().push(handle),
        }
        // Registration is a branch point: the child may run before the
        // parent's next step.
        if let Some((_, me)) = current_ctx() {
            self.yield_point(me);
        }
        tid
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Runs `f` under every schedule the bounded-exhaustive explorer can
/// produce, panicking with the first failing schedule if any run panics,
/// deadlocks, or fails an assertion.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current_ctx().is_none(),
        "nested loom::model calls are not supported"
    );
    let f = Arc::new(f);
    let max_iters = env_usize("LOOM_MAX_ITERS", 40_000);
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let mut path: Vec<Choice> = Vec::new();
    let mut iters = 0usize;
    let mut truncated = false;

    loop {
        iters += 1;
        let exec = Arc::new(Execution::new(path.clone(), max_preemptions));
        let g = Arc::clone(&f);
        exec.spawn_model_thread(move || g());

        // Drain: join every real thread of this run (threads may spawn
        // more threads while we drain, hence the loop).
        loop {
            let handle = match exec.handles.lock() {
                Ok(mut h) => h.pop(),
                Err(p) => p.into_inner().pop(),
            };
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }

        let s = exec.lock();
        if let Some(msg) = &s.failure {
            let trace: Vec<String> = s
                .path
                .iter()
                .map(|c| format!("{}of{:?}", c.options[c.idx], c.options))
                .collect();
            panic!(
                "loom model failed after {iters} schedule(s): {msg}\n  \
                 schedule (chosen-of-options per branch): [{}]",
                trace.join(", ")
            );
        }
        path = s.path.clone();
        drop(s);

        // DFS backtrack: advance the deepest branch with options left.
        while let Some(last) = path.last_mut() {
            if last.idx + 1 < last.options.len() {
                last.idx += 1;
                break;
            }
            path.pop();
        }
        if path.is_empty() {
            break;
        }
        if iters >= max_iters {
            truncated = true;
            break;
        }
    }

    if truncated {
        eprintln!(
            "warning: loom exploration truncated after {iters} schedules \
             (raise LOOM_MAX_ITERS to explore further)"
        );
    }
}
