//! Minimal in-repo stand-in for the `serde_derive` crate.
//!
//! Derives `Serialize`/`Deserialize` for the shapes this workspace uses:
//! unit/tuple/named structs and enums with unit/newtype/tuple/struct
//! variants. Generic type parameters, `where` clauses and field
//! attributes are not supported (nothing in the workspace needs them);
//! unsupported input produces a `compile_error!` at the derive site.
//!
//! The implementation parses the raw `proc_macro::TokenStream` by hand
//! (no `syn`/`quote` available offline): attributes are skipped, field
//! *names* and counts are collected (field *types* are never needed —
//! the generated code lets inference recover them from the struct or
//! variant constructor), and the output impl is assembled as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips any number of leading `#[...]` attributes (doc comments arrive
/// in this form too).
fn skip_attrs(it: &mut Tokens) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        it.next(); // the bracketed attribute body
    }
}

/// Skips `pub` / `pub(...)` visibility.
fn skip_vis(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored) does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Collects field names from a named-field body, skipping types. Commas
/// inside generic arguments are ignored by tracking `<`/`>` depth.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut it = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs(&mut it);
        skip_vis(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field name, got {other:?}")),
                }
                let mut angle = 0i64;
                for tt in it.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => break,
                            _ => {}
                        }
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        }
    }
    Ok(names)
}

/// Counts top-level comma-separated fields in a tuple body, ignoring
/// commas nested inside generic arguments.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut angle = 0i64;
    let mut count = 0;
    let mut pending = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if pending {
                        count += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let fields = if let Some(TokenTree::Group(g)) = it.peek() {
            let delim = g.delimiter();
            let body = g.stream();
            it.next();
            match delim {
                Delimiter::Brace => Fields::Named(parse_named_fields(body)?),
                Delimiter::Parenthesis => Fields::Tuple(count_top_level_fields(body)),
                _ => return Err(format!("unexpected delimiter after variant `{name}`")),
            }
        } else {
            Fields::Unit
        };
        variants.push((name, fields));
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err("explicit enum discriminants are not supported".to_string());
            }
            Some(other) => return Err(format!("expected `,` between variants, got {other}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn ser_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")"),
        Fields::Tuple(1) => format!(
            "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let mut __st = serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            s.push_str("serde::ser::SerializeTupleStruct::end(__st)");
            s
        }
        Fields::Named(fs) => {
            let n = fs.len();
            let mut s = format!(
                "let mut __st = serde::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in fs {
                s.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("serde::ser::SerializeStruct::end(__st)");
            s
        }
    }
}

fn ser_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (i, (vname, fields)) in variants.iter().enumerate() {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => serde::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", {i}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(\
                     __serializer, \"{name}\", {i}u32, \"{vname}\", __f0),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|j| format!("__f{j}")).collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {{\n\
                         let mut __st = serde::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {i}u32, \"{vname}\", {n}usize)?;\n",
                    binds.join(", ")
                ));
                for b in &binds {
                    arms.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __st, {b})?;\n"
                    ));
                }
                arms.push_str("serde::ser::SerializeTupleVariant::end(__st)\n},\n");
            }
            Fields::Named(fs) => {
                let binds: Vec<String> = fs
                    .iter()
                    .enumerate()
                    .map(|(j, f)| format!("{f}: __f{j}"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                         let mut __st = serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {i}u32, \"{vname}\", {}usize)?;\n",
                    binds.join(", "),
                    fs.len()
                ));
                for (j, f) in fs.iter().enumerate() {
                    arms.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __st, \"{f}\", __f{j})?;\n"
                    ));
                }
                arms.push_str("serde::ser::SerializeStructVariant::end(__st)\n},\n");
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Emits `let __f{i} = ...next_element()...;` lines followed by the
/// given constructor expression, for use inside a `visit_seq` body.
fn de_seq_elements(ctor: &str, count: usize, expected: &str) -> String {
    let mut s = String::new();
    for i in 0..count {
        s.push_str(&format!(
            "let __f{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 std::option::Option::Some(__v) => __v,\n\
                 std::option::Option::None => return std::result::Result::Err(\
                     serde::de::Error::invalid_length({i}usize, &\"{expected}\")),\n\
             }};\n"
        ));
    }
    s.push_str(&format!("std::result::Result::Ok({ctor})"));
    s
}

/// Emits a complete visitor struct named `{vis_name}` whose `visit_seq`
/// deserializes `count` fields and finishes with `ctor`.
fn de_seq_visitor(vis_name: &str, value_ty: &str, ctor: &str, count: usize, expected: &str) -> String {
    format!(
        "struct {vis_name};\n\
         impl<'de> serde::de::Visitor<'de> for {vis_name} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                 __f.write_str(\"{expected}\")\n\
             }}\n\
             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                 -> std::result::Result<{value_ty}, __A::Error> {{\n\
                 {}\n\
             }}\n\
         }}\n",
        de_seq_elements(ctor, count, expected)
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     __f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<__E: serde::de::Error>(self) -> std::result::Result<{name}, __E> {{\n\
                     std::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Fields::Tuple(1) => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     __f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<__E: serde::Deserializer<'de>>(self, __d: __E) \
                     -> std::result::Result<{name}, __E::Error> {{\n\
                     std::result::Result::Ok({name}(serde::Deserialize::deserialize(__d)?))\n\
                 }}\n\
                 fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> std::result::Result<{name}, __A::Error> {{\n\
                     {}\n\
                 }}\n\
             }}\n\
             serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)",
            de_seq_elements(&format!("{name}(__f0)"), 1, &format!("newtype struct {name}"))
        ),
        Fields::Tuple(n) => {
            let ctor = format!(
                "{name}({})",
                (0..*n).map(|i| format!("__f{i}")).collect::<Vec<_>>().join(", ")
            );
            format!(
                "{}\n\
                 serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, __Visitor)",
                de_seq_visitor("__Visitor", name, &ctor, *n, &format!("tuple struct {name}"))
            )
        }
        Fields::Named(fs) => {
            let ctor = format!(
                "{name} {{ {} }}",
                fs.iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __f{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let field_list = fs
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{}\n\
                 serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{field_list}], __Visitor)",
                de_seq_visitor("__Visitor", name, &ctor, fs.len(), &format!("struct {name}"))
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (i, (vname, fields)) in variants.iter().enumerate() {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{i}u32 => {{\n\
                     serde::de::VariantAccess::unit_variant(__variant)?;\n\
                     std::result::Result::Ok({name}::{vname})\n\
                 }},\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{i}u32 => std::result::Result::Ok({name}::{vname}(\
                     serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
            )),
            Fields::Tuple(n) => {
                let ctor = format!(
                    "{name}::{vname}({})",
                    (0..*n).map(|j| format!("__f{j}")).collect::<Vec<_>>().join(", ")
                );
                arms.push_str(&format!(
                    "{i}u32 => {{\n\
                         {}\n\
                         serde::de::VariantAccess::tuple_variant(__variant, {n}usize, __V{i})\n\
                     }},\n",
                    de_seq_visitor(
                        &format!("__V{i}"),
                        name,
                        &ctor,
                        *n,
                        &format!("tuple variant {name}::{vname}")
                    )
                ));
            }
            Fields::Named(fs) => {
                let ctor = format!(
                    "{name}::{vname} {{ {} }}",
                    fs.iter()
                        .enumerate()
                        .map(|(j, f)| format!("{f}: __f{j}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let field_list = fs
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                arms.push_str(&format!(
                    "{i}u32 => {{\n\
                         {}\n\
                         serde::de::VariantAccess::struct_variant(__variant, &[{field_list}], __V{i})\n\
                     }},\n",
                    de_seq_visitor(
                        &format!("__V{i}"),
                        name,
                        &ctor,
                        fs.len(),
                        &format!("struct variant {name}::{vname}")
                    )
                ));
            }
        }
    }
    let variant_list = variants
        .iter()
        .map(|(v, _)| format!("\"{v}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
             }}\n\
             fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                 -> std::result::Result<{name}, __A::Error> {{\n\
                 let (__idx, __variant): (u32, __A::Variant) = \
                     serde::de::EnumAccess::variant(__data)?;\n\
                 match __idx {{\n\
                     {arms}\
                     __other => std::result::Result::Err(\
                         serde::de::Error::unknown_variant(__other, &[{variant_list}])),\n\
                 }}\n\
             }}\n\
         }}\n\
         serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_list}], __Visitor)"
    )
}
