//! Lease lifetime management (§3.2) under a manual clock: renewal
//! propagation, expiry-flush-reclaim, and recovery of a failed task's
//! data by its dependents.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_common::clock::ManualClock;
use jiffy_persistent::{MemObjectStore, ObjectStore};

fn manual_cluster() -> (JiffyCluster, Arc<ManualClock>, Arc<MemObjectStore>) {
    let (clock, shared) = ManualClock::shared();
    let store = Arc::new(MemObjectStore::new());
    let cluster = JiffyCluster::build(
        JiffyConfig::for_testing().with_block_size(16 * 1024),
        1,
        16,
        shared,
        store.clone(),
        false, // expiry driven manually
        false,
    )
    .unwrap();
    (cluster, clock, store)
}

#[test]
fn expired_prefix_is_flushed_then_reclaimed() {
    let (cluster, clock, store) = manual_cluster();
    let client = cluster.client().unwrap();
    let job = client.register_job("expiring").unwrap();
    let kv = job.open_kv("task1", &[], 1).unwrap();
    for i in 0..50 {
        kv.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let live_bytes = cluster.used_bytes();
    assert!(live_bytes > 0);

    // Let the lease (1 s) lapse without renewal.
    clock.advance(Duration::from_secs(3));
    let expired = cluster.controller().run_expiry_once();
    assert_eq!(expired.len(), 1);
    assert_eq!(cluster.used_bytes(), 0, "memory reclaimed");
    // Data survived in the persistent tier under the auto path.
    let auto_path = format!("jiffy-expired/{}/task1", job.id().raw());
    assert!(store.exists(&auto_path));

    // The dependent task reloads it explicitly.
    job.load("task1", &auto_path).unwrap();
    let kv = job.open_kv("task1", &[], 1).unwrap();
    assert_eq!(kv.get(b"k7").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn renewal_of_a_child_keeps_the_parents_data_alive() {
    // Paper Fig. 5: while T7 renews, its parents' data stays in memory
    // even if the parent task died.
    let (cluster, clock, _) = manual_cluster();
    let job = cluster.client().unwrap().register_job("dag").unwrap();
    let parent_kv = job.open_kv("producer", &[], 1).unwrap();
    parent_kv.put(b"output", b"precious").unwrap();
    let _child = job.open_kv("consumer", &["producer"], 1).unwrap();

    // The producer task is dead; only the consumer renews, repeatedly.
    for _ in 0..5 {
        clock.advance(Duration::from_millis(800));
        job.renew_lease("consumer").unwrap();
        assert!(cluster.controller().run_expiry_once().is_empty());
    }
    // Parent data still readable from memory.
    assert_eq!(
        parent_kv.get(b"output").unwrap(),
        Some(b"precious".to_vec())
    );

    // Once the consumer also stops renewing, both expire.
    clock.advance(Duration::from_secs(3));
    let expired = cluster.controller().run_expiry_once();
    assert_eq!(expired.len(), 2);
}

#[test]
fn renewal_does_not_keep_siblings_alive() {
    let (cluster, clock, _) = manual_cluster();
    let job = cluster.client().unwrap().register_job("sib").unwrap();
    let _a = job.open_kv("task-a", &[], 1).unwrap();
    let _b = job.open_kv("task-b", &[], 1).unwrap();
    clock.advance(Duration::from_millis(900));
    job.renew_lease("task-a").unwrap();
    clock.advance(Duration::from_millis(500));
    // task-b's lease (stamped at creation) has lapsed; task-a's has not.
    let expired = cluster.controller().run_expiry_once();
    assert_eq!(expired.len(), 1);
    assert_eq!(expired[0].1, "task-b");
}

#[test]
fn lease_duration_is_queryable() {
    let (cluster, _clock, _) = manual_cluster();
    let job = cluster.client().unwrap().register_job("q").unwrap();
    job.create_addr_prefix("t", &[]).unwrap();
    assert_eq!(job.lease_duration("t").unwrap(), Duration::from_secs(1));
}

#[test]
fn background_renewer_keeps_prefixes_alive_under_system_clock() {
    // Real clock + real expiry worker: the renewer must win the race.
    let cfg = JiffyConfig::for_testing().with_lease_duration(Duration::from_millis(300));
    let cluster = JiffyCluster::in_process(cfg, 1, 8).unwrap();
    let job = cluster.client().unwrap().register_job("live").unwrap();
    let kv = job.open_kv("hot", &[], 1).unwrap();
    kv.put(b"k", b"v").unwrap();
    let mut renewer = job.start_lease_renewer(vec!["hot".to_string()], Duration::from_millis(50));
    std::thread::sleep(Duration::from_millis(900));
    // Still alive despite 3 lease periods elapsing.
    assert_eq!(kv.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert!(renewer.renewals() >= 10);
    renewer.stop();
    // Without renewal it expires shortly.
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(cluster.used_bytes(), 0);
}
