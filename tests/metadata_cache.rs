//! Tier-1 tests for the lease-guarded client metadata cache
//! (DESIGN.md §15): steady-state resolves never touch the controller,
//! a migration-staled entry costs exactly one refresh-retry, the view
//! epoch piggybacked on control responses invalidates lazily, and a
//! thundering herd of concurrent misses coalesces onto a single
//! resolve RPC.

use jiffy_sync::Arc;

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn cluster(servers: usize) -> JiffyCluster {
    JiffyCluster::in_process(JiffyConfig::for_testing(), servers, 8).unwrap()
}

#[test]
fn steady_state_resolves_are_cache_hits() {
    let cluster = cluster(2);
    let client = cluster.client().unwrap();
    let job = client.register_job("steady").unwrap();
    let kv = job.open_kv("state", &[], 2).unwrap();
    kv.put(b"k", b"v").unwrap();

    let cache = client.metadata_cache();
    job.resolve("state").unwrap(); // fill (or hit the open_kv fill)
    let resolves = cache.stats().resolves();
    let hits = cache.stats().hits();
    for _ in 0..50 {
        job.resolve("state").unwrap();
    }
    assert_eq!(
        cache.stats().resolves(),
        resolves,
        "steady-state resolves must not reach the controller"
    );
    assert_eq!(cache.stats().hits(), hits + 50);
    assert!(cache.stats().hit_ratio() > 0.9, "{:?}", cache.stats());
}

#[test]
fn migrated_block_costs_exactly_one_refresh_retry() {
    // Drain the server holding every block of the structure: the
    // client's cached chain is stale, the first op fails against the
    // gone endpoint, and the routing-retry loop must issue exactly one
    // fresh resolve (bypassing the cache), then succeed.
    let cluster = cluster(1);
    let client = cluster.client().unwrap();
    let job = client.register_job("migrate").unwrap();
    let kv = job.open_kv("state", &[], 2).unwrap();
    kv.put(b"k", b"v").unwrap();

    cluster.add_server(8).unwrap();
    let first = cluster
        .servers()
        .iter()
        .filter_map(|s| s.identity().map(|(id, _)| id))
        .min_by_key(|id| id.raw())
        .unwrap();
    cluster.drain_server(first).unwrap();

    let cache = client.metadata_cache();
    let resolves = cache.stats().resolves();
    assert_eq!(kv.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert_eq!(
        cache.stats().resolves(),
        resolves + 1,
        "one migration = one refresh RPC"
    );
    // The refreshed view is cached again: further ops stay off the
    // controller.
    assert_eq!(kv.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert_eq!(cache.stats().resolves(), resolves + 1);
}

#[test]
fn epoch_bump_on_control_response_invalidates_cached_views() {
    let cluster = cluster(2);
    let client = cluster.client().unwrap();
    let job = client.register_job("epoch").unwrap();
    job.create_addr_prefix("keep", &[]).unwrap();
    job.create_addr_prefix("doomed", &[]).unwrap();

    let cache = client.metadata_cache();
    job.resolve("keep").unwrap();
    let resolves = cache.stats().resolves();
    job.resolve("keep").unwrap(); // cached
    assert_eq!(cache.stats().resolves(), resolves);

    // Removing a prefix changes placement: the controller bumps its
    // view epoch and stamps it on the removal's own response, which
    // this client observes — no extra invalidation RPC exists.
    let epoch_before = cache.current_epoch();
    job.remove_addr_prefix("doomed").unwrap();
    assert!(cache.current_epoch() > epoch_before, "epoch must advance");

    // The cached "keep" entry predates the new epoch: next resolve
    // misses and refills.
    job.resolve("keep").unwrap();
    assert_eq!(cache.stats().resolves(), resolves + 1);
    job.resolve("keep").unwrap();
    assert_eq!(
        cache.stats().resolves(),
        resolves + 1,
        "refilled and cached"
    );
}

#[test]
fn concurrent_misses_coalesce_into_one_resolve_rpc() {
    let cluster = cluster(2);
    let client = Arc::new(cluster.client().unwrap());
    let job = client.register_job("herd").unwrap();
    job.create_addr_prefix("hot", &[]).unwrap();

    let cache = client.metadata_cache();
    let resolves = cache.stats().resolves();
    let barrier = Arc::new(jiffy_sync::Barrier::new(32));
    std::thread::scope(|s| {
        for _ in 0..32 {
            let job = job.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                job.resolve("hot").unwrap();
            });
        }
    });
    assert_eq!(
        cache.stats().resolves(),
        resolves + 1,
        "32 concurrent misses must coalesce into a single resolve RPC"
    );
    // Every thread got an answer; only the leader paid the round-trip.
    assert!(cache.stats().misses() >= 1);
    let hits = cache.stats().hits();
    job.resolve("hot").unwrap();
    assert_eq!(cache.stats().hits(), hits + 1);
}
