//! Cluster elasticity (the server pool, not the per-structure block
//! pool): membership and heartbeats, failure detection, live block
//! migration during a drain, and the demand-driven autoscaler.
//!
//! The per-block split/merge elasticity of §3.3 is covered in
//! `elasticity.rs`; these tests exercise the layer above it — servers
//! joining, leaving, dying, and being provisioned on demand.

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::{Arc, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::{AutoscalerPolicy, JiffyConfig, JiffyError};
use jiffy_proto::{ControlRequest, ControlResponse};

fn oldest_server(cluster: &JiffyCluster) -> jiffy_common::ServerId {
    cluster
        .servers()
        .iter()
        .filter_map(|s| s.identity().map(|(id, _)| id))
        .min_by_key(|id| id.raw())
        .expect("cluster has servers")
}

/// An error a client may legitimately see while racing a membership
/// change: something a retry (with refresh) heals.
fn is_acceptable_mid_migration(e: &JiffyError) -> bool {
    e.is_retryable() || e.is_transport()
}

#[test]
fn heartbeats_keep_servers_alive_and_silence_means_dead() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 8).unwrap();
    let timeout = JiffyConfig::for_testing().heartbeat_timeout;

    // A server that registers but never heartbeats: simulated dead
    // machine. Zero capacity so the allocator never routes to it.
    let ghost = match cluster
        .controller()
        .dispatch(ControlRequest::JoinServer {
            addr: "inproc:ghost".into(),
            capacity_blocks: 0,
        })
        .unwrap()
    {
        ControlResponse::ServerJoined { server, .. } => server,
        other => panic!("unexpected response {other:?}"),
    };

    // Wait out several detector windows: the real servers keep
    // heartbeating, the ghost stays silent.
    std::thread::sleep(timeout * 3);
    let dead = cluster.controller().run_failure_detector_once();
    assert_eq!(dead, vec![ghost], "only the silent server expires");

    let infos = match cluster
        .controller()
        .dispatch(ControlRequest::ListServers)
        .unwrap()
    {
        ControlResponse::Servers(infos) => infos,
        other => panic!("unexpected response {other:?}"),
    };
    let state_of = |id: jiffy_common::ServerId| {
        infos
            .iter()
            .find(|i| i.server == id)
            .map(|i| i.state.clone())
            .unwrap()
    };
    assert_eq!(state_of(ghost), "dead");
    for s in cluster.servers() {
        let (id, _) = s.identity().unwrap();
        assert_eq!(state_of(id), "alive", "heartbeating server {id:?}");
    }
    let stats = cluster.controller().stats();
    assert_eq!(stats.servers_failed, 1);
    assert_eq!(stats.servers, 2);

    // A dead server's heartbeat is rejected: it must re-join under a
    // fresh ID instead of resurrecting the old one.
    let err = cluster
        .controller()
        .dispatch(ControlRequest::Heartbeat {
            server: ghost,
            used_blocks: 0,
            free_blocks: 0,
            tenant_loads: Vec::new(),
        })
        .unwrap_err();
    assert!(matches!(err, JiffyError::UnknownServer(_)), "{err:?}");
}

#[test]
fn drain_migrates_every_structure_intact() {
    // Fill a KV store, a file and a queue so their blocks land on both
    // servers, then drain one. Every byte must come back through the
    // migrated copies, and queue order must hold.
    let cfg = JiffyConfig::for_testing().with_block_size(16 * 1024);
    let cluster = JiffyCluster::in_process(cfg, 2, 32).unwrap();
    let job = cluster.client().unwrap().register_job("drain-all").unwrap();

    let kv = job.open_kv("state", &[], 2).unwrap();
    for i in 0..200 {
        kv.put(format!("k{i}").as_bytes(), vec![7u8; 200].as_slice())
            .unwrap();
    }
    let file = job.open_file("log", &[]).unwrap();
    let record = vec![0xCD; 1000];
    for _ in 0..60 {
        file.append(&record).unwrap();
    }
    let queue = job.open_queue("work", &[]).unwrap();
    for i in 0..300u32 {
        queue
            .enqueue(format!("{i:05}{}", "q".repeat(80)).as_bytes())
            .unwrap();
    }

    let victim = oldest_server(&cluster);
    let migrated = cluster.drain_server(victim).unwrap();
    assert!(migrated > 0, "victim held live blocks");
    let stats = cluster.controller().stats();
    assert_eq!(stats.servers, 1);
    assert!(stats.blocks_migrated >= u64::from(migrated));

    for i in 0..200 {
        assert_eq!(
            kv.get(format!("k{i}").as_bytes()).unwrap(),
            Some(vec![7u8; 200]),
            "k{i} after drain"
        );
    }
    assert_eq!(file.read_all().unwrap().len(), 60_000);
    for i in 0..300u32 {
        let item = queue.dequeue().unwrap().expect("queue item survived");
        let idx: u32 = std::str::from_utf8(&item[..5]).unwrap().parse().unwrap();
        assert_eq!(idx, i, "FIFO order after drain");
    }

    // The departed ID is gone for good: draining it again is an error.
    assert!(cluster.drain_server(victim).is_err());
}

/// Satellite (c): a client op racing a live migration observes the
/// structure *exactly once* — it lands on the old home (before the
/// seal), bounces off a redirect and retries, or lands on the new home.
/// Observable contract: a single writer's per-key counters never
/// regress for a concurrent reader, no acknowledged write disappears,
/// and every surfaced error is retryable — never "neither home".
#[test]
fn ops_racing_a_migration_observe_exactly_once() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 3, 32).unwrap();
    let job = cluster.client().unwrap().register_job("race").unwrap();
    let kv = Arc::new(job.open_kv("hot", &[], 4).unwrap());

    const KEYS: usize = 16;
    for k in 0..KEYS {
        kv.put(format!("m-k{k}").as_bytes(), b"0").unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<HashMap<usize, u64>>> =
        Arc::new(Mutex::new((0..KEYS).map(|k| (k, 0)).collect()));
    let errors: Arc<Mutex<Vec<JiffyError>>> = Arc::new(Mutex::new(Vec::new()));

    // Single writer: bumps a per-key counter round-robin.
    let writer = {
        let kv = kv.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        let errors = errors.clone();
        std::thread::spawn(move || {
            let mut round: u64 = 1;
            while !stop.load(Ordering::SeqCst) {
                for k in 0..KEYS {
                    let key = format!("m-k{k}");
                    match kv.put(key.as_bytes(), round.to_string().as_bytes()) {
                        Ok(_) => {
                            *acked.lock().get_mut(&k).unwrap() = round;
                        }
                        Err(e) => errors.lock().push(e),
                    }
                }
                round += 1;
            }
        })
    };
    // Reader: per-key counters must never move backwards — a read that
    // hit the old home after data landed at the new one (or vice versa)
    // would regress.
    let reader = {
        let kv = kv.clone();
        let stop = stop.clone();
        let errors = errors.clone();
        std::thread::spawn(move || {
            let mut last = [0u64; KEYS];
            while !stop.load(Ordering::SeqCst) {
                for (k, seen) in last.iter_mut().enumerate() {
                    let key = format!("m-k{k}");
                    match kv.get(key.as_bytes()) {
                        Ok(Some(v)) => {
                            let n: u64 = std::str::from_utf8(&v).unwrap().parse().unwrap();
                            assert!(
                                n >= *seen,
                                "key {key} regressed {} -> {n} across migration",
                                *seen
                            );
                            *seen = n;
                        }
                        Ok(None) => panic!("key {key} vanished mid-migration"),
                        Err(e) => errors.lock().push(e),
                    }
                }
            }
        })
    };

    // Let the race build up, then migrate live blocks out from under it.
    std::thread::sleep(Duration::from_millis(50));
    let migrated = cluster.drain_server(oldest_server(&cluster)).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let migrated2 = cluster.drain_server(oldest_server(&cluster)).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();
    reader.join().unwrap();

    assert!(
        migrated + migrated2 > 0,
        "the drains must have moved live blocks to race against"
    );
    for e in errors.lock().iter() {
        assert!(
            is_acceptable_mid_migration(e),
            "non-retryable error surfaced during migration: {e:?}"
        );
    }
    // Exactly-once: every acknowledged write is readable at the new
    // home, no more and no less.
    for (k, round) in acked.lock().iter() {
        let v = kv.get(format!("m-k{k}").as_bytes()).unwrap().unwrap();
        let n: u64 = std::str::from_utf8(&v).unwrap().parse().unwrap();
        assert!(
            n >= *round,
            "key m-k{k}: acked round {round} lost (found {n})"
        );
    }
    assert!(cluster.controller().stats().blocks_migrated > 0);
}

/// The ISSUE's acceptance scenario: two servers, a workload fills the
/// pool past the low free-watermark and the autoscaler provisions a
/// third; deletes empty it back out and the autoscaler drains one away
/// — all under a concurrent client, with zero lost acked writes and
/// only retryable errors.
#[test]
fn autoscaler_grows_and_shrinks_the_pool_under_live_workload() {
    let cfg = JiffyConfig::for_testing().with_block_size(16 * 1024);
    let mut cluster = JiffyCluster::in_process(cfg, 2, 16).unwrap();
    cluster.start_elasticity(AutoscalerPolicy::new(0.25, 0.70, 2, 3));

    let job = cluster.client().unwrap().register_job("scale").unwrap();
    let wl = Arc::new(job.open_kv("workload", &[], 1).unwrap());
    let bulk = job.open_kv("bulk", &[], 1).unwrap();

    // Concurrent foreground workload: 8 keys, monotonically versioned.
    const WL_KEYS: usize = 8;
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(Mutex::new(vec![0u64; WL_KEYS]));
    let surfaced: Arc<Mutex<Vec<JiffyError>>> = Arc::new(Mutex::new(Vec::new()));
    let rounds = Arc::new(AtomicU64::new(0));
    let worker = {
        let wl = wl.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        let surfaced = surfaced.clone();
        let rounds = rounds.clone();
        std::thread::spawn(move || {
            let mut round: u64 = 1;
            while !stop.load(Ordering::SeqCst) {
                for k in 0..WL_KEYS {
                    let key = format!("wl-k{k}");
                    match wl.put(key.as_bytes(), round.to_string().as_bytes()) {
                        Ok(_) => acked.lock()[k] = round,
                        Err(e) => surfaced.lock().push(e),
                    }
                    let _ = wl.get(key.as_bytes());
                }
                rounds.store(round, Ordering::SeqCst);
                round += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // Fill: push allocation past 75 % of the 2-server pool. Writes may
    // transiently fail while the pool is at capacity and the new server
    // is still booting — retry with a bounded budget, like a real task.
    let value = vec![0x5Au8; 2048];
    'fill: for i in 0..360 {
        let key = format!("bulk-{i}");
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match bulk.put(key.as_bytes(), &value) {
                Ok(_) => break,
                Err(e) if Instant::now() < deadline => {
                    assert!(
                        is_acceptable_mid_migration(&e)
                            || matches!(e, JiffyError::BlockFull { .. } | JiffyError::OutOfBlocks),
                        "unexpected fill error: {e:?}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("pool never grew to absorb the fill: {e:?}"),
            }
        }
        // Stop early once the scale-up landed and the fill has clearly
        // overflowed the original 2-server capacity (32 blocks).
        if i % 16 == 0 {
            let stats = cluster.controller().stats();
            if stats.servers >= 3 && stats.total_blocks - stats.free_blocks > 34 {
                break 'fill;
            }
        }
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = cluster.controller().stats();
        if stats.servers == 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "autoscaler never provisioned a third server: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cluster.controller().stats().scale_ups >= 1);

    // Drain the demand: deletes shrink the structure (merges release
    // blocks), free fraction climbs past the high watermark, and the
    // autoscaler retires a server.
    for i in 0..360 {
        let _ = bulk.delete(format!("bulk-{i}").as_bytes());
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = cluster.controller().stats();
        if stats.servers == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "autoscaler never drained back down: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = cluster.controller().stats();
    assert!(stats.scale_downs >= 1);
    // Note: the scale-down victim is the emptiest server, which may hold
    // zero live blocks after the bulk delete — live-block migration under
    // drain is covered by the dedicated drain/race tests above.

    // Give the workload a few more rounds against the shrunken pool,
    // then verify nothing acked was lost along the way.
    let settled = rounds.load(Ordering::SeqCst) + 3;
    let deadline = Instant::now() + Duration::from_secs(10);
    while rounds.load(Ordering::SeqCst) < settled && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    worker.join().unwrap();
    cluster.stop_elasticity();

    for e in surfaced.lock().iter() {
        assert!(
            is_acceptable_mid_migration(e),
            "workload saw a non-retryable error during scaling: {e:?}"
        );
    }
    for (k, round) in acked.lock().iter().enumerate() {
        let v = wl
            .get(format!("wl-k{k}").as_bytes())
            .unwrap()
            .unwrap_or_else(|| panic!("wl-k{k} lost"));
        let n: u64 = std::str::from_utf8(&v).unwrap().parse().unwrap();
        assert!(n >= *round, "wl-k{k}: acked round {round} lost (found {n})");
    }
}
