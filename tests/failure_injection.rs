//! Failure injection: dead tasks, dead servers, replication, and the
//! decoupled fault domains of §3.2.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy::cluster::JiffyCluster;
use jiffy::{JiffyConfig, JiffyError};
use jiffy_common::clock::ManualClock;
use jiffy_persistent::MemObjectStore;

#[test]
fn task_death_orphans_no_state() {
    // A "task" writes intermediate data and dies (stops renewing). Jiffy
    // must not leak the memory: the lease lapses, data is flushed, the
    // blocks return to the pool for other jobs.
    let (clock, shared) = ManualClock::shared();
    let store = Arc::new(MemObjectStore::new());
    let cluster = JiffyCluster::build(
        JiffyConfig::for_testing().with_block_size(16 * 1024),
        1,
        8,
        shared,
        store.clone(),
        false,
        false,
    )
    .unwrap();
    let client = cluster.client().unwrap();

    // Job A's task writes and dies.
    let job_a = client.register_job("victim").unwrap();
    let kv = job_a.open_kv("dead-task", &[], 2).unwrap();
    for i in 0..100 {
        kv.put(format!("k{i}").as_bytes(), vec![1u8; 200].as_slice())
            .unwrap();
    }
    let free_before = client.stats().unwrap().free_blocks;

    clock.advance(Duration::from_secs(5));
    cluster.controller().run_expiry_once();

    let free_after = client.stats().unwrap().free_blocks;
    assert!(free_after > free_before, "orphaned blocks reclaimed");

    // Job B can now use the reclaimed capacity.
    let job_b = client.register_job("beneficiary").unwrap();
    let kv_b = job_b.open_kv("fresh", &[], 2).unwrap();
    kv_b.put(b"x", b"y").unwrap();
    assert_eq!(kv_b.get(b"x").unwrap(), Some(b"y".to_vec()));

    // And job A's data is recoverable from the persistent tier.
    use jiffy_persistent::ObjectStore;
    let auto = format!("jiffy-expired/{}/dead-task", job_a.id().raw());
    assert!(store.exists(&auto));
    // A successor task (new lease) loads it.
    clock.advance(Duration::from_millis(10));
    job_a.renew_lease("dead-task").unwrap();
    job_a.load("dead-task", &auto).unwrap();
    let kv = job_a.open_kv("dead-task", &[], 1).unwrap();
    assert_eq!(kv.get(b"k42").unwrap(), Some(vec![1u8; 200]));
}

#[test]
fn server_departure_surfaces_clean_errors() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 2, 4).unwrap();
    let job = cluster.client().unwrap().register_job("doomed").unwrap();
    let kv = job.open_kv("s", &[], 2).unwrap();
    kv.put(b"k", b"v").unwrap();

    // Kill both memory servers (deregister from the in-proc hub).
    let view = job.resolve("s").unwrap();
    let mut addrs: Vec<String> = Vec::new();
    for loc in view.partition.unwrap().blocks() {
        for r in &loc.chain {
            if !addrs.contains(&r.addr) {
                addrs.push(r.addr.clone());
            }
        }
    }
    for addr in &addrs {
        cluster.fabric().hub().deregister(addr);
        cluster.fabric().evict(addr);
    }

    // Data ops now fail with a clean Unavailable, not a hang or panic.
    let err = kv.get(b"k").unwrap_err();
    assert!(matches!(err, JiffyError::Unavailable(_)), "{err:?}");
    // Control plane still works.
    assert!(job.resolve("s").is_ok());
}

#[test]
fn chain_replication_survives_head_loss_for_reads() {
    // chain_length = 2: each logical block has replicas on two servers.
    let cfg = JiffyConfig::for_testing().with_chain_length(2);
    let cluster = JiffyCluster::in_process(cfg, 2, 4).unwrap();
    let job = cluster
        .client()
        .unwrap()
        .register_job("replicated")
        .unwrap();
    let kv = job.open_kv("s", &[], 1).unwrap();
    for i in 0..50 {
        kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }

    // Verify both replicas hold the data: read directly at the tail.
    let view = job.resolve("s").unwrap();
    let loc = view.partition.unwrap().blocks()[0].clone();
    assert_eq!(loc.chain.len(), 2);
    assert_ne!(loc.chain[0].server, loc.chain[1].server);

    // Kill the head server; reads (served at the tail) keep working.
    let head_addr = loc.head().addr.clone();
    cluster.fabric().hub().deregister(&head_addr);
    cluster.fabric().evict(&head_addr);
    for i in 0..50 {
        assert_eq!(
            kv.get(format!("k{i}").as_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "k{i} must be readable from the tail replica"
        );
    }
    // Writes (entering at the dead head) fail cleanly.
    assert!(matches!(
        kv.put(b"new", b"w").unwrap_err(),
        JiffyError::Unavailable(_)
    ));
}

#[test]
fn load_over_live_structure_is_refused() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 1, 8).unwrap();
    let job = cluster.client().unwrap().register_job("guard").unwrap();
    let kv = job.open_kv("live", &[], 1).unwrap();
    kv.put(b"current", b"state").unwrap();
    job.flush("live", "ckpt/1").unwrap();
    // Loading over the live structure would clobber it: refused.
    let err = job.load("live", "ckpt/1").unwrap_err();
    assert!(matches!(err, JiffyError::Internal(_)), "{err:?}");
    assert_eq!(kv.get(b"current").unwrap(), Some(b"state".to_vec()));
}

#[test]
fn missing_checkpoint_load_fails_cleanly() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 1, 8).unwrap();
    let job = cluster.client().unwrap().register_job("nock").unwrap();
    job.create_addr_prefix("empty", &[]).unwrap();
    let err = job.load("empty", "ckpt/never-existed").unwrap_err();
    assert!(
        matches!(err, JiffyError::PersistentObjectMissing(_)),
        "{err:?}"
    );
}

#[test]
fn operations_on_removed_prefixes_fail_cleanly() {
    let cluster = JiffyCluster::in_process(JiffyConfig::for_testing(), 1, 8).unwrap();
    let job = cluster.client().unwrap().register_job("gone").unwrap();
    let kv = job.open_kv("t", &[], 1).unwrap();
    kv.put(b"k", b"v").unwrap();
    job.remove_addr_prefix("t").unwrap();
    // The handle's next op fails on resolve during its refresh.
    let err = kv.get(b"k").unwrap_err();
    assert!(
        matches!(
            err,
            JiffyError::PathNotFound(_) | JiffyError::UnknownBlock(_) | JiffyError::StaleMetadata
        ),
        "{err:?}"
    );
    // Renewing the lease of a removed prefix fails too.
    assert!(job.renew_lease("t").is_err());
}
