//! Tier-1 exactly-once-across-failover battery: abrupt chain-head kills
//! land between an executed-but-unacked write and the client's retry,
//! and the replicated per-block replay window must answer that retry
//! from the promoted replica without re-executing.
//!
//! Every schedule runs the full invariant checker (no duplicate
//! executions — queue FIFO and dequeue exactly-once, file length exact,
//! KV read-your-acked-writes — and zero acked-write loss). On top of
//! that, each battery asserts that the replay window actually fired at
//! least once across its seeds: the exactly-once verdicts must come
//! from replayed answers, not from lucky schedules that never retried.
//! (The deterministic replay-path unit tests live in `jiffy-server`;
//! these schedules prove the same machinery end to end under chaos.)

use std::time::Duration;

use jiffy_harness::{run, ElasticAction, HarnessConfig, WorkloadMix};
use jiffy_rpc::FaultRule;

/// Chaos tuned to manufacture the failover-retry race: reply-side drops
/// leave executed-but-unacked writes behind, transient errors force
/// connection eviction (so the per-session dedup cache cannot answer
/// and the block window must), and duplicates replay whole envelopes.
fn failover_chaos() -> FaultRule {
    FaultRule::none()
        .with_drop(0.04)
        .with_delay(0.20, Duration::ZERO, Duration::from_millis(3))
        .with_duplicate(0.03)
        .with_error(0.04)
}

fn lower_call_timeout() {
    jiffy_common::set_call_timeout(Duration::from_secs(2));
}

/// One seeded schedule: 3 workers hammer a 2-replica cluster, a spare
/// server joins early, and the oldest server — hosting every chain head
/// — is killed abruptly mid-workload. `kill_after` staggers the kill
/// across seeds so it lands amid different in-flight ops each time.
/// Returns the run's replay-window hit count.
fn killed_head_schedule(seed: u64, batch: usize, kill_after: usize) -> u64 {
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed,
        workers: 3,
        ops_per_worker: 120,
        rule: failover_chaos(),
        mix: WorkloadMix::all(),
        num_servers: 3,
        chain_length: 2,
        batch,
        elastic: vec![
            (40, ElasticAction::JoinServer),
            (kill_after, ElasticAction::KillServer),
        ],
        ..HarnessConfig::default()
    };
    let report = run(&cfg).unwrap();
    report.assert_ok();
    report.window_replays
}

/// Runs ten staggered-kill schedules, then — if no retry happened to
/// land on a replay window yet — keeps drawing further seeds (bounded)
/// until one does. Every schedule, base or extra, runs the full
/// invariant checker; the fallback only exists because whether a kill
/// lands between an executed write and its ack is probabilistic per
/// seed, and the battery must prove the window fired, not get lucky.
fn battery(base_seed: u64, batch: usize, stride: usize) {
    let mut replays = 0;
    for i in 0..10u64 {
        replays += killed_head_schedule(base_seed + i, batch, 90 + (i as usize * stride) % 120);
    }
    let mut extra = 10u64;
    while replays == 0 && extra < 40 {
        replays += killed_head_schedule(
            base_seed + extra,
            batch,
            90 + (extra as usize * stride) % 120,
        );
        extra += 1;
    }
    assert!(
        replays > 0,
        "no schedule ever answered a retry from a replay window — the \
         exactly-once verdicts above are vacuous"
    );
}

#[test]
fn single_op_writes_survive_abrupt_head_kill_exactly_once() {
    // 10+ schedules of unbatched ops, kill staggered across the run.
    battery(0xE10F_0000, 1, 17);
}

#[test]
fn batched_writes_survive_abrupt_head_kill_exactly_once() {
    // 10+ schedules where runs of same-kind ops ride multi-op batches
    // (ReplicateBatch down the chain, per-op request ids): retries may
    // regroup after the kill re-routes part of a batch.
    battery(0xE10F_1000, 6, 23);
}
