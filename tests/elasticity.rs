//! Fine-grained elasticity (§3.3): structures grow block by block under
//! load and shrink as data drains, with no loss and no client
//! involvement in repartitioning.

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn cfg() -> JiffyConfig {
    JiffyConfig::for_testing().with_block_size(16 * 1024)
}

#[test]
fn kv_grows_under_load_and_shrinks_after_deletes() {
    let cluster = JiffyCluster::in_process(cfg(), 2, 64).unwrap();
    let job = cluster.client().unwrap().register_job("breathe").unwrap();
    let kv = job.open_kv("state", &[], 1).unwrap();

    // Grow: ~200 KB into 16 KB blocks.
    let n = 800usize;
    for i in 0..n {
        kv.put(format!("key-{i}").as_bytes(), vec![3u8; 240].as_slice())
            .unwrap();
    }
    let grown = cluster.allocated_blocks();
    assert!(grown >= 10, "expected >= 10 blocks allocated, got {grown}");
    let splits_after_growth = cluster.controller().stats().splits;
    assert!(splits_after_growth >= 9);

    // Shrink: delete 95 % of the data; underload reports should trigger
    // merges that release blocks back to the pool.
    for i in 0..n {
        if i % 20 != 0 {
            kv.delete(format!("key-{i}").as_bytes()).unwrap();
        }
    }
    // Merges are asynchronous (threshold worker): wait for convergence.
    let mut shrunk = grown;
    for _ in 0..400 {
        shrunk = cluster.allocated_blocks();
        if shrunk <= grown / 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        shrunk < grown,
        "blocks should be reclaimed: {grown} -> {shrunk}"
    );
    assert!(cluster.controller().stats().merges >= 1);

    // Surviving keys still intact after all the merging.
    for i in (0..n).step_by(20) {
        assert_eq!(
            kv.get(format!("key-{i}").as_bytes()).unwrap(),
            Some(vec![3u8; 240]),
            "key-{i}"
        );
    }
    assert_eq!(kv.count().unwrap(), (n / 20) as u64);
}

#[test]
fn queue_segments_unlink_as_the_consumer_drains() {
    let cluster = JiffyCluster::in_process(cfg(), 1, 32).unwrap();
    let job = cluster.client().unwrap().register_job("drain").unwrap();
    let q = job.open_queue("work", &[]).unwrap();

    // Fill several segments.
    for i in 0..600u32 {
        q.enqueue(format!("{i:05}{}", "p".repeat(90)).as_bytes())
            .unwrap();
    }
    let filled = cluster.allocated_blocks();
    assert!(filled >= 3, "queue should span segments, got {filled}");

    // Drain everything.
    let mut count = 0u32;
    while let Some(item) = q.dequeue().unwrap() {
        let idx: u32 = std::str::from_utf8(&item[..5]).unwrap().parse().unwrap();
        assert_eq!(idx, count);
        count += 1;
    }
    assert_eq!(count, 600);

    // Drained segments unlink asynchronously.
    let mut remaining = filled;
    for _ in 0..400 {
        remaining = cluster.allocated_blocks();
        if remaining <= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        remaining < filled,
        "drained segments should unlink: {filled} -> {remaining}"
    );

    // The queue keeps working after shrink.
    q.enqueue(b"still alive").unwrap();
    assert_eq!(q.dequeue().unwrap(), Some(b"still alive".to_vec()));
}

#[test]
fn file_grows_chunk_by_chunk() {
    let cluster = JiffyCluster::in_process(cfg(), 1, 16).unwrap();
    let job = cluster.client().unwrap().register_job("grow").unwrap();
    let f = job.open_file("log", &[]).unwrap();
    // 100 KB into 16 KB chunks -> at least 7 chunks.
    let payload = vec![0xAB; 1000];
    for _ in 0..100 {
        f.append(&payload).unwrap();
    }
    assert_eq!(f.size().unwrap(), 100_000);
    assert!(cluster.allocated_blocks() >= 7);
    let all = f.read_all().unwrap();
    assert_eq!(all.len(), 100_000);
    assert!(all.iter().all(|&b| b == 0xAB));
}

#[test]
fn concurrent_clients_on_one_store_stay_consistent_through_splits() {
    let cluster = JiffyCluster::in_process(cfg(), 2, 64).unwrap();
    let client = cluster.client().unwrap();
    let job = client.register_job("concurrent").unwrap();
    let _ = job.open_kv("shared", &[], 1).unwrap();

    let mut handles = Vec::new();
    for t in 0..4u32 {
        let job = job.clone();
        handles.push(std::thread::spawn(move || {
            // Each thread opens its own handle (own metadata cache) —
            // caches go stale independently during splits.
            let kv = job.open_kv("shared", &[], 1).unwrap();
            for i in 0..250u32 {
                let key = format!("t{t}-k{i}");
                kv.put(key.as_bytes(), vec![5u8; 220].as_slice()).unwrap();
            }
            for i in 0..250u32 {
                let key = format!("t{t}-k{i}");
                assert_eq!(kv.get(key.as_bytes()).unwrap(), Some(vec![5u8; 220]));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let kv = job.open_kv("shared", &[], 1).unwrap();
    assert_eq!(kv.count().unwrap(), 1000);
    assert!(cluster.controller().stats().splits >= 10);
}

#[test]
fn capacity_exhaustion_is_reported_cleanly() {
    // 4 blocks of 16 KB = 64 KB total; try to store ~200 KB.
    let cluster = JiffyCluster::in_process(cfg(), 1, 4).unwrap();
    let job = cluster.client().unwrap().register_job("overflow").unwrap();
    let kv = job.open_kv("too-big", &[], 1).unwrap();
    let mut stored = 0;
    let mut failed = false;
    for i in 0..800 {
        match kv.put(format!("key-{i}").as_bytes(), vec![9u8; 240].as_slice()) {
            Ok(_) => stored += 1,
            Err(e) => {
                // Clean capacity error, not a hang or corruption.
                assert!(
                    matches!(
                        e,
                        jiffy::JiffyError::BlockFull { .. }
                            | jiffy::JiffyError::StaleMetadata
                            | jiffy::JiffyError::OutOfBlocks
                    ),
                    "unexpected error {e:?}"
                );
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "64 KB cluster cannot hold 200 KB");
    assert!(stored >= 150, "most of the capacity was usable: {stored}");
    // Everything stored remains readable.
    for i in 0..stored.min(100) {
        assert!(kv.get(format!("key-{i}").as_bytes()).unwrap().is_some());
    }
}
