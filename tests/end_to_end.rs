//! End-to-end integration: full clusters (control plane + data plane +
//! client library) over both transports, exercising all three data
//! structures the way analytics jobs do.

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;

fn small_blocks() -> JiffyConfig {
    // 16 KB blocks so splits happen with modest data volumes.
    JiffyConfig::for_testing().with_block_size(16 * 1024)
}

#[test]
fn shuffle_files_support_many_writers_one_reader() {
    // The MR shuffle pattern of §5.1: several "map tasks" append records
    // to the same shuffle file; a "reduce task" scans it.
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 32).unwrap();
    let job = cluster.client().unwrap().register_job("shuffle").unwrap();
    let file = jiffy_sync::Arc::new(job.open_file("shuffle-0", &[]).unwrap());

    let mut writers = Vec::new();
    for w in 0..4 {
        let f = file.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..50 {
                let record = format!("writer{w}:record{i};");
                f.append(record.as_bytes()).unwrap();
            }
        }));
    }
    for t in writers {
        t.join().unwrap();
    }

    let contents = String::from_utf8(file.read_all().unwrap()).unwrap();
    let records: Vec<&str> = contents.split(';').filter(|s| !s.is_empty()).collect();
    assert_eq!(records.len(), 200);
    // Every record arrived exactly once and intact.
    for w in 0..4 {
        for i in 0..50 {
            let needle = format!("writer{w}:record{i}");
            assert_eq!(
                records.iter().filter(|r| **r == needle).count(),
                1,
                "{needle}"
            );
        }
    }
    // The file outgrew one block (200 records x ~17 B > 16 KB high
    // watermark is not guaranteed, so check size only).
    assert_eq!(file.size().unwrap() as usize, contents.len());
}

#[test]
fn queue_pipeline_preserves_fifo_across_segments() {
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 32).unwrap();
    let job = cluster.client().unwrap().register_job("pipeline").unwrap();
    let q = job.open_queue("channel", &[]).unwrap();

    // Enough items to force several tail links (16 KB segments, ~116 B
    // per item incl. overhead).
    let n = 1000;
    for i in 0..n {
        let item = format!("{i:06}-{}", "x".repeat(100));
        q.enqueue(item.as_bytes()).unwrap();
    }
    assert_eq!(q.len().unwrap(), n);
    for i in 0..n {
        let item = q.dequeue().unwrap().expect("item present");
        let got: u64 = std::str::from_utf8(item.split_at(6).0)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(got, i, "FIFO order violated");
    }
    assert_eq!(q.dequeue().unwrap(), None);
    // The structure grew beyond one segment while full.
    assert!(cluster.controller().stats().splits >= 1);
}

#[test]
fn kv_store_survives_heavy_split_activity() {
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 64).unwrap();
    let job = cluster.client().unwrap().register_job("kv-heavy").unwrap();
    let kv = job.open_kv("state", &[], 1).unwrap();

    // ~300 KB of pairs into 16 KB blocks: forces a cascade of splits.
    let n = 1000;
    for i in 0..n {
        kv.put(
            format!("key-{i}").as_bytes(),
            format!("value-{}", "y".repeat(250 + i % 7)).as_bytes(),
        )
        .unwrap();
    }
    let stats = cluster.controller().stats();
    assert!(
        stats.splits >= 5,
        "expected many splits, got {}",
        stats.splits
    );
    // Every key readable, every value intact.
    for i in 0..n {
        let v = kv.get(format!("key-{i}").as_bytes()).unwrap().unwrap();
        assert_eq!(v.len(), 6 + 250 + i % 7);
    }
    assert_eq!(kv.count().unwrap(), n as u64);
    // Overwrites and deletes still route correctly after the splits.
    kv.put(b"key-0", b"fresh").unwrap();
    assert_eq!(kv.get(b"key-0").unwrap(), Some(b"fresh".to_vec()));
    assert_eq!(kv.delete(b"key-1").unwrap().map(|v| v.len()), Some(257));
    assert_eq!(kv.get(b"key-1").unwrap(), None);
}

#[test]
fn tcp_cluster_runs_the_same_workload() {
    let cluster = JiffyCluster::over_tcp(small_blocks(), 2, 16).unwrap();
    let job = cluster.client().unwrap().register_job("tcp").unwrap();
    let kv = job.open_kv("state", &[], 1).unwrap();
    for i in 0..200 {
        kv.put(format!("k{i}").as_bytes(), vec![7u8; 200].as_slice())
            .unwrap();
    }
    for i in 0..200 {
        assert_eq!(
            kv.get(format!("k{i}").as_bytes()).unwrap(),
            Some(vec![7u8; 200])
        );
    }
    let q = job.open_queue("q", &[]).unwrap();
    q.enqueue(b"tcp works").unwrap();
    assert_eq!(q.dequeue().unwrap(), Some(b"tcp works".to_vec()));
}

#[test]
fn multi_put_and_multi_get_round_trip_across_splits() {
    // Batched KV ops against a store that splits under the load: the
    // client must regroup sub-batches per block as the layout changes,
    // splice results back in input order, and report previous values
    // exactly as the single-op path would.
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 64).unwrap();
    let job = cluster
        .client()
        .unwrap()
        .register_job("kv-batched")
        .unwrap();
    let kv = job.open_kv("state", &[], 1).unwrap();

    let n = 600;
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
        .map(|i| {
            (
                format!("key-{i}").into_bytes(),
                format!("value-{}", "y".repeat(250 + i % 7)).into_bytes(),
            )
        })
        .collect();
    let prevs = kv.multi_put(&pairs).unwrap();
    assert_eq!(prevs.len(), n);
    assert!(prevs.iter().all(Option::is_none), "keys were fresh");
    assert!(
        cluster.controller().stats().splits >= 1,
        "workload must exercise splits mid-batch"
    );

    // Overwrites report the replaced values, in input order.
    let overwrite: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
        .map(|i| (format!("key-{i}").into_bytes(), b"fresh".to_vec()))
        .collect();
    let prevs = kv.multi_put(&overwrite).unwrap();
    for (i, prev) in prevs.iter().enumerate() {
        assert_eq!(
            prev.as_ref().map(Vec::len),
            Some(6 + 250 + i % 7),
            "key-{i}"
        );
    }

    // Batched reads see the overwrites; missing keys come back None.
    let mut keys: Vec<Vec<u8>> = (0..n).map(|i| format!("key-{i}").into_bytes()).collect();
    keys.push(b"no-such-key".to_vec());
    let values = kv.multi_get(&keys).unwrap();
    assert_eq!(values.len(), n + 1);
    assert!(values[..n]
        .iter()
        .all(|v| v.as_deref() == Some(&b"fresh"[..])));
    assert_eq!(values[n], None);
}

#[test]
fn enqueue_batch_preserves_fifo_across_segments() {
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 32).unwrap();
    let job = cluster.client().unwrap().register_job("q-batched").unwrap();
    let q = job.open_queue("channel", &[]).unwrap();

    // Batches big enough that several land mid-segment-link.
    let n = 1000usize;
    let items: Vec<Vec<u8>> = (0..n)
        .map(|i| format!("{i:06}-{}", "x".repeat(100)).into_bytes())
        .collect();
    for chunk in items.chunks(25) {
        q.enqueue_batch(chunk).unwrap();
    }
    assert_eq!(q.len().unwrap(), n as u64);
    for i in 0..n {
        let item = q.dequeue().unwrap().expect("item present");
        assert_eq!(&item[..6], format!("{i:06}").as_bytes(), "FIFO violated");
    }
    assert_eq!(q.dequeue().unwrap(), None);
    assert!(cluster.controller().stats().splits >= 1);
}

#[test]
fn write_vectored_assembles_contiguous_files() {
    let cluster = JiffyCluster::in_process(small_blocks(), 2, 32).unwrap();
    let job = cluster
        .client()
        .unwrap()
        .register_job("file-batched")
        .unwrap();
    let file = job.open_file("out", &[]).unwrap();

    // Gathered buffers spanning several 16 KB chunks in one call.
    let bufs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![b'a' + i; 10 * 1024]).collect();
    let refs: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
    file.write_vectored(0, &refs).unwrap();

    let expected: Vec<u8> = bufs.concat();
    assert_eq!(file.size().unwrap() as usize, expected.len());
    assert_eq!(file.read_all().unwrap(), expected);

    // A second gathered write overlapping the tail extends the file.
    let tail = expected.len() as u64 - 1024;
    file.write_vectored(tail, &[&[b'z'; 2048]]).unwrap();
    let contents = file.read_all().unwrap();
    assert_eq!(contents.len(), expected.len() + 1024);
    assert!(contents[tail as usize..].iter().all(|&b| b == b'z'));
}

#[test]
fn batched_ops_work_over_tcp() {
    // The corked writer + waiter table under real sockets: batched calls
    // from several threads multiplex over the pooled connections.
    let cluster = JiffyCluster::over_tcp(small_blocks(), 2, 16).unwrap();
    let job = cluster
        .client()
        .unwrap()
        .register_job("tcp-batched")
        .unwrap();
    let kv = jiffy_sync::Arc::new(job.open_kv("state", &[], 1).unwrap());

    let mut threads = Vec::new();
    for t in 0..4 {
        let kv = kv.clone();
        threads.push(std::thread::spawn(move || {
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..100)
                .map(|i| {
                    (
                        format!("t{t}-k{i}").into_bytes(),
                        format!("t{t}-v{i}").into_bytes(),
                    )
                })
                .collect();
            kv.multi_put(&pairs).unwrap();
        }));
    }
    for th in threads {
        th.join().unwrap();
    }
    for t in 0..4 {
        let keys: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("t{t}-k{i}").into_bytes())
            .collect();
        let values = kv.multi_get(&keys).unwrap();
        for (i, v) in values.into_iter().enumerate() {
            assert_eq!(v, Some(format!("t{t}-v{i}").into_bytes()));
        }
    }
}

#[test]
fn flush_and_load_round_trip_preserves_kv_contents() {
    let cluster = JiffyCluster::in_process(small_blocks(), 1, 16).unwrap();
    let job = cluster.client().unwrap().register_job("ckpt").unwrap();
    let kv = job.open_kv("model", &[], 1).unwrap();
    for i in 0..100 {
        kv.put(format!("w{i}").as_bytes(), format!("{}", i * i).as_bytes())
            .unwrap();
    }
    let bytes = job.flush("model", "s3://bucket/model-ckpt").unwrap();
    assert!(bytes > 0);

    // Drop the prefix entirely, recreate it bare, load the checkpoint.
    job.remove_addr_prefix("model").unwrap();
    job.create_addr_prefix("model", &[]).unwrap();
    job.load("model", "s3://bucket/model-ckpt").unwrap();

    let kv = job.open_kv("model", &[], 1).unwrap();
    for i in 0..100 {
        assert_eq!(
            kv.get(format!("w{i}").as_bytes()).unwrap(),
            Some(format!("{}", i * i).into_bytes()),
            "w{i}"
        );
    }
}

#[test]
fn hierarchy_addresses_resolve_via_multiple_paths() {
    let cluster = JiffyCluster::in_process(small_blocks(), 1, 16).unwrap();
    let job = cluster.client().unwrap().register_job("dag").unwrap();
    // Fig. 3's diamond: t1, t2 -> t5 -> t7; t3 -> t7.
    job.create_addr_prefix("t1", &[]).unwrap();
    job.create_addr_prefix("t2", &[]).unwrap();
    job.create_addr_prefix("t3", &[]).unwrap();
    job.create_addr_prefix("t5", &["t1", "t2"]).unwrap();
    let _kv = job.open_kv("t7", &["t5"], 1).unwrap();
    job.add_parent("t7", "t3").unwrap();

    for path in ["t7", "t5.t7", "t1.t5.t7", "t2.t5.t7", "t3.t7"] {
        let view = job.resolve(path).unwrap();
        assert_eq!(view.name, "t7", "path {path}");
        assert!(view.partition.is_some());
    }
    assert!(job.resolve("t1.t7").is_err(), "no such edge");

    let renewed = job.renew_lease("t5.t7").unwrap();
    // t7 + direct parents (t5, t3) + no descendants.
    let mut renewed_sorted = renewed.clone();
    renewed_sorted.sort();
    assert_eq!(renewed_sorted, vec!["t3", "t5", "t7"]);
}

#[test]
fn deregister_releases_all_capacity() {
    let cluster = JiffyCluster::in_process(small_blocks(), 1, 16).unwrap();
    let client = cluster.client().unwrap();
    let job = client.register_job("ephemeral").unwrap();
    let kv = job.open_kv("s", &[], 2).unwrap();
    for i in 0..200 {
        kv.put(format!("k{i}").as_bytes(), vec![1u8; 300].as_slice())
            .unwrap();
    }
    let before = client.stats().unwrap();
    assert!(before.free_blocks < 16);
    job.deregister().unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.free_blocks, 16);
    assert_eq!(cluster.used_bytes(), 0);
}
