//! Custom data structures via the internal block API (paper Fig. 6 and
//! the "custom data structures" row of Table 2): a from-scratch
//! `counter` partition is registered on a memory server, initialized
//! through the standard `InitBlock` path and driven with `DsOp::Custom`.

use jiffy_sync::Arc;

use jiffy_block::Partition;
use jiffy_common::{JiffyConfig, JiffyError, Result};
use jiffy_controller::{Controller, RpcDataPlane};
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{
    Blob, ControlRequest, ControlResponse, DataRequest, DataResponse, DsOp, DsResult, DsType,
    Envelope, SplitSpec,
};
use jiffy_rpc::Fabric;
use jiffy_server::MemoryServer;

/// A set of named u64 counters with a cumulative-add operator — the kind
/// of accumulator structure Piccolo-style applications want.
struct CounterPartition {
    capacity: usize,
    counters: std::collections::HashMap<String, u64>,
}

impl Partition for CounterPartition {
    fn ds_type(&self) -> DsType {
        // Custom structures piggyback on the closest built-in type tag
        // for introspection; the registry name is what matters.
        DsType::KvStore
    }

    fn execute(&mut self, op: &DsOp) -> Result<DsResult> {
        match op {
            DsOp::Custom { ds, op, payload } if ds == "counter" => match op.as_str() {
                "add" => {
                    let (name, delta): (String, u64) = jiffy_proto::from_bytes(payload)?;
                    if self.used_bytes() + name.len() + 8 > self.capacity {
                        return Err(JiffyError::BlockFull {
                            capacity: self.capacity,
                            requested: name.len() + 8,
                        });
                    }
                    let v = self.counters.entry(name).or_insert(0);
                    *v += delta;
                    Ok(DsResult::Size(*v))
                }
                "read" => {
                    let name: String = jiffy_proto::from_bytes(payload)?;
                    Ok(DsResult::Size(
                        self.counters.get(&name).copied().unwrap_or(0),
                    ))
                }
                other => Err(JiffyError::Internal(format!("unknown counter op {other}"))),
            },
            other => Err(JiffyError::WrongDataStructure {
                expected: "counter".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn used_bytes(&self) -> usize {
        self.counters.keys().map(|k| k.len() + 8).sum()
    }

    fn export(&self) -> Result<Vec<u8>> {
        let entries: Vec<(&String, &u64)> = self.counters.iter().collect();
        jiffy_proto::to_bytes(&entries)
    }

    fn absorb(&mut self, payload: &[u8]) -> Result<()> {
        let entries: Vec<(String, u64)> = jiffy_proto::from_bytes(payload)?;
        for (k, v) in entries {
            *self.counters.entry(k).or_insert(0) += v;
        }
        Ok(())
    }

    fn split_out(&mut self, _spec: &SplitSpec) -> Result<Vec<u8>> {
        Err(JiffyError::Internal("counter does not split".into()))
    }
}

fn data(fabric: &Fabric, addr: &str, req: DataRequest) -> Result<DataResponse> {
    let conn = fabric.connect(addr)?;
    let env = Envelope::DataReq {
        id: 0,
        req,
        tenant: jiffy_common::TenantId::ANONYMOUS,
    };
    match conn.call(env)? {
        Envelope::DataResp { resp, .. } => resp,
        other => panic!("{other:?}"),
    }
}

#[test]
fn custom_counter_structure_runs_on_a_memory_server() {
    let fabric = Fabric::new();
    let cfg = JiffyConfig::for_testing();
    let controller = Controller::new(
        cfg.clone(),
        jiffy_common::clock::SystemClock::shared(),
        Arc::new(RpcDataPlane::new(fabric.clone())),
        Arc::new(MemObjectStore::new()),
    )
    .unwrap();
    let controller_addr = fabric.hub().register(controller);

    // Register the custom factory before the server starts serving.
    let server = MemoryServer::new(cfg.clone(), fabric.clone(), controller_addr.clone());
    server.register_custom_ds(
        "counter",
        Box::new(|capacity, _params| {
            Ok(Box::new(CounterPartition {
                capacity,
                counters: std::collections::HashMap::new(),
            }) as Box<dyn Partition>)
        }),
    );
    let addr = fabric.hub().register(server.clone());
    server.register(&addr, 4).unwrap();

    // Reserve a block through the controller, then initialize it as a
    // counter via the standard init path (name-based registry lookup).
    let conn = fabric.connect(&controller_addr).unwrap();
    let job = match conn
        .call(Envelope::ControlReq {
            id: 0,
            req: ControlRequest::RegisterJob {
                name: "custom".into(),
            },
            tenant: jiffy_common::TenantId::ANONYMOUS,
        })
        .unwrap()
    {
        Envelope::ControlResp {
            resp: Ok(ControlResponse::JobRegistered { job }),
            ..
        } => job,
        other => panic!("{other:?}"),
    };
    let _ = job;
    data(
        &fabric,
        &addr,
        DataRequest::InitBlock {
            block: jiffy_common::BlockId(0),
            ds: "counter".into(),
            params: Blob::default(),
        },
    )
    .unwrap();

    // Drive it with Custom ops.
    for (name, delta) in [("reqs", 5u64), ("reqs", 7), ("errors", 1)] {
        let payload = jiffy_proto::to_bytes(&(name.to_string(), delta)).unwrap();
        data(
            &fabric,
            &addr,
            DataRequest::Op {
                block: jiffy_common::BlockId(0),
                op: DsOp::Custom {
                    ds: "counter".into(),
                    op: "add".into(),
                    payload: payload.into(),
                },
            },
        )
        .unwrap();
    }
    let read = |name: &str| -> u64 {
        let payload = jiffy_proto::to_bytes(&name.to_string()).unwrap();
        match data(
            &fabric,
            &addr,
            DataRequest::Op {
                block: jiffy_common::BlockId(0),
                op: DsOp::Custom {
                    ds: "counter".into(),
                    op: "read".into(),
                    payload: payload.into(),
                },
            },
        )
        .unwrap()
        {
            DataResponse::OpResult(DsResult::Size(v)) => v,
            other => panic!("{other:?}"),
        }
    };
    assert_eq!(read("reqs"), 12);
    assert_eq!(read("errors"), 1);
    assert_eq!(read("missing"), 0);

    // Export / absorb works through the generic block machinery too.
    let exported = match data(
        &fabric,
        &addr,
        DataRequest::ExportBlock {
            block: jiffy_common::BlockId(0),
        },
    )
    .unwrap()
    {
        DataResponse::Exported { payload, .. } => payload,
        other => panic!("{other:?}"),
    };
    data(
        &fabric,
        &addr,
        DataRequest::InitBlock {
            block: jiffy_common::BlockId(1),
            ds: "counter".into(),
            params: Blob::default(),
        },
    )
    .unwrap();
    data(
        &fabric,
        &addr,
        DataRequest::ImportPayload {
            block: jiffy_common::BlockId(1),
            payload: exported,
            replay: Blob::default(),
        },
    )
    .unwrap();
    // Same totals on the restored block.
    let payload = jiffy_proto::to_bytes(&"reqs".to_string()).unwrap();
    match data(
        &fabric,
        &addr,
        DataRequest::Op {
            block: jiffy_common::BlockId(1),
            op: DsOp::Custom {
                ds: "counter".into(),
                op: "read".into(),
                payload: payload.into(),
            },
        },
    )
    .unwrap()
    {
        DataResponse::OpResult(DsResult::Size(v)) => assert_eq!(v, 12),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_custom_structure_is_rejected() {
    let fabric = Fabric::new();
    let cfg = JiffyConfig::for_testing();
    let controller = Controller::new(
        cfg.clone(),
        jiffy_common::clock::SystemClock::shared(),
        Arc::new(RpcDataPlane::new(fabric.clone())),
        Arc::new(MemObjectStore::new()),
    )
    .unwrap();
    let controller_addr = fabric.hub().register(controller);
    let server = MemoryServer::new(cfg, fabric.clone(), controller_addr);
    let addr = fabric.hub().register(server.clone());
    server.register(&addr, 1).unwrap();
    let err = data(
        &fabric,
        &addr,
        DataRequest::InitBlock {
            block: jiffy_common::BlockId(0),
            ds: "btree".into(),
            params: Blob::default(),
        },
    )
    .unwrap_err();
    assert!(matches!(err, JiffyError::Internal(_)), "{err:?}");
}
