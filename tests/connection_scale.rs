//! Connection-scale soak for the epoll reactor transport (DESIGN.md §12).
//!
//! Ramps waves of concurrent client sessions — 10 up to 2k+, bounded by
//! the process fd limit — against one `serve_tcp` server, driving a mix
//! of single and batched KV ops with light injected chaos (drops and
//! delay jitter) on a quarter of the connections. Asserts the reactor's
//! core contracts at scale:
//!
//! - **zero lost acked writes** — every op the server acknowledged is
//!   readable afterwards over a clean connection;
//! - **bounded latency** — p99 of successful ops stays far below the
//!   call timeout even at the top wave;
//! - **flat thread count** — session count must not move the process
//!   thread count (that is the whole point of the rewrite);
//! - **clean teardown** — every session is torn down (`on_disconnect`
//!   accounting), and `/proc/self/fd` returns to its baseline, so
//!   neither sockets nor reactor registrations leak.
//!
//! Set `JIFFY_SCALE_QUICK=1` (the CI `connection-sweep` job does) to cap
//! the ramp at 500 sessions for a fast smoke pass.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use jiffy_common::{BlockId, JiffyError};
use jiffy_proto::{Blob, DataRequest, DataResponse, DsOp, DsResult, Envelope};
use jiffy_rpc::tcp::{connect_tcp, serve_tcp, TcpServerHandle};
use jiffy_rpc::{ChaosConn, ClientConn, FaultInjector, FaultRule, Service, SessionHandle};
use jiffy_sync::{Arc, Barrier, Mutex};

/// Minimal KV service speaking the data-plane envelope: `Op`/`Batch`
/// with `Put`/`Get`, plus `Ping`. An `Ok` response is an ack.
struct ScaleStore {
    map: Mutex<HashMap<Vec<u8>, Blob>>,
}

impl ScaleStore {
    fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn op(&self, op: DsOp) -> DsResult {
        match op {
            DsOp::Put { key, value } => {
                self.map.lock().insert(key.0, value);
                DsResult::Ok
            }
            DsOp::Get { key } => DsResult::MaybeData(self.map.lock().get(&key.0).cloned()),
            _ => DsResult::Ok,
        }
    }
}

impl Service for ScaleStore {
    fn handle(&self, req: Envelope, _session: &SessionHandle) -> Envelope {
        match req {
            Envelope::DataReq { id, req, .. } => {
                let resp = match req {
                    DataRequest::Ping => DataResponse::Pong,
                    DataRequest::Op { op, .. } => DataResponse::OpResult(self.op(op)),
                    DataRequest::Batch { ops, .. } => {
                        DataResponse::Batch(ops.into_iter().map(|o| Ok(self.op(o))).collect())
                    }
                    _ => DataResponse::Ack,
                };
                Envelope::DataResp { id, resp: Ok(resp) }
            }
            _ => Envelope::DataResp {
                id: 0,
                resp: Err(JiffyError::Internal("bad envelope".into())),
            },
        }
    }
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Soft `RLIMIT_NOFILE`, read from /proc (no libc dependency).
fn fd_soft_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

fn put(key: &str, value: &str) -> Envelope {
    Envelope::DataReq {
        id: 0,
        req: DataRequest::Op {
            block: BlockId(0),
            op: DsOp::Put {
                key: key.into(),
                value: value.into(),
            },
        },
        tenant: jiffy_common::TenantId::ANONYMOUS,
    }
}

fn batch(ops: Vec<DsOp>) -> Envelope {
    Envelope::DataReq {
        id: 0,
        req: DataRequest::Batch {
            block: BlockId(0),
            ops,
            rids: Vec::new(),
        },
        tenant: jiffy_common::TenantId::ANONYMOUS,
    }
}

fn is_ok_resp(resp: &Envelope) -> bool {
    matches!(resp, Envelope::DataResp { resp: Ok(_), .. })
}

/// Polls `cond` until true or the deadline; returns whether it held.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct WaveOutcome {
    /// Keys (with expected values) the server acked.
    acked: Vec<(String, String)>,
    /// Latencies of successful calls.
    latencies: Vec<Duration>,
    /// Calls that failed (injected drops/errors — allowed, not acked).
    failed: usize,
    /// Peak concurrent sessions the server reported during the wave.
    peak_sessions: usize,
}

/// Opens `n` sessions (a quarter of them chaos-wrapped), drives mixed
/// single/batched ops over every session, then closes them all.
fn run_wave(
    addr: &str,
    server: &TcpServerHandle,
    injector: &Arc<FaultInjector>,
    n: usize,
    rounds: usize,
) -> WaveOutcome {
    let openers = n.clamp(1, 16);
    let barrier = Arc::new(Barrier::new(openers + 1));
    let acked = Arc::new(Mutex::new(Vec::new()));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let failed = Arc::new(Mutex::new(0usize));
    let mut handles = Vec::new();
    for o in 0..openers {
        let quota = n / openers + usize::from(o < n % openers);
        let addr = addr.to_string();
        let injector = injector.clone();
        let barrier = barrier.clone();
        let acked = acked.clone();
        let latencies = latencies.clone();
        let failed = failed.clone();
        handles.push(std::thread::spawn(move || {
            let mut conns: Vec<ClientConn> = Vec::with_capacity(quota);
            for c in 0..quota {
                let raw = connect_tcp(&addr).expect("dial");
                // Every fourth session runs under the fault injector.
                if c % 4 == 0 {
                    conns.push(ClientConn(Arc::new(ChaosConn::new(
                        raw,
                        addr.clone(),
                        injector.clone(),
                    ))));
                } else {
                    conns.push(raw);
                }
            }
            // All sessions of the wave are open concurrently here.
            barrier.wait();
            let mut local_acked = Vec::new();
            let mut local_lat = Vec::new();
            let mut local_failed = 0usize;
            for round in 0..rounds {
                for (c, conn) in conns.iter().enumerate() {
                    let key = format!("w{n}-o{o}-c{c}-r{round}");
                    let value = format!("v-{key}");
                    let start = Instant::now();
                    let result = if c % 3 == 0 {
                        // Batched: put + read-back in one frame.
                        conn.call(batch(vec![
                            DsOp::Put {
                                key: key.as_str().into(),
                                value: value.as_str().into(),
                            },
                            DsOp::Get {
                                key: key.as_str().into(),
                            },
                        ]))
                    } else {
                        conn.call(put(&key, &value))
                    };
                    match result {
                        Ok(resp) if is_ok_resp(&resp) => {
                            local_lat.push(start.elapsed());
                            local_acked.push((key, value));
                        }
                        _ => local_failed += 1,
                    }
                }
            }
            // Hold the sessions open until every opener finished its ops,
            // so the server sees the full wave the whole time.
            barrier.wait();
            for conn in &conns {
                conn.close();
            }
            acked.lock().extend(local_acked);
            latencies.lock().extend(local_lat);
            *failed.lock() += local_failed;
        }));
    }
    // Between the two barriers every session is open: sample the peak.
    barrier.wait();
    let mut peak = 0;
    for _ in 0..20 {
        peak = peak.max(server.live_sessions());
        std::thread::sleep(Duration::from_millis(2));
    }
    barrier.wait();
    for h in handles {
        h.join().expect("opener thread");
    }
    let acked = std::mem::take(&mut *acked.lock());
    let latencies = std::mem::take(&mut *latencies.lock());
    let failed = *failed.lock();
    WaveOutcome {
        acked,
        latencies,
        failed,
        peak_sessions: peak,
    }
}

#[test]
fn reactor_sustains_session_ramp_with_no_lost_acks() {
    // Local loopback: injected hangs should fail fast, as in chaos.rs.
    jiffy_common::set_call_timeout(Duration::from_secs(2));
    let quick = std::env::var("JIFFY_SCALE_QUICK").is_ok_and(|v| v == "1");

    let store = Arc::new(ScaleStore::new());
    let mut server = serve_tcp("127.0.0.1:0", store).expect("serve");
    let addr = server.addr().to_string();

    let injector = Arc::new(FaultInjector::new(0xC10C_0001));
    injector.set_default_rule(FaultRule::none().with_drop(0.005).with_delay(
        0.05,
        Duration::ZERO,
        Duration::from_millis(2),
    ));

    // Warm up the process-wide client reactor pool so its threads/fds are
    // part of the baseline, then measure it.
    {
        let conn = connect_tcp(&addr).expect("warmup dial");
        let resp = conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .expect("warmup ping");
        assert!(is_ok_resp(&resp));
        conn.close();
    }
    assert!(
        eventually(Duration::from_secs(10), || server.live_sessions() == 0),
        "warmup session must tear down"
    );
    let fd_baseline = fd_count();
    let thread_baseline = thread_count();

    // Each session costs ~4 fds in-process (client + server side, each
    // with an egress clone); leave generous headroom below the soft
    // rlimit and cap the top wave accordingly.
    let cap = ((fd_soft_limit().saturating_sub(512)) / 4).max(10);
    let top = if quick { 500.min(cap) } else { 2048.min(cap) };
    let mut waves = vec![10, 100, 500, top];
    waves.retain(|&w| w <= top);
    waves.dedup();

    let mut all_acked = Vec::new();
    let mut all_latencies = Vec::new();
    let mut total_failed = 0;
    let mut top_peak = 0;
    for &n in &waves {
        let rounds = if n >= 500 { 2 } else { 4 };
        let outcome = run_wave(&addr, &server, &injector, n, rounds);
        assert!(
            outcome.peak_sessions >= n * 9 / 10,
            "wave {n}: server should hold ~all sessions concurrently, saw {}",
            outcome.peak_sessions
        );
        top_peak = top_peak.max(outcome.peak_sessions);
        // Threads must not scale with sessions: allow only the opener
        // threads themselves plus a little slack over the baseline.
        let threads_now = thread_count();
        assert!(
            threads_now <= thread_baseline + 16 + 8,
            "wave {n}: thread count grew with sessions ({thread_baseline} -> {threads_now})"
        );
        all_acked.extend(outcome.acked);
        all_latencies.extend(outcome.latencies);
        total_failed += outcome.failed;
        // Every session of the wave must tear down before the next one.
        assert!(
            eventually(Duration::from_secs(30), || server.live_sessions() == 0),
            "wave {n}: sessions leaked ({} left)",
            server.live_sessions()
        );
    }

    assert!(
        top_peak >= waves.iter().copied().max().unwrap_or(0).min(1000),
        "reactor must sustain the top wave concurrently (peak {top_peak})"
    );

    // Zero lost acked writes: read every acked key back over one clean
    // connection, in batched gets.
    assert!(!all_acked.is_empty(), "soak must ack some writes");
    let verify = connect_tcp(&addr).expect("verify dial");
    for chunk in all_acked.chunks(64) {
        let ops = chunk
            .iter()
            .map(|(k, _)| DsOp::Get {
                key: k.as_str().into(),
            })
            .collect();
        let resp = verify.call(batch(ops)).expect("verify batch");
        let Envelope::DataResp {
            resp: Ok(DataResponse::Batch(results)),
            ..
        } = resp
        else {
            panic!("unexpected verify response: {resp:?}");
        };
        assert_eq!(results.len(), chunk.len());
        for ((key, value), result) in chunk.iter().zip(results) {
            match result {
                Ok(DsResult::MaybeData(Some(got))) => {
                    assert_eq!(&*got, value.as_bytes(), "acked write {key} corrupted");
                }
                other => panic!("acked write {key} lost: {other:?}"),
            }
        }
    }
    verify.close();

    // Bounded p99 (successful ops only; injected drops count as failed,
    // never as acked).
    all_latencies.sort_unstable();
    let p99 = all_latencies[all_latencies.len() * 99 / 100 - 1];
    assert!(
        p99 < Duration::from_millis(1500),
        "p99 {p99:?} breached the bound ({} samples, {total_failed} failed)",
        all_latencies.len()
    );

    // Clean teardown: the server saw every session close...
    assert!(
        eventually(Duration::from_secs(30), || server.live_sessions() == 0),
        "sessions leaked at the end of the soak"
    );
    let stats = server.stats();
    assert_eq!(
        stats.sessions_closed, stats.accepted,
        "every accepted session must be finalized exactly once"
    );
    server.shutdown();
    // ...and neither fds nor threads leaked (poll: fd release rides the
    // reactor's EOF processing).
    assert!(
        eventually(Duration::from_secs(30), || fd_count() <= fd_baseline + 4),
        "fd leak: baseline {fd_baseline}, now {}",
        fd_count()
    );
    assert!(
        eventually(Duration::from_secs(30), || {
            thread_count() <= thread_baseline + 2
        }),
        "thread leak: baseline {thread_baseline}, now {}",
        thread_count()
    );
}
