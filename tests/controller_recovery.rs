//! Controller crash recovery (DESIGN.md §11): the metadata journal +
//! snapshots must let a restarted controller rebuild *exactly* the
//! state its predecessor acked — for every crash point, over both
//! transports, and under a full chaos workload.
//!
//! Three layers of coverage:
//!
//! 1. **Crash-point sweep** against a bare [`Controller`]: a scripted
//!    history touching every journal record type, recovered from every
//!    journal prefix (kill-after-every-record) and from every
//!    full-store crash image with mid-stream snapshots enabled.
//! 2. **Cluster crash/restart** over in-process and TCP transports:
//!    acked data survives, clients retry through the dark window, and
//!    the restarted controller keeps serving.
//! 3. **Chaos**: the harness's `CrashController` action mid-workload,
//!    checked for zero acked-write loss by the history checker.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_common::clock::{ManualClock, SharedClock};
use jiffy_common::{JobId, ServerId};
use jiffy_controller::{Controller, NoopDataPlane, StateMirror};
use jiffy_harness::{run, ElasticAction, HarnessConfig, WorkloadMix};
use jiffy_persistent::{MemObjectStore, ObjectStore};
use jiffy_proto::{ControlRequest, ControlResponse, DsType};
use jiffy_sync::Arc;

const JOURNAL_PREFIX: &str = "jiffy-meta/journal/";

// ---------------------------------------------------------------------
// Crash-point sweep
// ---------------------------------------------------------------------

/// Ids discovered while the script runs (deterministic, but read back
/// from responses rather than hardcoded).
#[derive(Default)]
struct ScriptIds {
    job: Cell<u64>,
    server_a: Cell<u64>,
    server_b: Cell<u64>,
}

type Step = Box<dyn Fn(&Controller, &ManualClock)>;

/// A scripted history exercising every journal record type: job
/// registration, prefix creation (bound and bare), extra parents, lease
/// renewal, split, merge, flush, remove, lease expiry (flush+reclaim),
/// load-back, drain, server failure, deregistration, and post-churn
/// reuse of the recovered freelist.
fn script() -> Vec<(&'static str, Step)> {
    let ids = Rc::new(ScriptIds::default());
    let job = {
        let ids = ids.clone();
        move || JobId(ids.job.get())
    };
    let kv_blocks = |ctrl: &Controller, job: JobId| -> Vec<jiffy_common::BlockId> {
        match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(v) => v
                .partition
                .unwrap()
                .blocks()
                .iter()
                .map(|l| l.id())
                .collect(),
            other => panic!("{other:?}"),
        }
    };
    let join = |ctrl: &Controller, tag: &str, blocks: u32| -> u64 {
        match ctrl
            .dispatch(ControlRequest::JoinServer {
                addr: format!("inproc:{tag}"),
                capacity_blocks: blocks,
            })
            .unwrap()
        {
            ControlResponse::ServerJoined { server, .. } => server.raw(),
            other => panic!("{other:?}"),
        }
    };

    let mut steps: Vec<(&'static str, Step)> = Vec::new();
    let mut step = |name: &'static str, f: Step| steps.push((name, f));

    {
        let ids = ids.clone();
        step(
            "join-a",
            Box::new(move |c, _| ids.server_a.set(join(c, "a", 8))),
        );
    }
    {
        let ids = ids.clone();
        step(
            "join-b",
            Box::new(move |c, _| ids.server_b.set(join(c, "b", 8))),
        );
    }
    {
        let ids = ids.clone();
        step(
            "register",
            Box::new(move |c, _| {
                match c
                    .dispatch(ControlRequest::RegisterJob {
                        name: "sweep".into(),
                    })
                    .unwrap()
                {
                    ControlResponse::JobRegistered { job } => ids.job.set(job.raw()),
                    other => panic!("{other:?}"),
                }
            }),
        );
    }
    for (label, name, ds, blocks) in [
        ("create-kv", "kv", Some(DsType::KvStore), 2),
        ("create-file", "file", Some(DsType::File), 2),
        ("create-bare", "bare", None, 0),
    ] {
        let job = job.clone();
        step(
            label,
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::CreatePrefix {
                    job: job(),
                    name: name.into(),
                    parents: vec![],
                    ds,
                    initial_blocks: blocks,
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "add-parent",
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::AddParent {
                    job: job(),
                    name: "kv".into(),
                    parent: "bare".into(),
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "renew",
            Box::new(move |c, clock| {
                clock.advance(Duration::from_millis(100));
                c.dispatch(ControlRequest::RenewLease {
                    job: job(),
                    name: "kv".into(),
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "split",
            Box::new(move |c, _| {
                let blocks = kv_blocks(c, job());
                c.dispatch(ControlRequest::ReportOverload {
                    block: blocks[0],
                    used: u64::MAX / 2,
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "merge",
            Box::new(move |c, _| {
                let blocks = kv_blocks(c, job());
                assert_eq!(blocks.len(), 3, "split added a block");
                c.dispatch(ControlRequest::ReportUnderload {
                    block: *blocks.last().unwrap(),
                    used: 0,
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "flush-file",
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::FlushPrefix {
                    job: job(),
                    name: "file".into(),
                    external_path: "ext/file".into(),
                })
                .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "remove-file",
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::RemovePrefix {
                    job: job(),
                    name: "file".into(),
                })
                .unwrap();
            }),
        );
    }
    {
        step(
            "expire-kv",
            Box::new(move |c, clock| {
                clock.advance(Duration::from_millis(1100));
                let expired = c.run_expiry_once();
                assert!(!expired.is_empty(), "lease lapse reclaims kv");
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "load-kv",
            Box::new(move |c, _| {
                let path = format!("jiffy-expired/{}/kv", job().raw());
                c.dispatch(ControlRequest::LoadPrefix {
                    job: job(),
                    name: "kv".into(),
                    external_path: path,
                })
                .unwrap();
            }),
        );
    }
    {
        let ids = ids.clone();
        step(
            "drain-b",
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::LeaveServer {
                    server: ServerId(ids.server_b.get()),
                })
                .unwrap();
            }),
        );
    }
    {
        let ids = ids.clone();
        step(
            "fail-a",
            Box::new(move |c, _| {
                c.handle_server_failure(ServerId(ids.server_a.get()))
                    .unwrap();
            }),
        );
    }
    {
        let job = job.clone();
        step(
            "deregister",
            Box::new(move |c, _| {
                c.dispatch(ControlRequest::DeregisterJob { job: job() })
                    .unwrap();
            }),
        );
    }
    step(
        "join-c",
        Box::new(move |c, _| {
            join(c, "c", 4);
        }),
    );
    {
        step(
            "reuse",
            Box::new(move |c, _| {
                let job = match c
                    .dispatch(ControlRequest::RegisterJob {
                        name: "after".into(),
                    })
                    .unwrap()
                {
                    ControlResponse::JobRegistered { job } => job,
                    other => panic!("{other:?}"),
                };
                c.dispatch(ControlRequest::CreatePrefix {
                    job,
                    name: "fresh".into(),
                    parents: vec![],
                    ds: Some(DsType::Queue),
                    initial_blocks: 1,
                })
                .unwrap();
            }),
        );
    }
    steps
}

fn fresh_controller(cfg: &JiffyConfig) -> (Arc<Controller>, Arc<ManualClock>, Arc<MemObjectStore>) {
    let (clock, shared) = ManualClock::shared();
    let store = Arc::new(MemObjectStore::new());
    let ctrl = Controller::new(cfg.clone(), shared, Arc::new(NoopDataPlane), store.clone())
        .expect("fresh controller");
    (ctrl, clock, store)
}

fn recover(
    cfg: &JiffyConfig,
    clock: &Arc<ManualClock>,
    store: &Arc<MemObjectStore>,
) -> Arc<Controller> {
    let shared: SharedClock = clock.clone();
    Controller::recover(cfg.clone(), shared, Arc::new(NoopDataPlane), store.clone())
        .expect("recovery")
}

fn assert_matches(step: &str, expected: &StateMirror, rec: &Controller) {
    let violations = rec.check_invariants();
    assert!(violations.is_empty(), "after {step}: {violations:?}");
    assert_eq!(
        *expected,
        rec.state_mirror().normalized(),
        "recovered state diverges after {step}"
    );
}

/// Kill-after-every-record: with snapshots disabled the journal holds
/// one object per acked batch; recovering from every prefix of those
/// objects must land on the state the live controller had at that
/// point, with all cross-table invariants intact.
#[test]
fn crash_point_sweep_over_every_journal_prefix() {
    let cfg = JiffyConfig::for_testing().with_meta_snapshot_every(0);
    let (ctrl, clock, store) = fresh_controller(&cfg);
    // (step name, #journal objects at that point, normalized mirror).
    let mut checkpoints: Vec<(&'static str, usize, StateMirror)> = Vec::new();
    for (name, step) in script() {
        step(&ctrl, &clock);
        checkpoints.push((
            name,
            store.list(JOURNAL_PREFIX).len(),
            ctrl.state_mirror().normalized(),
        ));
    }
    let objects = store.list(JOURNAL_PREFIX);
    assert!(objects.len() >= checkpoints.len() - 1, "most steps journal");
    for (name, count, expected) in &checkpoints {
        let partial = Arc::new(MemObjectStore::new());
        for path in objects.iter().take(*count) {
            partial
                .put(path, &store.get(path).expect("journal object"))
                .expect("copy");
        }
        let rec = recover(&cfg, &clock, &partial);
        assert_matches(name, expected, &rec);
    }
}

/// The same script with aggressive snapshotting (every 2 records): a
/// full crash image taken after every step now lands in all phases of
/// the snapshot/truncate cycle, and recovery must be exact in each.
#[test]
fn crash_point_sweep_with_mid_stream_snapshots() {
    let cfg = JiffyConfig::for_testing().with_meta_snapshot_every(2);
    let (ctrl, clock, store) = fresh_controller(&cfg);
    for (name, step) in script() {
        step(&ctrl, &clock);
        let image = Arc::new(MemObjectStore::new());
        for path in store.list("") {
            image
                .put(&path, &store.get(&path).expect("object"))
                .expect("copy");
        }
        let rec = recover(&cfg, &clock, &image);
        assert_matches(name, &ctrl.state_mirror().normalized(), &rec);
    }
}

// ---------------------------------------------------------------------
// Cluster crash/restart
// ---------------------------------------------------------------------

/// Config for the cluster crash/restart tests: lease expiry is not
/// under test here, and the cluster runs the real-clock expiry worker,
/// so a long lease keeps a slow (loaded) machine from reclaiming the
/// test's prefixes mid-exercise.
fn long_lease_cfg() -> JiffyConfig {
    JiffyConfig::for_testing().with_lease_duration(Duration::from_secs(120))
}

fn exercise_crash_restart(cluster: &JiffyCluster) {
    let client = cluster.client().expect("client");
    let job = client.register_job("recov").expect("job");
    let kv = job.open_kv("state", &[], 2).expect("kv");
    for i in 0..50u32 {
        kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
            .expect("acked put");
    }

    cluster.crash_controller();
    cluster.restart_controller().expect("restart");

    // Every acked write survives the controller crash (data blocks were
    // never touched; the recovered metadata still routes to them).
    for i in 0..50u32 {
        assert_eq!(
            kv.get(format!("k{i}").as_bytes()).expect("get"),
            Some(format!("v{i}").into_bytes()),
            "k{i} lost across controller restart"
        );
    }
    // The recovered control plane keeps serving: existing handles renew,
    // new structures allocate from the recovered freelist.
    job.renew_lease("state").expect("renew after restart");
    let kv2 = job.open_kv("post-restart", &[], 1).expect("new prefix");
    kv2.put(b"x", b"y").expect("put");
    assert_eq!(kv2.get(b"x").expect("get"), Some(b"y".to_vec()));
    let stats = cluster.controller().stats();
    assert_eq!(stats.jobs, 1);
    assert!(cluster.controller().check_invariants().is_empty());

    // A second crash/restart cycle works too (the first recovery's own
    // journal writes are replayable).
    cluster.crash_controller();
    cluster.restart_controller().expect("second restart");
    assert_eq!(kv.get(b"k0").expect("get"), Some(b"v0".to_vec()));
}

#[test]
fn in_process_cluster_survives_controller_crash() {
    let cluster = JiffyCluster::in_process(long_lease_cfg(), 2, 16).expect("cluster");
    exercise_crash_restart(&cluster);
}

#[test]
fn tcp_cluster_survives_controller_crash_and_rebinds_its_port() {
    let cluster = JiffyCluster::over_tcp(long_lease_cfg(), 2, 16).expect("cluster");
    let addr_before = cluster.controller_addr().to_string();
    exercise_crash_restart(&cluster);
    assert_eq!(
        cluster.controller_addr(),
        addr_before,
        "restart must rebind the same endpoint clients hold"
    );
}

/// A control request issued while the controller is dark rides through
/// on the client's transport retry and lands on the recovered instance.
#[test]
fn control_ops_ride_through_the_restart_window() {
    let cluster = JiffyCluster::in_process(long_lease_cfg(), 2, 16).expect("cluster");
    let client = cluster.client().expect("client");
    let job = client.register_job("window").expect("job");
    job.open_kv("state", &[], 1).expect("kv");

    cluster.crash_controller();
    let concurrent = {
        let client2 = cluster.client().expect("client");
        let job_id = job.id();
        std::thread::spawn(move || {
            jiffy_client::JobClient::attach(client2, job_id).renew_lease("state")
        })
    };
    std::thread::sleep(Duration::from_millis(5));
    cluster.restart_controller().expect("restart");
    let renewed = concurrent
        .join()
        .expect("no panic")
        .expect("request retried into the recovered controller");
    assert!(renewed.contains(&"state".to_string()));
}

/// Servers keep heartbeating into the recovered controller: liveness is
/// re-learned from the wire, not from the journal.
#[test]
fn heartbeats_reestablish_liveness_after_restart() {
    let cfg = JiffyConfig::for_testing();
    let cluster = JiffyCluster::in_process(cfg.clone(), 2, 8).expect("cluster");
    cluster.crash_controller();
    cluster.restart_controller().expect("restart");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if cluster.controller().stats().servers == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "servers never re-registered as alive with the recovered controller"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// Chaos
// ---------------------------------------------------------------------

/// Full chaos workload with the controller crashing (and recovering)
/// twice mid-run, on top of the usual transport faults: the history
/// checker proves no acked write was lost and no stale read served.
#[test]
fn chaos_with_controller_crashes_loses_no_acked_writes() {
    let cfg = HarnessConfig {
        seed: 0x0C0_FFEE,
        ops_per_worker: 150,
        mix: WorkloadMix::all(),
        elastic: vec![
            (40, ElasticAction::CrashController),
            (90, ElasticAction::CrashController),
        ],
        ..HarnessConfig::default()
    };
    run(&cfg).expect("harness run").assert_ok();
}

/// Controller crashes interleaved with server membership churn: the
/// journal's drain/failure rewrites and the recovery path compose.
#[test]
fn chaos_with_controller_crash_and_membership_churn() {
    let cfg = HarnessConfig {
        seed: 0x0C0_FFE2,
        ops_per_worker: 150,
        chain_length: 2,
        num_servers: 3,
        mix: WorkloadMix::kv_only(),
        elastic: vec![
            (30, ElasticAction::JoinServer),
            (60, ElasticAction::CrashController),
            (90, ElasticAction::DrainServer),
            (120, ElasticAction::CrashController),
        ],
        ..HarnessConfig::default()
    };
    run(&cfg).expect("harness run").assert_ok();
}
