//! The four programming models of paper §5, end-to-end on a real
//! in-process cluster: MapReduce word count, a Dryad-style mixed
//! file/queue dataflow, a StreamScope-style keyed streaming pipeline,
//! and a Piccolo PageRank-flavored kernel program.

use jiffy::cluster::JiffyCluster;
use jiffy::JiffyConfig;
use jiffy_models::piccolo::{run_kernels, SumF64};
use jiffy_models::{
    ChannelKind, Dataflow, MapReduceJob, Mapper, PiccoloTable, Reducer, StreamPipeline, StreamStage,
};

fn cluster() -> JiffyCluster {
    JiffyCluster::in_process(JiffyConfig::for_testing().with_block_size(32 * 1024), 2, 64).unwrap()
}

// ---------------------------------------------------------------------------
// MapReduce (§5.1)
// ---------------------------------------------------------------------------

struct TokenizeMapper;

impl Mapper for TokenizeMapper {
    fn map(&self, _key: &[u8], value: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for word in String::from_utf8_lossy(value).split_whitespace() {
            emit(word.as_bytes().to_vec(), b"1".to_vec());
        }
    }
}

struct CountReducer;

impl Reducer for CountReducer {
    fn reduce(&self, _key: &[u8], values: &[Vec<u8>]) -> Vec<u8> {
        values.len().to_string().into_bytes()
    }
}

#[test]
fn mapreduce_word_count_is_exact() {
    let cluster = cluster();
    let job = cluster.client().unwrap().register_job("mr-wc").unwrap();
    // 4 map partitions of a tiny corpus with known counts.
    let lines = [
        "the quick brown fox",
        "the lazy dog and the quick cat",
        "brown dog quick fox",
        "the end",
    ];
    let inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| vec![(i.to_string().into_bytes(), l.as_bytes().to_vec())])
        .collect();
    let mr = MapReduceJob::new(TokenizeMapper, CountReducer, 3);
    let out = mr.run(&job, inputs).unwrap();
    let count = |w: &str| -> u32 {
        String::from_utf8(out[w.as_bytes()].clone())
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(count("the"), 4);
    assert_eq!(count("quick"), 3);
    assert_eq!(count("brown"), 2);
    assert_eq!(count("dog"), 2);
    assert_eq!(count("fox"), 2);
    assert_eq!(count("end"), 1);
    assert_eq!(out.len(), 9, "distinct words: {out:?}");
    // Intermediate shuffle state was released after the job.
    let stats = cluster.controller().stats();
    assert_eq!(
        stats.total_blocks,
        stats.free_blocks + cluster.allocated_blocks() as u64
    );
}

#[test]
fn mapreduce_scales_to_many_tasks() {
    let cluster = cluster();
    let job = cluster.client().unwrap().register_job("mr-big").unwrap();
    // 8 mappers, 400 lines, Zipf-ish word mix.
    let words = [
        "alpha", "beta", "gamma", "delta", "alpha", "alpha", "beta", "x",
    ];
    let inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = (0..8)
        .map(|m| {
            (0..50)
                .map(|i| {
                    let line = format!(
                        "{} {} {}",
                        words[(m + i) % words.len()],
                        words[(m * 3 + i) % words.len()],
                        words[(m + i * 7) % words.len()]
                    );
                    ((m * 100 + i).to_string().into_bytes(), line.into_bytes())
                })
                .collect()
        })
        .collect();
    let mr = MapReduceJob::new(TokenizeMapper, CountReducer, 5);
    let out = mr.run(&job, inputs).unwrap();
    // 3 words per line × 400 lines = 1200 total tokens.
    let total: u32 = out
        .values()
        .map(|v| {
            String::from_utf8(v.clone())
                .unwrap()
                .parse::<u32>()
                .unwrap()
        })
        .sum();
    assert_eq!(total, 1200);
}

// ---------------------------------------------------------------------------
// Dryad dataflow (§5.2)
// ---------------------------------------------------------------------------

#[test]
fn dataflow_mixes_file_and_queue_channels() {
    let cluster = cluster();
    let job = cluster.client().unwrap().register_job("dryad").unwrap();
    let mut g = Dataflow::new();
    g.channel("raw", ChannelKind::Queue)
        .channel("squares", ChannelKind::Queue)
        .channel("report", ChannelKind::File);
    // source -> square (streaming) -> sink (writes a batch file).
    g.vertex("source", &[], &["raw"], |ctx| {
        for i in 0..100u64 {
            ctx.write(0, &i.to_le_bytes(), &i.to_le_bytes())?;
        }
        Ok(())
    });
    g.vertex("square", &["raw"], &["squares"], |ctx| {
        while let Some((k, v)) = ctx.read(0)? {
            let n = u64::from_le_bytes(v.try_into().unwrap());
            ctx.write(0, &k, &(n * n).to_le_bytes())?;
        }
        Ok(())
    });
    g.vertex("sink", &["squares"], &["report"], |ctx| {
        let mut sum = 0u64;
        while let Some((_k, v)) = ctx.read(0)? {
            sum += u64::from_le_bytes(v.try_into().unwrap());
        }
        ctx.write(0, b"sum-of-squares", &sum.to_le_bytes())?;
        Ok(())
    });
    g.run(&job).unwrap();

    // Validate the batch output: sum i^2 for i in 0..100 = 328350.
    let report = job.open_file("report", &[]).unwrap();
    let records = jiffy_models::RecordReader::open(&report)
        .unwrap()
        .collect_all()
        .unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].0, b"sum-of-squares");
    assert_eq!(
        u64::from_le_bytes(records[0].1.clone().try_into().unwrap()),
        328_350
    );
}

#[test]
fn dataflow_diamond_with_file_barriers() {
    let cluster = cluster();
    let job = cluster.client().unwrap().register_job("diamond").unwrap();
    let mut g = Dataflow::new();
    for ch in ["left", "right", "merged"] {
        g.channel(ch, ChannelKind::File);
    }
    g.vertex("producer-l", &[], &["left"], |ctx| {
        for i in 0..10u32 {
            ctx.write(0, format!("l{i}").as_bytes(), b"1")?;
        }
        Ok(())
    });
    g.vertex("producer-r", &[], &["right"], |ctx| {
        for i in 0..15u32 {
            ctx.write(0, format!("r{i}").as_bytes(), b"1")?;
        }
        Ok(())
    });
    g.vertex("merge", &["left", "right"], &["merged"], |ctx| {
        let mut n = 0u32;
        for i in 0..2 {
            while ctx.read(i)?.is_some() {
                n += 1;
            }
        }
        ctx.write(0, b"total", n.to_string().as_bytes())?;
        Ok(())
    });
    g.run(&job).unwrap();
    let merged = job.open_file("merged", &[]).unwrap();
    let records = jiffy_models::RecordReader::open(&merged)
        .unwrap()
        .collect_all()
        .unwrap();
    assert_eq!(records[0].1, b"25");
}

// ---------------------------------------------------------------------------
// StreamScope streaming (§5.2, §6.5)
// ---------------------------------------------------------------------------

#[test]
fn streaming_word_count_pipeline() {
    let cluster = cluster();
    let job = cluster.client().unwrap().register_job("stream-wc").unwrap();
    // partition stage (split sentences into words) -> count stage.
    let pipeline = StreamPipeline::new()
        .stage(StreamStage::new("partition", 4, |_k, v, emit| {
            for w in String::from_utf8_lossy(v).split_whitespace() {
                emit(w.as_bytes().to_vec(), b"1".to_vec());
            }
        }))
        .stage(StreamStage::new("count", 4, {
            // Keyed running count per instance (keys are hash-pinned to
            // one instance, so a local map is correct).
            let counts = jiffy_sync::Mutex::new(std::collections::HashMap::<Vec<u8>, u64>::new());
            move |k, _v, emit| {
                let mut c = counts.lock();
                let n = c.entry(k.to_vec()).or_insert(0);
                *n += 1;
                emit(k.to_vec(), n.to_string().into_bytes());
            }
        }));
    let (input, collector) = pipeline.launch(&job).unwrap();
    for i in 0..50 {
        input
            .send(
                format!("s{i}").as_bytes(),
                b"jiffy makes serverless analytics jiffy fast",
            )
            .unwrap();
    }
    input.close().unwrap();
    let out = collector.join().unwrap().unwrap();
    // 6 words per sentence x 50 sentences = 300 events at the sink.
    assert_eq!(out.len(), 300);
    // The final count event for "jiffy" must be 100 (2 per sentence).
    let max_jiffy = out
        .iter()
        .filter(|(k, _)| k == b"jiffy")
        .map(|(_, v)| {
            String::from_utf8(v.clone())
                .unwrap()
                .parse::<u64>()
                .unwrap()
        })
        .max()
        .unwrap();
    assert_eq!(max_jiffy, 100);
}

// ---------------------------------------------------------------------------
// Piccolo (§5.3)
// ---------------------------------------------------------------------------

#[test]
fn piccolo_kernels_share_state_through_tables() {
    let cluster = cluster();
    let client = cluster.client().unwrap();
    let job = client.register_job("piccolo").unwrap();

    // A rank table over 64 "pages"; 4 kernels each own 16 pages and push
    // rank contributions to *any* page (cross-kernel shared state).
    let table = PiccoloTable::create(&job, "ranks", SumF64, 2).unwrap();
    for page in 0..64u32 {
        table
            .put(page.to_string().as_bytes(), &1.0f64.to_le_bytes())
            .unwrap();
    }
    let job2 = job.clone();
    run_kernels(&job, vec!["ranks".to_string()], 4, move |k| {
        let table = PiccoloTable::create(&job2, "ranks", SumF64, 1)?;
        // Kernel k owns pages [16k, 16k+16); each page donates 0.25 to
        // the page (p * 7) % 64 — single-writer per *target* key is NOT
        // guaranteed, so route updates through per-kernel partitioning:
        // each kernel updates only targets in its own partition after a
        // local aggregation step (the Piccolo discipline).
        let mut local: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for p in (16 * k as u32)..(16 * k as u32 + 16) {
            let target = (p * 7) % 64;
            *local.entry(target).or_insert(0.0) += 0.25;
        }
        // Apply aggregated contributions; (p*7)%64 maps each kernel's
        // pages to 16 distinct targets, but different kernels may hit
        // the same target — serialize via per-key retry-free accumulate:
        // acceptable here because each target (p*7)%64 for p in one
        // kernel's range is unique *across kernels* (7 is coprime to 64).
        for (target, delta) in local {
            table.update(target.to_string().as_bytes(), &delta.to_le_bytes())?;
        }
        Ok(())
    })
    .unwrap();

    // Every page got exactly one 0.25 contribution: rank = 1.25.
    for page in 0..64u32 {
        let v = table.get(page.to_string().as_bytes()).unwrap().unwrap();
        let rank = f64::from_le_bytes(v.try_into().unwrap());
        assert!((rank - 1.25).abs() < 1e-9, "page {page}: {rank}");
    }

    // Checkpoint, clobber, restore.
    table.checkpoint(&job, "ckpt/ranks").unwrap();
    table.put(b"0", &99.0f64.to_le_bytes()).unwrap();
    job.remove_addr_prefix("ranks").unwrap();
    job.create_addr_prefix("ranks", &[]).unwrap();
    job.load("ranks", "ckpt/ranks").unwrap();
    let restored = PiccoloTable::create(&job, "ranks", SumF64, 1).unwrap();
    let v = restored.get(b"0").unwrap().unwrap();
    assert!((f64::from_le_bytes(v.try_into().unwrap()) - 1.25).abs() < 1e-9);
}
