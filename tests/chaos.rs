//! Tier-1 chaos smoke tests: every data structure holds its invariants
//! under light transport faults, and a partitioned memory server degrades
//! into lease-driven reclamation instead of a hang.
//!
//! The heavy property-based campaigns live in `crates/harness`; these
//! tests pin the end-to-end behaviour into the main suite with small,
//! fast configurations.

use jiffy_sync::Arc;
use std::time::{Duration, Instant};

use jiffy::cluster::JiffyCluster;
use jiffy::{JiffyClient, JiffyConfig};
use jiffy_common::clock::ManualClock;
use jiffy_harness::{run, ElasticAction, HarnessConfig, TenantQos, WorkloadMix};
use jiffy_persistent::MemObjectStore;
use jiffy_rpc::{FaultInjector, FaultRule};

/// 1% drop plus up-to-5ms delay jitter on every client call.
fn light_chaos() -> FaultRule {
    FaultRule::none()
        .with_drop(0.01)
        .with_delay(0.20, Duration::ZERO, Duration::from_millis(5))
}

/// Chaos tests run against local in-process/loopback transports where
/// 10 s of silence means "dead", not "slow" — lower the RPC call
/// timeout so injected hangs fail fast instead of stalling the suite.
fn lower_call_timeout() {
    jiffy_common::set_call_timeout(Duration::from_secs(2));
}

fn smoke(seed: u64, mix: WorkloadMix) {
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed,
        ops_per_worker: 100,
        rule: light_chaos(),
        mix,
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn kv_survives_light_chaos() {
    smoke(0xC4A0_5001, WorkloadMix::kv_only());
}

#[test]
fn file_survives_light_chaos() {
    smoke(0xC4A0_5002, WorkloadMix::file_only());
}

#[test]
fn queue_survives_light_chaos() {
    smoke(0xC4A0_5003, WorkloadMix::queue_only());
}

#[test]
fn all_structures_survive_light_chaos_together() {
    smoke(0xC4A0_5004, WorkloadMix::all());
}

#[test]
fn batched_ops_survive_chaos_with_duplicates() {
    // The PR 4 fast path: runs of same-kind ops ride multi-op Batch
    // RPCs. Drops force transport retries and duplicates replay whole
    // batch envelopes — the dedup cache must treat each batch as one
    // unit so no sub-op applies twice (the history checker would flag
    // a double-applied enqueue or a lost acked put).
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed: 0xBA7C_0001,
        ops_per_worker: 200,
        rule: FaultRule::none()
            .with_drop(0.03)
            .with_delay(0.10, Duration::ZERO, Duration::from_millis(2))
            .with_duplicate(0.05)
            .with_error(0.03),
        mix: WorkloadMix::all(),
        batch: 8,
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn batched_ops_survive_elastic_kill_and_join() {
    // Batched writes racing membership changes: a replica chain's home
    // is killed and a fresh server joins mid-workload. Sub-batches that
    // straddle a re-route must be retried per block without re-applying
    // the already-acked prefix.
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed: 0xBA7C_0002,
        ops_per_worker: 200,
        rule: light_chaos().with_duplicate(0.03),
        mix: WorkloadMix::kv_only(),
        num_servers: 3,
        chain_length: 2,
        elastic: vec![
            (60, ElasticAction::JoinServer),
            (120, ElasticAction::KillServer),
        ],
        batch: 8,
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn batched_queue_fifo_survives_drain() {
    // enqueue_batch under a live drain: segments migrate while batches
    // land. FIFO order within and across batches is checked by the
    // queue invariant in the history checker.
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed: 0xBA7C_0003,
        ops_per_worker: 150,
        rule: light_chaos().with_duplicate(0.03),
        mix: WorkloadMix::queue_only(),
        num_servers: 3,
        elastic: vec![(50, ElasticAction::DrainServer)],
        batch: 6,
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn partitioned_server_causes_lease_reclaim_not_hang() {
    // A task's memory server becomes unreachable. The client must fail
    // fast (bounded retries, not an infinite hang), and once the job's
    // lease lapses the controller must reclaim the unreachable prefix's
    // blocks through its *own* (healthy) fabric.
    let (clock, shared) = ManualClock::shared();
    let store = Arc::new(MemObjectStore::new());
    let cluster = JiffyCluster::build(
        JiffyConfig::for_testing(),
        2,
        8,
        shared,
        store,
        false,
        false,
    )
    .unwrap();

    // Chaos fabric for the client only; the controller keeps the clean
    // cluster fabric for flush/reclaim traffic.
    let injector = Arc::new(FaultInjector::new(0xDEAD));
    let chaos_fabric = cluster
        .fabric()
        .clone()
        .with_fault_injection(injector.clone());
    let client = JiffyClient::connect(chaos_fabric, cluster.controller_addr()).unwrap();
    let job = client.register_job("partitioned").unwrap();
    let kv = job.open_kv("state", &[], 2).unwrap();
    kv.put(b"k", b"v").unwrap();
    let free_before = client.stats().unwrap().free_blocks;

    // Partition every server that holds a block of the structure.
    let view = job.resolve("state").unwrap();
    let mut partitioned = Vec::new();
    for loc in view.partition.unwrap().blocks() {
        for replica in &loc.chain {
            if !partitioned.contains(&replica.addr) {
                partitioned.push(replica.addr.clone());
            }
        }
    }
    for addr in &partitioned {
        injector.partition(addr);
    }

    // Data ops fail within bounded time instead of hanging.
    let started = Instant::now();
    let err = kv.get(b"k").unwrap_err();
    assert!(err.is_transport(), "expected transport error, got {err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "retries must be bounded"
    );

    // The job stops renewing; expiry reclaims the blocks over the
    // controller's healthy fabric.
    clock.advance(Duration::from_secs(5));
    cluster.controller().run_expiry_once();
    let free_after = client.stats().unwrap().free_blocks;
    assert!(
        free_after > free_before,
        "partitioned prefix must be reclaimed ({free_before} -> {free_after})"
    );

    // The injector saw the partition (ops were actually rejected there).
    assert!(injector.stats().partition_rejections > 0);

    // Healing the partition restores service for a fresh structure.
    for addr in &partitioned {
        injector.heal(addr);
    }
    let kv2 = job.open_kv("state2", &[], 1).unwrap();
    kv2.put(b"x", b"y").unwrap();
    assert_eq!(kv2.get(b"x").unwrap(), Some(b"y".to_vec()));
}

#[test]
fn server_killed_mid_workload_replicated_data_survives() {
    // Chain-replicated KV, three servers, one crashed a third of the way
    // in. The controller promotes surviving replicas, clients re-route,
    // and the history checker proves no acked write was lost.
    let cfg = HarnessConfig {
        seed: 0xE1A5_0001,
        ops_per_worker: 150,
        rule: light_chaos(),
        mix: WorkloadMix::kv_only(),
        num_servers: 3,
        chain_length: 2,
        elastic: vec![(50, ElasticAction::KillServer)],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn server_joins_mid_workload() {
    let cfg = HarnessConfig {
        seed: 0xE1A5_0002,
        ops_per_worker: 150,
        rule: light_chaos(),
        mix: WorkloadMix::all(),
        elastic: vec![(50, ElasticAction::JoinServer)],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn server_drained_mid_workload_migrates_live_blocks() {
    // A graceful drain live-migrates every block off the oldest server
    // while the workload keeps running. Ops racing a migration may see
    // retryable errors (the client re-routes); none may lose data.
    let cfg = HarnessConfig {
        seed: 0xE1A5_0003,
        ops_per_worker: 150,
        rule: light_chaos(),
        mix: WorkloadMix::all(),
        num_servers: 3,
        elastic: vec![(50, ElasticAction::DrainServer)],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn kill_then_join_then_drain_stacked_chaos() {
    let cfg = HarnessConfig {
        seed: 0xE1A5_0004,
        ops_per_worker: 200,
        rule: light_chaos(),
        mix: WorkloadMix::kv_only(),
        num_servers: 3,
        chain_length: 2,
        elastic: vec![
            (40, ElasticAction::JoinServer),
            (80, ElasticAction::KillServer),
            (120, ElasticAction::DrainServer),
        ],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn throttled_aggressor_under_membership_churn_never_hurts_the_victim() {
    // Two tenants share the cluster: tenant 1 (workers 0 and 2) runs a
    // normal workload, tenant 2 (worker 1) is an aggressor pinned to a
    // tight op-rate limit, and a server joins then another drains away
    // mid-run. The history checker proves every acked write of *both*
    // tenants landed exactly once — throttling is retryable and never
    // double-executes — and the isolation checker proves neither tenant
    // can read the other's keys. The churn is an abrupt head kill: the
    // replicated replay window makes retries across the promotion
    // exactly-once even with throttling stretching the run so the kill
    // lands amid more in-flight ops.
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed: 0x0A05_0001,
        workers: 3,
        tenants: 2,
        ops_per_worker: 120,
        rule: light_chaos().with_duplicate(0.03),
        mix: WorkloadMix::kv_only(),
        num_servers: 3,
        chain_length: 2,
        qos: Some(jiffy_common::QosConfig::enabled_with_rates(0, 0)),
        tenant_limits: vec![TenantQos {
            tenant_index: 1,
            share: 1,
            quota_bytes: 0,
            ops_per_sec: 300,
            bytes_per_sec: 0,
        }],
        elastic: vec![
            (60, ElasticAction::JoinServer),
            (150, ElasticAction::KillServer),
        ],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn controller_shard_crashes_mid_workload_lose_no_acked_writes() {
    // Sharded control plane (2 shards), each crashed and recovered from
    // its own journal stream mid-run. Data ops never touch the
    // controller, control ops ride client retries through the recovery
    // window, and the history checker proves zero acked-write loss and
    // no exactly-once violations.
    lower_call_timeout();
    let cfg = HarnessConfig {
        seed: 0x5A4D_0001,
        ops_per_worker: 150,
        rule: light_chaos(),
        mix: WorkloadMix::all(),
        num_servers: 2,
        shards: 2,
        elastic: vec![
            (40, ElasticAction::CrashControllerShard(0)),
            (90, ElasticAction::CrashControllerShard(1)),
        ],
        ..HarnessConfig::default()
    };
    run(&cfg).unwrap().assert_ok();
}

#[test]
fn dark_controller_shard_serves_cache_hits_and_retried_misses() {
    // One shard goes dark. Cached metadata for its slice keeps serving
    // (resolves are cache hits, data ops flow), and a forced cache miss
    // rides the client's transport retries into the recovered shard.
    let cluster = JiffyCluster::in_process_sharded(JiffyConfig::for_testing(), 4, 8, 2).unwrap();
    let client = cluster
        .client()
        .unwrap()
        .with_retry_policy(jiffy_rpc::RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            multiplier: 2.0,
        });
    let job = client.register_job("shard-dark").unwrap();
    let sc = cluster.sharded_controller().unwrap().clone();
    // Two prefixes on different shards.
    let mut names = (0..16).map(|i| format!("p{i}"));
    let a = names.next().unwrap();
    let b = names
        .find(|n| sc.route_path(job.id(), n) != sc.route_path(job.id(), &a))
        .expect("16 names span 2 shards");
    let kv_a = job.open_kv(&a, &[], 1).unwrap();
    let kv_b = job.open_kv(&b, &[], 1).unwrap();
    kv_a.put(b"k", b"a").unwrap();
    kv_b.put(b"k", b"b").unwrap();
    let cache = client.metadata_cache();
    job.resolve(&a).unwrap(); // warm

    let dark = sc.route_path(job.id(), &a) as usize;
    cluster.crash_controller_shard(dark);

    // Cached metadata for the dark shard's slice still serves resolves
    // without a controller round-trip...
    let hits = cache.stats().hits();
    let resolves = cache.stats().resolves();
    job.resolve(&a).unwrap();
    assert!(
        cache.stats().hits() > hits,
        "dark-shard resolve must hit cache"
    );
    assert_eq!(cache.stats().resolves(), resolves);
    // ...and acked data is reachable on both slices (the data path
    // never touches the controller).
    assert_eq!(kv_a.get(b"k").unwrap(), Some(b"a".to_vec()));
    assert_eq!(kv_b.get(b"k").unwrap(), Some(b"b".to_vec()));
    // The live shard's control plane is unaffected.
    job.resolve_fresh(&b).unwrap();

    // A cache miss for the dark slice rides retries into the shard once
    // it recovers.
    let restarter = {
        let name = a.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            cluster.restart_controller_shard(dark).unwrap();
            (cluster, name)
        })
    };
    let view = job.resolve_fresh(&a).unwrap();
    assert_eq!(view.name, a);
    let (cluster, _) = restarter.join().unwrap();
    assert!(cluster.controller_shard_is_up(dark));
    // Nothing acked was lost across the shard's crash/recovery.
    assert_eq!(kv_a.get(b"k").unwrap(), Some(b"a".to_vec()));
}

#[test]
fn unreplicated_loss_is_clean_unavailable_not_a_hang() {
    // Killing the only home of unreplicated, unflushed data loses it by
    // design. The contract is a *fast, clean* `Unavailable` — the client
    // must not spin on routing retries when the layout hasn't changed.
    let cluster = JiffyCluster::build(
        JiffyConfig::for_testing(),
        2,
        8,
        jiffy_common::clock::SystemClock::shared(),
        Arc::new(MemObjectStore::new()),
        false,
        false,
    )
    .unwrap();
    let client = JiffyClient::connect(cluster.fabric().clone(), cluster.controller_addr()).unwrap();
    let job = client.register_job("unreplicated-loss").unwrap();
    let kv = job.open_kv("state", &[], 1).unwrap();
    kv.put(b"k", b"v").unwrap();

    // Every block of the structure lives on some server; kill them all.
    let view = job.resolve("state").unwrap();
    let mut homes = Vec::new();
    for loc in view.partition.unwrap().blocks() {
        for replica in &loc.chain {
            if !homes.contains(&replica.server) {
                homes.push(replica.server);
            }
        }
    }
    for id in homes {
        cluster.kill_server(id).unwrap();
    }

    let started = Instant::now();
    let err = kv.get(b"k").unwrap_err();
    assert!(
        matches!(err, jiffy_common::JiffyError::Unavailable(_)),
        "expected clean Unavailable, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "loss must fail fast, took {:?}",
        started.elapsed()
    );

    // The surviving server still serves fresh structures.
    let kv2 = job.open_kv("state2", &[], 1).unwrap();
    kv2.put(b"x", b"y").unwrap();
    assert_eq!(kv2.get(b"x").unwrap(), Some(b"y".to_vec()));
}
